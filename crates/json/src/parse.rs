//! Recursive-descent JSON parser.
//!
//! Accepts exactly RFC 8259 JSON (no comments, no trailing commas). Errors
//! carry byte offsets plus line/column so WAL-recovery diagnostics in the
//! store can point at the corrupt record.

use crate::value::{Number, Value};
use std::fmt;

/// A parse failure with its position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in bytes).
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace content is an error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

/// Maximum nesting depth; prevents stack overflow on adversarial input
/// (the store parses untrusted WAL bytes during recovery).
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let (mut line, mut column) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseError {
            message: message.into(),
            offset: self.pos,
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(members))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one slice operation.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is valid UTF-8 (it is a &str) and we only stopped on
                // ASCII sentinels, so this slice is valid UTF-8.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require an immediately following \uXXXX low half.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired UTF-16 high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid UTF-16 low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired UTF-16 low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))?
                };
                out.push(ch);
            }
            _ => return Err(self.err("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a' + 10),
                Some(b @ b'A'..=b'F') => u32::from(b - b'A' + 10),
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::Float(f)))
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, obj};

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::int(42));
        assert_eq!(parse("-17").unwrap(), Value::int(-17));
        assert_eq!(parse("3.25").unwrap(), Value::float(3.25));
        assert_eq!(parse("1e3").unwrap(), Value::float(1000.0));
        assert_eq!(parse("-2.5E-1").unwrap(), Value::float(-0.25));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_containers() {
        assert_eq!(parse("[]").unwrap(), arr![]);
        assert_eq!(parse("{}").unwrap(), obj! {});
        assert_eq!(parse("[1, 2, 3]").unwrap(), arr![1, 2, 3]);
        assert_eq!(
            parse(r#"{"a": 1, "b": [true, null]}"#).unwrap(),
            obj! { "a" => 1, "b" => arr![true, Value::Null] }
        );
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<_> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap(),
            Value::str("a\"b\\c/d\u{8}\u{c}\n\r\t")
        );
        assert_eq!(parse(r#""A""#).unwrap(), Value::str("A"));
        assert_eq!(parse(r#""é""#).unwrap(), Value::str("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Value::str("😀"));
    }

    #[test]
    fn rejects_bad_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dA""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "tru", "01", "1.",
            "1e", "\"abc", "[1,2,]", "{,}", "nul", "+1", "'a'", "[1]]", "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(parse("\"a\u{0}b\"").is_err());
        assert!(parse("\"a\nb\"").is_err());
    }

    #[test]
    fn error_positions_are_line_and_column_accurate() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 8, "column was {}", err.column);
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&doc).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = parse("99999999999999999999").unwrap();
        assert!(matches!(v, Value::Num(Number::Float(_))));
        // i64::MAX still parses as an integer.
        assert_eq!(
            parse("9223372036854775807").unwrap(),
            Value::int(i64::MAX)
        );
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(v, obj! { "a" => arr![1, 2] });
    }

    #[test]
    fn unicode_passthrough_in_strings() {
        assert_eq!(parse("\"médecine\"").unwrap(), Value::str("médecine"));
    }
}
