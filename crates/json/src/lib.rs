#![warn(missing_docs)]

//! # covidkg-json
//!
//! A small, dependency-free JSON implementation used as the document model
//! throughout the COVIDKG reproduction. The original system stores every
//! publication, table and knowledge-graph fragment as JSON inside a sharded
//! MongoDB cluster; this crate provides the equivalent value model for the
//! in-process store in `covidkg-store`.
//!
//! Components:
//!
//! * [`Value`] — the JSON value enum (with a distinct integer/float split so
//!   document ordering behaves like BSON's numeric comparisons).
//! * [`parse`] / [`Value::parse`] — a recursive-descent parser with precise
//!   error positions.
//! * [`Value::to_json`] / [`Value::to_json_pretty`] — writers.
//! * Dot-path access ([`Value::path`], [`Value::path_mut`],
//!   [`Value::set_path`]) matching MongoDB's `a.b.0.c` addressing, used by
//!   `$match` / `$project` stages.
//! * A total ordering over values ([`Value::cmp_total`]) used by `$sort`.

mod parse;
mod path;
mod value;
mod write;

pub use parse::{parse, ParseError};
pub use value::{Number, Value};

/// Build a [`Value::Object`] from `key => value` pairs.
///
/// ```
/// use covidkg_json::{obj, Value};
/// let v = obj! { "title" => "CORD-19", "year" => 2020 };
/// assert_eq!(v.path("year").and_then(Value::as_i64), Some(2020));
/// ```
#[macro_export]
macro_rules! obj {
    () => { $crate::Value::Object(Vec::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {
        $crate::Value::Object(vec![ $( ($k.to_string(), $crate::Value::from($v)) ),+ ])
    };
}

/// Build a [`Value::Array`] from elements convertible into [`Value`].
///
/// ```
/// use covidkg_json::{arr, Value};
/// let v = arr![1, "two", 3.0];
/// assert_eq!(v.as_array().unwrap().len(), 3);
/// ```
#[macro_export]
macro_rules! arr {
    () => { $crate::Value::Array(Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($v) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_build_nested_documents() {
        let doc = obj! {
            "title" => "Vaccine side-effects",
            "tags" => arr!["vaccine", "safety"],
            "meta" => obj! { "year" => 2021 },
        };
        assert_eq!(doc.path("meta.year").and_then(Value::as_i64), Some(2021));
        assert_eq!(doc.path("tags.1").and_then(Value::as_str), Some("safety"));
    }

    #[test]
    fn empty_macros() {
        assert_eq!(obj! {}, Value::Object(vec![]));
        assert_eq!(arr![], Value::Array(vec![]));
    }
}
