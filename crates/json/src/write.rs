//! JSON serialization: compact (WAL/wire) and pretty (reports, exports).

use crate::value::{Number, Value};
use std::fmt::Write as _;

impl Value {
    /// Serialize to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        write_value(self, &mut out);
        out
    }

    /// Serialize to human-readable, 2-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::with_capacity(128);
        write_pretty(self, &mut out, 0);
        out
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // Ensure floats stay floats on round-trip.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                // JSON has no NaN/Infinity; null is the conventional mapping.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::{arr, obj, parse, Value};

    #[test]
    fn compact_round_trip() {
        let doc = obj! {
            "title" => "Masks & \"aerosols\"",
            "n" => 42,
            "score" => 0.5,
            "tags" => arr!["covid", "ppe"],
            "nested" => obj! { "deep" => arr![obj!{ "x" => Value::Null }] },
        };
        let text = doc.to_json();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn pretty_round_trip() {
        let doc = obj! { "a" => arr![1, 2], "b" => obj!{ "c" => true } };
        assert_eq!(parse(&doc.to_json_pretty()).unwrap(), doc);
    }

    #[test]
    fn floats_keep_floatness() {
        let v = Value::float(5.0);
        assert_eq!(v.to_json(), "5.0");
        assert!(matches!(
            parse("5.0").unwrap(),
            Value::Num(crate::Number::Float(_))
        ));
    }

    #[test]
    fn control_characters_escape() {
        let v = Value::str("a\u{1}b\nc");
        assert_eq!(v.to_json(), "\"a\\u0001b\\nc\"");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::float(f64::NAN).to_json(), "null");
        assert_eq!(Value::float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn empty_containers_stay_compact_in_pretty_mode() {
        let doc = obj! { "a" => arr![], "b" => obj!{} };
        let pretty = doc.to_json_pretty();
        assert!(pretty.contains("[]"));
        assert!(pretty.contains("{}"));
    }

    #[test]
    fn unicode_survives_round_trip() {
        let v = Value::str("naïve 漢字 😀");
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
