//! Dot-path addressing into documents, mirroring MongoDB field paths.
//!
//! A path like `"body.sections.0.text"` descends through objects by key and
//! through arrays by decimal index. The store's `$match`, `$project`,
//! `$sort` and `$unwind` stages all address fields this way.

use crate::Value;

impl Value {
    /// Resolve a dot path. Returns `None` if any segment is missing or the
    /// intermediate value has the wrong shape.
    ///
    /// ```
    /// use covidkg_json::{obj, arr, Value};
    /// let d = obj! { "a" => arr![obj!{ "b" => 7 }] };
    /// assert_eq!(d.path("a.0.b").and_then(Value::as_i64), Some(7));
    /// assert!(d.path("a.1.b").is_none());
    /// ```
    pub fn path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in split_path(path) {
            cur = step(cur, seg)?;
        }
        Some(cur)
    }

    /// Mutable variant of [`Value::path`].
    pub fn path_mut(&mut self, path: &str) -> Option<&mut Value> {
        let mut cur = self;
        for seg in split_path(path) {
            cur = step_mut(cur, seg)?;
        }
        Some(cur)
    }

    /// Set the value at a dot path, creating intermediate objects as needed
    /// (array segments must already exist — we never implicitly grow
    /// arrays, matching the store's `$addFields` semantics).
    ///
    /// Returns `false` without modifying anything if an existing
    /// intermediate value is a non-container or an out-of-range index.
    pub fn set_path(&mut self, path: &str, value: Value) -> bool {
        let segs: Vec<&str> = split_path(path).collect();
        if segs.is_empty() {
            return false;
        }
        let mut cur = self;
        for seg in &segs[..segs.len() - 1] {
            // Create missing object members on the way down.
            let needs_create = match cur {
                Value::Object(o) => !o.iter().any(|(k, _)| k == seg),
                _ => false,
            };
            if needs_create {
                cur.as_object_mut()
                    .unwrap()
                    .push((seg.to_string(), Value::Object(Vec::new())));
            }
            match step_mut(cur, seg) {
                Some(next) => cur = next,
                None => return false,
            }
        }
        let last = segs[segs.len() - 1];
        match cur {
            Value::Object(_) => {
                cur.insert(last, value);
                true
            }
            Value::Array(items) => match last.parse::<usize>() {
                Ok(i) if i < items.len() => {
                    items[i] = value;
                    true
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Remove the value at a dot path; returns it if something was removed.
    pub fn remove_path(&mut self, path: &str) -> Option<Value> {
        let segs: Vec<&str> = split_path(path).collect();
        let (last, prefix) = segs.split_last()?;
        let mut cur = self;
        for seg in prefix {
            cur = step_mut(cur, seg)?;
        }
        match cur {
            Value::Object(_) => cur.remove(last),
            Value::Array(items) => {
                let i = last.parse::<usize>().ok()?;
                (i < items.len()).then(|| items.remove(i))
            }
            _ => None,
        }
    }

    /// Enumerate every `(dot_path, leaf_value)` pair in the document.
    /// Leaves are non-container values and empty containers. Used by the
    /// all-fields search engine (§2.1.2) to match over every field.
    pub fn flatten(&self) -> Vec<(String, &Value)> {
        let mut out = Vec::new();
        fn walk<'v>(v: &'v Value, prefix: &mut String, out: &mut Vec<(String, &'v Value)>) {
            match v {
                Value::Object(members) if !members.is_empty() => {
                    for (k, val) in members {
                        let len = prefix.len();
                        if !prefix.is_empty() {
                            prefix.push('.');
                        }
                        prefix.push_str(k);
                        walk(val, prefix, out);
                        prefix.truncate(len);
                    }
                }
                Value::Array(items) if !items.is_empty() => {
                    for (i, val) in items.iter().enumerate() {
                        let len = prefix.len();
                        if !prefix.is_empty() {
                            prefix.push('.');
                        }
                        let mut buf = [0u8; 20];
                        prefix.push_str(fmt_usize(i, &mut buf));
                        walk(val, prefix, out);
                        prefix.truncate(len);
                    }
                }
                leaf => out.push((prefix.clone(), leaf)),
            }
        }
        let mut prefix = String::new();
        walk(self, &mut prefix, &mut out);
        out
    }
}

/// Format a usize into a stack buffer without allocating.
fn fmt_usize(mut n: usize, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

fn split_path(path: &str) -> impl Iterator<Item = &str> {
    path.split('.').filter(|s| !s.is_empty())
}

fn step<'v>(v: &'v Value, seg: &str) -> Option<&'v Value> {
    match v {
        Value::Object(_) => v.get(seg),
        Value::Array(items) => items.get(seg.parse::<usize>().ok()?),
        _ => None,
    }
}

fn step_mut<'v>(v: &'v mut Value, seg: &str) -> Option<&'v mut Value> {
    match v {
        Value::Object(_) => v.get_mut(seg),
        Value::Array(items) => {
            let i = seg.parse::<usize>().ok()?;
            items.get_mut(i)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::{arr, obj, Value};

    fn doc() -> Value {
        obj! {
            "title" => "Ventilator outcomes",
            "tables" => arr![
                obj! { "caption" => "Table 1", "rows" => arr![arr!["a", "b"]] },
                obj! { "caption" => "Table 2" },
            ],
            "meta" => obj! { "year" => 2021, "venue" => "EDBT" },
        }
    }

    #[test]
    fn path_descends_objects_and_arrays() {
        let d = doc();
        assert_eq!(
            d.path("tables.1.caption").and_then(Value::as_str),
            Some("Table 2")
        );
        assert_eq!(
            d.path("tables.0.rows.0.1").and_then(Value::as_str),
            Some("b")
        );
        assert_eq!(d.path("meta.year").and_then(Value::as_i64), Some(2021));
    }

    #[test]
    fn path_misses_return_none() {
        let d = doc();
        assert!(d.path("missing").is_none());
        assert!(d.path("tables.9").is_none());
        assert!(d.path("title.x").is_none());
        assert!(d.path("tables.x").is_none());
    }

    #[test]
    fn empty_path_returns_self() {
        let d = doc();
        assert_eq!(d.path(""), Some(&d));
    }

    #[test]
    fn set_path_creates_objects() {
        let mut d = obj! {};
        assert!(d.set_path("a.b.c", Value::int(1)));
        assert_eq!(d.path("a.b.c").and_then(Value::as_i64), Some(1));
        // Overwrite in place.
        assert!(d.set_path("a.b.c", Value::int(2)));
        assert_eq!(d.path("a.b.c").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn set_path_respects_array_bounds() {
        let mut d = obj! { "xs" => arr![1, 2] };
        assert!(d.set_path("xs.1", Value::int(9)));
        assert_eq!(d.path("xs.1").and_then(Value::as_i64), Some(9));
        assert!(!d.set_path("xs.5", Value::int(9)));
    }

    #[test]
    fn set_path_refuses_to_tunnel_through_scalars() {
        let mut d = obj! { "a" => 1 };
        assert!(!d.set_path("a.b", Value::int(2)));
        assert_eq!(d.path("a").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn remove_path_works_on_objects_and_arrays() {
        let mut d = doc();
        assert_eq!(
            d.remove_path("meta.venue"),
            Some(Value::str("EDBT"))
        );
        assert!(d.path("meta.venue").is_none());
        let removed = d.remove_path("tables.0").unwrap();
        assert_eq!(
            removed.path("caption").and_then(Value::as_str),
            Some("Table 1")
        );
        assert_eq!(d.path("tables").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(d.remove_path("nope.nope"), None);
    }

    #[test]
    fn flatten_enumerates_all_leaves() {
        let d = obj! {
            "a" => 1,
            "b" => arr![obj!{ "c" => "x" }, 2],
            "empty" => obj!{},
        };
        let flat = d.flatten();
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, ["a", "b.0.c", "b.1", "empty"]);
    }

    #[test]
    fn flatten_of_scalar_is_itself() {
        let v = Value::int(3);
        let flat = v.flatten();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].0, "");
    }
}
