//! The JSON value model.
//!
//! Objects keep insertion order (a `Vec` of pairs) because the COVIDKG
//! documents are large and mostly read sequentially during aggregation;
//! lookups by key over a handful of fields are faster on a small vector
//! than on a hash map, and order preservation keeps serialized documents
//! stable, which the WAL/snapshot round-trip tests rely on.

use std::cmp::Ordering;
use std::fmt;

/// A JSON number, kept as either an integer or a float so that document
/// sorting behaves like BSON: `2` and `2.0` compare equal, but `2` survives
/// round-trips without becoming `2.0`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits in `i64`.
    Int(i64),
    /// A double-precision float (also used for integers beyond `i64`).
    Float(f64),
}

impl Number {
    /// Value as `f64`, lossy for very large integers.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Value as `i64` if it is an integer (or an integral float).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            Number::Float(_) => None,
        }
    }

    /// Total order over numbers; NaN sorts before every other number so the
    /// ordering stays total.
    pub fn cmp_total(self, other: Self) -> Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(&b),
            _ => {
                let (a, b) = (self.as_f64(), other.as_f64());
                match (a.is_nan(), b.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Less,
                    (false, true) => Ordering::Greater,
                    (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(*other) == Ordering::Equal
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Numeric value.
    Num(Number),
    /// UTF-8 string.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parse a JSON text into a value. Shorthand for [`crate::parse`].
    pub fn parse(text: &str) -> Result<Value, crate::ParseError> {
        crate::parse(text)
    }

    /// An integer value.
    pub fn int(i: i64) -> Value {
        Value::Num(Number::Int(i))
    }

    /// A float value.
    pub fn float(f: f64) -> Value {
        Value::Num(Number::Float(f))
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `i64` (integral floats coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrow as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Borrow as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as object entries.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as mutable object entries.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Look up a direct object member.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Mutable direct object member lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut()
            .and_then(|o| o.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Insert or replace a direct object member. Panics if `self` is not an
    /// object (construction-time misuse, not a data error).
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let obj = self
            .as_object_mut()
            .expect("Value::insert called on a non-object");
        if let Some(slot) = obj.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value.into();
        } else {
            obj.push((key, value.into()));
        }
    }

    /// Remove a direct object member, returning it if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let obj = self.as_object_mut()?;
        let idx = obj.iter().position(|(k, _)| k == key)?;
        Some(obj.remove(idx).1)
    }

    /// A rough in-memory size estimate in bytes, used by the store's
    /// storage-statistics report (the paper quotes 965 GB / 5 TB figures;
    /// we reproduce the same report shape at laptop scale).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 8,
            Value::Num(_) => 16,
            Value::Str(s) => 24 + s.len(),
            Value::Array(a) => 24 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(o) => {
                24 + o
                    .iter()
                    .map(|(k, v)| 24 + k.len() + v.approx_size())
                    .sum::<usize>()
            }
        }
    }

    /// Total order across all JSON values, modeled on BSON's cross-type
    /// ordering: Null < numbers < strings < objects < arrays < booleans.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Num(_) => 1,
                Value::Str(_) => 2,
                Value::Object(_) => 3,
                Value::Array(_) => 4,
                Value::Bool(_) => 5,
            }
        }
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.cmp_total(*b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.cmp_total(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Value::Object(a), Value::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let ord = ka.cmp(kb).then_with(|| va.cmp_total(vb));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}


impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::int(i64::from(i))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::int(i as i64)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::float(f64::from(f))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_crosses_representations() {
        assert_eq!(Value::int(2), Value::float(2.0));
        assert_ne!(Value::int(2), Value::float(2.5));
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut v = crate::obj! { "a" => 1 };
        v.insert("a", 2);
        v.insert("b", 3);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }

    #[test]
    fn remove_returns_member() {
        let mut v = crate::obj! { "a" => 1, "b" => 2 };
        assert_eq!(v.remove("a"), Some(Value::int(1)));
        assert_eq!(v.remove("a"), None);
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn cross_type_ordering_is_total_and_stable() {
        let vals = [
            Value::Null,
            Value::int(1),
            Value::str("a"),
            crate::obj! { "k" => 1 },
            crate::arr![1],
            Value::Bool(false),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].cmp_total(&w[1]), Ordering::Less, "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn nan_sorts_first_among_numbers() {
        let nan = Value::float(f64::NAN);
        assert_eq!(nan.cmp_total(&Value::int(0)), Ordering::Less);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
    }

    #[test]
    fn array_ordering_is_lexicographic() {
        assert_eq!(
            crate::arr![1, 2].cmp_total(&crate::arr![1, 3]),
            Ordering::Less
        );
        assert_eq!(crate::arr![1].cmp_total(&crate::arr![1, 0]), Ordering::Less);
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = crate::obj! { "a" => 1 };
        let big = crate::obj! { "a" => "a much longer string value here" };
        assert!(big.approx_size() > small.approx_size());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(vec![1, 2]), crate::arr![1, 2]);
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some("x")), Value::str("x"));
    }

    #[test]
    fn integral_float_coerces_to_i64() {
        assert_eq!(Value::float(7.0).as_i64(), Some(7));
        assert_eq!(Value::float(7.5).as_i64(), None);
    }
}
