//! Regenerate the paper's quantitative claims.
//!
//! ```text
//! cargo run -p covidkg-bench --release --bin report            # all experiments
//! cargo run -p covidkg-bench --release --bin report -- e1 e3   # a subset
//! cargo run -p covidkg-bench --release --bin report -- quick   # smaller sizes
//! ```

use covidkg_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let selected: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| a.starts_with('e'))
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    // Sizes tuned so the full run finishes in a few minutes in release.
    let (c1, c2, c3, c4, c5, c6, c7, c8) = if quick {
        (24, 24, 100, 60, 30, 40, 60, 100)
    } else {
        (72, 48, 400, 180, 60, 90, 150, 900)
    };

    println!("covidkg experiment report (quick={quick})");
    println!("==================================================\n");
    if want("e1") {
        println!("{}", e1_classification(c1, if quick { 5 } else { 10 }));
    }
    if want("e2") {
        println!("{}", e2_gru_vs_lstm(c2));
    }
    if want("e3") {
        println!("{}", e3_pipeline_order(c3, 10));
    }
    if want("e4") {
        println!("{}", e4_search_engines(c4));
    }
    if want("e5") {
        println!("{}", e5_feature_space(c5));
    }
    if want("e6") {
        println!("{}", e6_fusion(c6, 0.35));
    }
    if want("e7") {
        println!("{}", e7_profiles(c7));
    }
    if want("e8") {
        println!("{}", e8_store_scaling(c8));
    }
}
