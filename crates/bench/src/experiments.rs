//! Experiment implementations E1–E8 (see DESIGN.md §4 for the index).
//!
//! Each function regenerates one of the paper's quantitative claims and
//! returns a printable report. The `report` binary runs them; EXPERIMENTS.md
//! records paper-vs-measured.

use crate::setup::{collection_with, corpus, labeled_rows, ms, TablePrinter, SEED};
use covidkg_core::training::{
    build_svm_features, build_tuple_examples, kfold_bigru, kfold_svm,
    pretrain_embeddings, LabeledRow,
};
use covidkg_corpus::queries::{benchmark_queries, precision_at_k, reciprocal_rank};
use covidkg_corpus::Publication;
use covidkg_json::Value;
use covidkg_kg::{
    extract_subtrees, seed_graph, FusionConfig, FusionEngine, FusionOutcome, ScriptedExpert,
};
use covidkg_ml::model::{CellKind, TupleClassifier, TupleClassifierConfig};
use covidkg_ml::svm::{Svm, SvmConfig};
use covidkg_ml::{Word2VecConfig};
use covidkg_search::{SearchEngine, SearchMode};
use covidkg_store::pipeline::{DocFn, Pipeline};
use covidkg_store::{Collection, CollectionConfig, Filter};
use covidkg_tables::{detect_orientation, Orientation};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn fmt_metrics(m: &covidkg_ml::ClassMetrics) -> [String; 3] {
    [
        format!("{:.3}", m.precision),
        format!("{:.3}", m.recall),
        format!("{:.3}", m.f1),
    ]
}

/// E1 (§3.3): metadata-classification quality under 10-fold CV for the
/// SVM and BiGRU models, sliced by orientation and table size.
pub fn e1_classification(n_pubs: usize, folds: usize) -> String {
    let mut rows = labeled_rows(n_pubs);
    rows.truncate(1200); // SMO is quadratic; cap like the system build
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E1 §3.3 — metadata classification, {}-fold CV over {} rows",
        folds,
        rows.len()
    );
    let _ = writeln!(
        out,
        "paper: \"89% - 96% F-measure on average … for SVM and Bi-GRU-based models\n\
         with slight differences depending on whether the classified metadata is\n\
         horizontal or vertical, as well as its row/column number\"\n"
    );
    let tp = TablePrinter::new(&[8, 22, 9, 9, 9]);
    let _ = writeln!(
        out,
        "{}",
        tp.row(&["model".into(), "slice".into(), "precision".into(), "recall".into(), "F1".into()])
    );
    let _ = writeln!(out, "{}", tp.sep());

    let svm_report = kfold_svm(&rows, folds, &SvmConfig::default(), SEED);
    let bigru_rows: Vec<LabeledRow> = rows.iter().take(400).cloned().collect();
    let bigru_cfg = TupleClassifierConfig {
        embed_dims: 12,
        hidden: 16,
        max_len: 8,
        epochs: 8,
        seed: SEED,
        ..TupleClassifierConfig::default()
    };
    let bigru_report = kfold_bigru(&bigru_rows, folds.min(5), &bigru_cfg, None, SEED);

    for (model, report) in [("SVM", &svm_report), ("BiGRU", &bigru_report)] {
        for (slice, m) in [
            ("overall", &report.overall),
            ("horizontal metadata", &report.horizontal),
            ("vertical metadata", &report.vertical),
            ("small tables (<6 rows)", &report.small_tables),
            ("large tables (>=6 rows)", &report.large_tables),
        ] {
            let [p, r, f] = fmt_metrics(m);
            let _ = writeln!(
                out,
                "{}",
                tp.row(&[model.into(), slice.into(), p, r, f])
            );
        }
        let _ = writeln!(out, "{}", tp.sep());
    }
    let _ = writeln!(
        out,
        "train time: SVM {} | BiGRU {}",
        ms(svm_report.train_time),
        ms(bigru_report.train_time)
    );
    let band = |f: f64| (0.80..=1.0).contains(&f);
    let _ = writeln!(
        out,
        "shape check: overall F1 in high-80s+ band — SVM {} ({:.3}), BiGRU {} ({:.3})",
        if band(svm_report.overall.f1) { "OK" } else { "MISS" },
        svm_report.overall.f1,
        if band(bigru_report.overall.f1) { "OK" } else { "MISS" },
        bigru_report.overall.f1,
    );
    out
}

/// E2 (§3.6): BiGRU vs BiLSTM — quality deltas and training time.
pub fn e2_gru_vs_lstm(n_pubs: usize) -> String {
    let rows: Vec<LabeledRow> = labeled_rows(n_pubs).into_iter().take(360).collect();
    let mut out = String::new();
    let _ = writeln!(out, "E2 §3.6 — BiGRU vs BiLSTM over {} rows (3-fold CV)", rows.len());
    let _ = writeln!(
        out,
        "paper: GRU vs LSTM \"-0.02 ΔF1-Score, -0.07 ΔPrecision, +0.06 ΔRecall,\n\
         the training time was faster\"\n"
    );
    let cfg = |cell| TupleClassifierConfig {
        cell,
        embed_dims: 12,
        hidden: 16,
        max_len: 8,
        epochs: 8,
        seed: SEED,
        ..TupleClassifierConfig::default()
    };
    let gru = kfold_bigru(&rows, 3, &cfg(CellKind::Gru), None, SEED);
    let lstm = kfold_bigru(&rows, 3, &cfg(CellKind::Lstm), None, SEED);
    // Extension ablation: drop the Fig 3 concat-with-original-embeddings.
    let mut no_concat_cfg = cfg(CellKind::Gru);
    no_concat_cfg.concat_embeddings = false;
    let no_concat = kfold_bigru(&rows, 3, &no_concat_cfg, None, SEED);

    let examples = build_tuple_examples(&rows);
    let gru_params = TupleClassifier::new(&examples, None, cfg(CellKind::Gru)).param_count();
    let lstm_params = TupleClassifier::new(&examples, None, cfg(CellKind::Lstm)).param_count();
    let nc_params = TupleClassifier::new(&examples, None, no_concat_cfg).param_count();

    let tp = TablePrinter::new(&[14, 9, 9, 9, 12, 12]);
    let _ = writeln!(
        out,
        "{}",
        tp.row(&["model".into(), "precision".into(), "recall".into(), "F1".into(), "train time".into(), "params".into()])
    );
    let _ = writeln!(out, "{}", tp.sep());
    for (name, rep, params) in [
        ("BiGRU", &gru, gru_params),
        ("BiLSTM", &lstm, lstm_params),
        ("BiGRU -concat", &no_concat, nc_params),
    ] {
        let [p, r, f] = fmt_metrics(&rep.overall);
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[name.into(), p, r, f, ms(rep.train_time), params.to_string()])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());
    let _ = writeln!(
        out,
        "deltas (GRU − LSTM): ΔF1 {:+.3}  ΔPrecision {:+.3}  ΔRecall {:+.3}",
        gru.overall.f1 - lstm.overall.f1,
        gru.overall.precision - lstm.overall.precision,
        gru.overall.recall - lstm.overall.recall,
    );
    let speedup = lstm.train_time.as_secs_f64() / gru.train_time.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "training speed: GRU is {speedup:.2}x the LSTM's training rate (paper: \"faster\"; \
         GRU has 3 gates vs 4 → {gru_params} vs {lstm_params} params)"
    );
    let _ = writeln!(
        out,
        "shape check: |ΔF1| small ({}), GRU trains faster ({})",
        if (gru.overall.f1 - lstm.overall.f1).abs() < 0.1 { "OK" } else { "MISS" },
        if speedup > 1.0 { "OK" } else { "MISS" },
    );
    out
}

/// E3 (§2.1): pipeline-ordering ablation — `$match` first vs last, and
/// `$project` pruning on vs off.
pub fn e3_pipeline_order(n_pubs: usize, reps: usize) -> String {
    let pubs = corpus(n_pubs);
    let coll = collection_with(&pubs, 4);
    let fields = Publication::text_fields();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3 §2.1 — pipeline ordering over {} documents ({} reps each)",
        coll.len(),
        reps
    );
    let _ = writeln!(
        out,
        "paper: \"mindful to use the $match stage first to minimize the amount of\n\
         data being passed through all the latter stages, thus significantly\n\
         increasing performance\"; \"$project … removing unnecessary fields that\n\
         take up space and time passing through each proceeding stage\"\n"
    );

    let rank_fn: DocFn = Arc::new(|d: &Value| {
        // A deliberately field-light scoring function (title length), so
        // projection legitimately helps.
        Value::float(
            d.path("title")
                .and_then(Value::as_str)
                .map_or(0.0, |t| t.len() as f64),
        )
    });
    let spec = covidkg_json::obj! { "$text" => covidkg_json::obj!{ "$search" => "ventilator" } };

    let match_first = Pipeline::new()
        .match_spec(&spec, &fields)
        .unwrap()
        .project(["title", "date"])
        .function("len_rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .limit(10);
    let match_last = Pipeline::new()
        .function("len_rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .match_spec(&spec, &fields)
        .unwrap()
        .project(["title", "date", "score"])
        .limit(10);
    let no_project = Pipeline::new()
        .match_spec(&spec, &fields)
        .unwrap()
        .function("len_rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .limit(10);

    let time = |p: &Pipeline| -> std::time::Duration {
        // Warm once, then measure.
        let _ = coll.aggregate(p);
        let t0 = Instant::now();
        for _ in 0..reps {
            let got = coll.aggregate(p);
            std::hint::black_box(got);
        }
        t0.elapsed() / reps as u32
    };
    let t_first = time(&match_first);
    let t_last = time(&match_last);
    let t_noproj = time(&no_project);

    // Result equivalence (ordering must not change the answer set).
    let ids = |p: &Pipeline| -> Vec<String> {
        let mut v: Vec<String> = coll
            .aggregate(p)
            .iter()
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_string))
            .collect();
        v.sort();
        v
    };
    assert_eq!(ids(&match_first), ids(&match_last), "ordering changed results");

    let tp = TablePrinter::new(&[34, 12, 10]);
    let _ = writeln!(out, "{}", tp.row(&["pipeline".into(), "mean latency".into(), "speedup".into()]));
    let _ = writeln!(out, "{}", tp.sep());
    for (name, t) in [
        ("$match first + $project", t_first),
        ("$match first, no $project", t_noproj),
        ("$match last ($function/sort first)", t_last),
    ] {
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                name.into(),
                ms(t),
                format!("{:.2}x", t_last.as_secs_f64() / t.as_secs_f64().max(1e-12)),
            ])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());
    let _ = writeln!(
        out,
        "shape check: match-first dominates match-last ({}); projection helps or is neutral ({})",
        if t_first < t_last { "OK" } else { "MISS" },
        if t_first <= t_noproj.mul_f64(1.25) { "OK" } else { "MISS" },
    );
    out
}

/// E4 (§2.1, Figs 2 & 4): the three engines — quality (P@10, MRR) and
/// latency, plus text-index-assisted vs full-scan `$match`.
pub fn e4_search_engines(n_pubs: usize) -> String {
    let pubs = corpus(n_pubs);
    let coll = collection_with(&pubs, 4);
    let engine = SearchEngine::new(Arc::clone(&coll));
    let queries = benchmark_queries();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4 §2.1 — search engines over {} documents, {} benchmark queries",
        coll.len(),
        queries.len()
    );

    let tp = TablePrinter::new(&[30, 8, 8, 12]);
    let _ = writeln!(out, "{}", tp.row(&["engine / mode".into(), "P@10".into(), "MRR".into(), "mean latency".into()]));
    let _ = writeln!(out, "{}", tp.sep());

    let mut run_set = |label: &str,
                       make: &dyn Fn(&str) -> SearchMode,
                       pred: &dyn Fn(&covidkg_corpus::BenchQuery) -> bool| {
        let mut p10 = 0.0;
        let mut mrr = 0.0;
        let mut total = std::time::Duration::ZERO;
        let mut n = 0usize;
        for q in &queries {
            if !pred(q) {
                continue;
            }
            let text = if q.exact {
                format!("\"{}\"", q.text)
            } else {
                q.text.clone()
            };
            let mode = make(&text);
            let t0 = Instant::now();
            let page = engine.search(&mode, 0);
            total += t0.elapsed();
            let ranked: Vec<&str> = page.results.iter().map(|r| r.id.as_str()).collect();
            let relevant = q.relevant_ids(&pubs);
            p10 += precision_at_k(&ranked, &relevant, 10);
            mrr += reciprocal_rank(&ranked, &relevant);
            n += 1;
        }
        let n = n.max(1);
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                label.into(),
                format!("{:.3}", p10 / n as f64),
                format!("{:.3}", mrr / n as f64),
                ms(total / n as u32),
            ])
        );
    };

    run_set("all fields (§2.1.2)", &|t| SearchMode::AllFields(t.to_string()), &|_| true);
    run_set("tables (§2.1.3)", &|t| SearchMode::Tables(t.to_string()), &|_| true);
    run_set(
        // Fairness slice: the tables engine only sees table content, so
        // grade it on entity queries from the topics whose themed tables
        // actually carry those entities (vaccines, side-effects, symptoms).
        "tables — table-borne entities",
        &|t| SearchMode::Tables(t.to_string()),
        &|q| q.exact && matches!(q.topic_id, 0 | 1 | 3),
    );
    run_set(
        "title/abstract/caption (§2.1.1)",
        &|t| SearchMode::TitleAbstractCaption {
            title: String::new(),
            abstract_q: t.trim_matches('"').to_string(),
            caption: String::new(),
        },
        &|_| true,
    );
    run_set("all fields — stemmed only", &|t| SearchMode::AllFields(t.to_string()), &|q| !q.exact);
    run_set("all fields — quoted/exact only", &|t| SearchMode::AllFields(t.to_string()), &|q| q.exact);
    let _ = writeln!(out, "{}", tp.sep());

    // Index ablation: identical $text filter with and without the
    // inverted index behind it.
    let no_index = Collection::new(CollectionConfig::new("pubs-noindex").with_shards(4));
    no_index
        .insert_many(pubs.iter().map(Publication::to_doc))
        .unwrap();
    let filter = Filter::text("ventilator intubation", Publication::text_fields());
    let reps = 20;
    let timed = |c: &Collection| {
        let _ = c.find(&filter);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(c.find(&filter));
        }
        t0.elapsed() / reps
    };
    let with_idx = timed(&coll);
    let without_idx = timed(&no_index);
    let _ = writeln!(
        out,
        "$text with inverted index: {}   full scan: {}   speedup {:.1}x",
        ms(with_idx),
        ms(without_idx),
        without_idx.as_secs_f64() / with_idx.as_secs_f64().max(1e-12)
    );
    let _ = writeln!(
        out,
        "shape check: topical queries retrieve their topic (P@10 ≫ random {:.3})",
        1.0 / covidkg_corpus::all_topics().len() as f64
    );
    out
}

/// E5 (§3.2): feature-space dimensionality sweep — training time grows
/// with vocabulary size while accuracy saturates.
pub fn e5_feature_space(n_pubs: usize) -> String {
    let rows: Vec<LabeledRow> = labeled_rows(n_pubs).into_iter().take(800).collect();
    let mut out = String::new();
    let _ = writeln!(out, "E5 §3.2 — feature-space dimensionality over {} rows", rows.len());
    let _ = writeln!(
        out,
        "paper: \"100'000 dimensional feature space … Increasing the dimensionality\n\
         further led to significantly slower training time\"\n"
    );
    let tp = TablePrinter::new(&[12, 12, 12, 8]);
    let _ = writeln!(out, "{}", tp.row(&["max vocab".into(), "dims used".into(), "train time".into(), "F1".into()]));
    let _ = writeln!(out, "{}", tp.sep());
    let mut times = Vec::new();
    for max_vocab in [4usize, 8, 16, 32, 64, 2000] {
        let (vectors, labels, vocab) = build_svm_features(&rows, max_vocab);
        // Single split: train on 80%, test 20% (time is the headline here).
        let split = rows.len() * 4 / 5;
        let t0 = Instant::now();
        let svm = Svm::train(&vectors[..split], &labels[..split], &SvmConfig::default());
        let train_time = t0.elapsed();
        let (mut actual, mut predicted) = (Vec::new(), Vec::new());
        for i in split..rows.len() {
            actual.push(labels[i]);
            predicted.push(svm.predict(&vectors[i]));
        }
        let f1 = covidkg_ml::f1_score(&actual, &predicted);
        times.push(train_time);
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                max_vocab.to_string(),
                (vocab + 5).to_string(),
                ms(train_time),
                format!("{f1:.3}"),
            ])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());
    let grew = times.last().unwrap() > times.first().unwrap();
    let _ = writeln!(
        out,
        "shape check: training time grows with dimensionality ({})",
        if grew { "OK" } else { "MISS" }
    );
    out
}

/// Ground truth for E6: heading → canonical KG category.
const E6_TRUTH: &[(&str, &str)] = &[
    ("Vaccine", "Vaccine(s)"),
    ("Side effect", "Side-effects"),
    ("Symptom", "Symptoms"),
    ("Characteristic", "Epidemiology"),
    ("Arm", "Treatments"),
    ("Product", "Prevention"),
];

/// Unseen synonyms injected for E6 (root term → original heading).
const E6_SYNONYMS: &[(&str, &str)] = &[
    ("Immunization products", "Vaccine"),
    ("Adverse reactions", "Side effect"),
    ("Clinical manifestations", "Symptom"),
    ("Cohort attributes", "Characteristic"),
    ("Trial cohorts", "Arm"),
    ("Catalog items", "Product"),
];

/// E6 (§4.2): fusion — term matching vs +embedding fallback on a stream
/// with unseen root terms, and supervision decreasing across rounds.
pub fn e6_fusion(n_pubs: usize, unseen_fraction: f64) -> String {
    let pubs = corpus(n_pubs);
    let embeddings = pretrain_embeddings(
        &pubs,
        SEED,
        &Word2VecConfig {
            dims: 24,
            epochs: 6,
            seed: SEED,
            ..Word2VecConfig::default()
        },
    );
    // Extract ground-truth subtrees and synonym-swap a fraction of roots.
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut trees = Vec::new();
    for p in &pubs {
        for t in &p.tables {
            let orientation = detect_orientation(&t.rows);
            for mut tree in extract_subtrees(
                &t.rows,
                &t.metadata_rows,
                orientation == Orientation::Vertical,
                &t.caption,
                &p.id,
            ) {
                if rng.gen_bool(unseen_fraction) {
                    if let Some((syn, _)) = E6_SYNONYMS
                        .iter()
                        .find(|(_, orig)| tree.root.starts_with(orig))
                    {
                        tree.root = syn.to_string();
                    }
                }
                trees.push(tree);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6 §4.2 — fusion of {} subtrees ({:.0}% with unseen root terms)",
        trees.len(),
        unseen_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "paper: embedding matching \"is especially important in context of new terms,\n\
         unseen before\"; corrections are learned so fusion becomes \"minimally supervised\"\n"
    );

    // Seed a few known leaves so embedding matching has anchors.
    let seeded = || {
        let mut kg = seed_graph();
        let vaccines = kg.find_by_term("Vaccine")[0];
        kg.add_child(vaccines, "Pfizer", covidkg_kg::NodeKind::Entity, 1.0);
        kg.add_child(vaccines, "Moderna", covidkg_kg::NodeKind::Entity, 1.0);
        let side = kg.find_by_term("Side-effects")[0];
        kg.add_child(side, "Fever", covidkg_kg::NodeKind::Entity, 1.0);
        kg.add_child(side, "Fatigue", covidkg_kg::NodeKind::Entity, 1.0);
        let sym = kg.find_by_term("Symptoms")[0];
        kg.add_child(sym, "Cough", covidkg_kg::NodeKind::Entity, 1.0);
        kg
    };

    let tp = TablePrinter::new(&[26, 10, 10, 12, 12]);
    let _ = writeln!(
        out,
        "{}",
        tp.row(&["variant".into(), "auto %".into(), "queued %".into(), "correct parent".into(), "expert reviews".into()])
    );
    let _ = writeln!(out, "{}", tp.sep());

    for (label, use_embeddings) in [("term matching only", false), ("+ embedding fallback", true)] {
        let cfg = FusionConfig {
            use_embeddings,
            ..FusionConfig::default()
        };
        let emb = use_embeddings.then_some(&embeddings);
        let mut engine = FusionEngine::new(seeded(), emb, cfg);
        // Expert ground truth covers both the original headings and the
        // injected synonyms (all 'static strings).
        let mut pairs: Vec<(&str, &str)> = E6_TRUTH.to_vec();
        for (syn, orig) in E6_SYNONYMS {
            if let Some((_, target)) = E6_TRUTH.iter().find(|(h, _)| h == orig) {
                pairs.push((syn, target));
            }
        }
        let mut expert = ScriptedExpert::new(&pairs);
        let mut auto = 0usize;
        let mut queued = 0usize;
        let mut correct = 0usize;
        let mut graded = 0usize;
        for tree in &trees {
            let expected = expected_parent(&tree.root);
            match engine.fuse(tree.clone()) {
                FusionOutcome::AutoFused { parent, .. } => {
                    auto += 1;
                    if let Some(want) = expected {
                        graded += 1;
                        if engine.graph().node(parent).label == want {
                            correct += 1;
                        }
                    }
                }
                FusionOutcome::Queued { .. } => queued += 1,
                FusionOutcome::Discarded => {}
            }
            engine.process_reviews(&mut expert);
        }
        let total = (auto + queued).max(1);
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                label.into(),
                format!("{:.1}", auto as f64 * 100.0 / total as f64),
                format!("{:.1}", queued as f64 * 100.0 / total as f64),
                format!("{}/{}", correct, graded),
                expert.reviews.to_string(),
            ])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());

    // Supervision over rounds (with embeddings + memory).
    let mut engine = FusionEngine::new(seeded(), Some(&embeddings), FusionConfig::default());
    let mut expert = ScriptedExpert::new(E6_TRUTH);
    let chunk = (trees.len() / 3).max(1);
    let _ = writeln!(out, "supervision per round (embedding + correction memory):");
    for (round, batch) in trees.chunks(chunk).enumerate().take(3) {
        let before = engine.stats();
        for tree in batch {
            engine.fuse(tree.clone());
        }
        engine.process_reviews(&mut expert);
        let after = engine.stats();
        let reviews = after.reviewed - before.reviewed;
        let submitted = batch.len();
        let _ = writeln!(
            out,
            "  round {}: {} submitted, {} expert reviews ({:.1}%)",
            round + 1,
            submitted,
            reviews,
            reviews as f64 * 100.0 / submitted as f64
        );
    }
    out
}

fn expected_parent(root: &str) -> Option<&'static str> {
    E6_TRUTH
        .iter()
        .find(|(h, _)| root.starts_with(h))
        .map(|(_, t)| *t)
        .or_else(|| {
            E6_SYNONYMS.iter().find(|(s, _)| root == *s).and_then(|(_, orig)| {
                E6_TRUTH.iter().find(|(h, _)| h == orig).map(|(_, t)| *t)
            })
        })
}

/// E7 (Fig 6): meta-profile construction — grouping, compression factor
/// and throughput.
pub fn e7_profiles(n_pubs: usize) -> String {
    use covidkg_core::system::parse_side_effect_table;
    use covidkg_kg::profile::{build_meta_profiles, compression_factor, Observation};

    let pubs = corpus(n_pubs);
    let mut observations: Vec<Observation> = Vec::new();
    let t0 = Instant::now();
    let mut tables = 0usize;
    for p in &pubs {
        for t in &p.tables {
            for parsed in covidkg_tables::parse_tables(&t.html).unwrap() {
                tables += 1;
                observations.extend(parse_side_effect_table(&parsed.caption, &parsed.rows, &p.id));
            }
        }
    }
    let extract_time = t0.elapsed();
    let t1 = Instant::now();
    let profiles = build_meta_profiles(&observations);
    let build_time = t1.elapsed();

    let mut out = String::new();
    let _ = writeln!(out, "E7 Fig 6 — meta-profiles from {} papers", pubs.len());
    let _ = writeln!(
        out,
        "paper: \"summarizes information from 9 different sources in one place and is\n\
         much easier to comprehend than reading these 3 papers\"\n"
    );
    let _ = writeln!(out, "tables parsed            : {tables} (in {})", ms(extract_time));
    let _ = writeln!(out, "side-effect observations : {}", observations.len());
    let _ = writeln!(out, "meta-profiles built      : {} (in {})", profiles.len(), ms(build_time));
    let _ = writeln!(
        out,
        "compression factor       : {:.1} sources per profile",
        compression_factor(&profiles)
    );
    let tp = TablePrinter::new(&[14, 8, 8, 14]);
    let _ = writeln!(out, "\n{}", tp.row(&["vaccine".into(), "doses".into(), "sources".into(), "observations".into()]));
    let _ = writeln!(out, "{}", tp.sep());
    for p in &profiles {
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                p.vaccine.clone(),
                p.doses.len().to_string(),
                p.source_count().to_string(),
                p.observation_count().to_string(),
            ])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());
    let ok = compression_factor(&profiles) >= 3.0;
    let _ = writeln!(
        out,
        "shape check: each profile folds several sources ({})",
        if ok { "OK" } else { "MISS" }
    );
    out
}

/// E8 (§2 "Storage"): shard scaling — ingest throughput and balance.
pub fn e8_store_scaling(n_pubs: usize) -> String {
    let pubs = corpus(n_pubs);
    let docs: Vec<Value> = pubs.iter().map(Publication::to_doc).collect();
    let mut out = String::new();
    let _ = writeln!(out, "E8 §2 — sharded storage scaling, {} documents", docs.len());
    let _ = writeln!(
        out,
        "paper: \"scalable sharded MongoDB storage\" holding 450k+ publications\n\
         (≈965GB dataset, >5TB raw)\n"
    );
    let tp = TablePrinter::new(&[8, 14, 14, 10, 12]);
    let _ = writeln!(
        out,
        "{}",
        tp.row(&["shards".into(), "ingest time".into(), "docs/sec".into(), "balance".into(), "scan query".into()])
    );
    let _ = writeln!(out, "{}", tp.sep());
    for shards in [1usize, 2, 4, 8] {
        let c = Collection::new(
            CollectionConfig::new("pubs")
                .with_shards(shards)
                .with_text_fields(Publication::text_fields()),
        );
        let t0 = Instant::now();
        c.insert_parallel(docs.clone(), 8).unwrap();
        let ingest = t0.elapsed();
        let stats = c.stats();
        // A representative filtered scan.
        let filter = Filter::parse(
            &covidkg_json::obj! { "date" => covidkg_json::obj!{ "$gte" => "2021-01" } },
            &[],
        )
        .unwrap();
        let t1 = Instant::now();
        for _ in 0..5 {
            std::hint::black_box(c.count(&filter));
        }
        let scan = t1.elapsed() / 5;
        let _ = writeln!(
            out,
            "{}",
            tp.row(&[
                shards.to_string(),
                ms(ingest),
                format!("{:.0}", docs.len() as f64 / ingest.as_secs_f64()),
                format!("{:.2}", stats.balance_ratio()),
                ms(scan),
            ])
        );
    }
    let _ = writeln!(out, "{}", tp.sep());
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let _ = writeln!(
        out,
        "note: this harness machine exposes {cores} CPU core(s); shard scaling is\n\
         measured for balance and correctness — wall-clock speedups require the\n\
         multi-core hardware the paper's cluster provides."
    );
    let _ = writeln!(out, "storage report at this scale:");
    let c = collection_with(&pubs, 4);
    let db_stats = covidkg_store::DbStats {
        collections: vec![c.stats()],
    };
    let _ = write!(out, "{}", db_stats.render_report());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke tests with tiny sizes: every experiment must run and report
    // its shape checks. (The report binary runs the full sizes.)

    #[test]
    fn e1_runs_and_reports() {
        let r = e1_classification(16, 3);
        assert!(r.contains("SVM"));
        assert!(r.contains("BiGRU"));
        assert!(r.contains("vertical"));
    }

    #[test]
    fn e3_match_first_wins() {
        let r = e3_pipeline_order(60, 3);
        assert!(r.contains("match-first dominates match-last (OK)"), "{r}");
    }

    #[test]
    fn e4_reports_quality() {
        let r = e4_search_engines(48);
        assert!(r.contains("P@10"));
        assert!(r.contains("inverted index"));
    }

    #[test]
    fn e5_time_grows() {
        let r = e5_feature_space(24);
        assert!(r.contains("training time grows"), "{r}");
    }

    #[test]
    fn e6_embeddings_reduce_queueing() {
        let r = e6_fusion(30, 0.4);
        assert!(r.contains("term matching only"));
        assert!(r.contains("+ embedding fallback"));
        assert!(r.contains("round 3"));
    }

    #[test]
    fn e7_profiles_compress() {
        let r = e7_profiles(40);
        assert!(r.contains("compression factor"));
        assert!(r.contains("OK"), "{r}");
    }

    #[test]
    fn e8_scales() {
        let r = e8_store_scaling(60);
        assert!(r.contains("shards"));
        assert!(r.contains("storage report"));
    }

    #[test]
    fn expected_parent_mapping() {
        assert_eq!(expected_parent("Vaccine"), Some("Vaccine(s)"));
        assert_eq!(expected_parent("Adverse reactions"), Some("Side-effects"));
        assert_eq!(expected_parent("Unknown"), None);
    }
}
