//! Std-only micro-benchmark harness with a criterion-compatible surface.
//!
//! The offline build environment cannot resolve crates.io, so `criterion`
//! was removed from the workspace (see the `external-bench` feature note
//! in this crate's manifest). This module re-implements the slice of its
//! API the eight `benches/` files use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on
//! `std::time::Instant`, so `cargo bench -p covidkg-bench` runs with no
//! network and the benches port with an import swap.
//!
//! Statistics are deliberately simpler than criterion's (no bootstrap,
//! no outlier classification): each benchmark is calibrated so one
//! sample lasts ≳1 ms, then `sample_size` samples are timed and the
//! min/median/max per-iteration times printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle, passed to every bench entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Ungrouped convenience used by simple benches.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 20, None, f);
        self
    }
}

/// Work-per-iteration declaration so the report can print a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements processed per iteration.
    Elements(u64),
    /// `n` bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of measurements sharing sample configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default is 100;
    /// ours is 20 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a routine under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Time a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for criterion API parity; the per-benchmark
    /// lines were already printed as they completed).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Label the `parameter` variant of `function_name`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle handed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`; the harness divides out the
    /// iteration count afterwards.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One sample ought to last at least this long so `Instant` granularity
/// noise stays well under 1%.
const TARGET_SAMPLE: Duration = Duration::from_millis(1);

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, also serving as warm-up.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = if per_iter >= TARGET_SAMPLE {
        1
    } else {
        (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / median, "elem")),
        Throughput::Bytes(n) => format!("  thrpt: {}/s", si(n as f64 / median, "B")),
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        rate.unwrap_or_default(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Criterion-parity macro: defines `pub fn $name()` running each target
/// against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $crate::timer::Criterion::default();
                $target(&mut c);
            )+
        }
    };
}

/// Criterion-parity macro: `main()` invoking each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; no flags are supported.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iteration_time() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        b.iter(|| std::hint::black_box(2u64.wrapping_mul(3)));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn group_runs_benchmarks_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0usize;
        group.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| std::hint::black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2));
        });
        group.finish();
        // Calibration pass + 2 samples.
        assert_eq!(calls, 3);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-8), "25.0 ns");
        assert_eq!(si(1.5e7, "elem"), "15.00 Melem");
    }
}
