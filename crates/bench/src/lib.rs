//! Shared setup and experiment implementations for the COVIDKG benchmark
//! harness.
//!
//! Every quantitative claim in the paper maps to one experiment here (see
//! DESIGN.md §4); `cargo run -p covidkg-bench --release --bin report`
//! prints the paper-shaped tables, and the criterion benches under
//! `benches/` regenerate the timing-sensitive claims.

pub mod experiments;
pub mod setup;
pub mod timer;

pub use experiments::*;
pub use setup::*;
