//! Shared fixtures: corpora, collections, labeled rows, query sets.

use covidkg_corpus::{CorpusGenerator, Publication};
use covidkg_core::training::{labeled_rows_from_corpus, LabeledRow};
use covidkg_store::{Collection, CollectionConfig};
use std::sync::Arc;

/// Default experiment seed (all experiments are deterministic).
pub const SEED: u64 = 0xC0BD;

/// Generate the standard benchmark corpus.
pub fn corpus(n: usize) -> Vec<Publication> {
    CorpusGenerator::with_size(n, SEED).generate()
}

/// Load a corpus into a fresh sharded collection with the standard text
/// index.
pub fn collection_with(pubs: &[Publication], shards: usize) -> Arc<Collection> {
    let c = Collection::new(
        CollectionConfig::new("publications")
            .with_shards(shards)
            .with_text_fields(Publication::text_fields()),
    );
    c.insert_many(pubs.iter().map(Publication::to_doc))
        .expect("bench corpus inserts");
    Arc::new(c)
}

/// Labeled classification rows for a corpus of `n` publications.
pub fn labeled_rows(n: usize) -> Vec<LabeledRow> {
    labeled_rows_from_corpus(&corpus(n))
}

/// Simple fixed-width table printer for report output.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Printer with the given column widths.
    pub fn new(widths: &[usize]) -> TablePrinter {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Format one row.
    pub fn row(&self, cells: &[String]) -> String {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            out.push_str(&format!("{cell:<w$}  "));
        }
        out.trim_end().to_string()
    }

    /// Format a separator line.
    pub fn sep(&self) -> String {
        let total: usize = self.widths.iter().map(|w| w + 2).sum();
        "-".repeat(total)
    }
}

/// Format a `Duration` human-readably (µs below 1 ms).
pub fn ms(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else {
        format!("{:.1}ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let a = corpus(5);
        let b = corpus(5);
        assert_eq!(a[3].title, b[3].title);
    }

    #[test]
    fn collection_loads_all_documents() {
        let pubs = corpus(8);
        let c = collection_with(&pubs, 4);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn printer_aligns() {
        let p = TablePrinter::new(&[6, 4]);
        assert_eq!(p.row(&["ab".into(), "c".into()]), "ab      c");
        assert!(p.sep().len() >= 10);
    }
}
