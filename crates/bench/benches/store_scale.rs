//! E8 timing: sharded-store scaling — parallel ingest throughput by shard
//! count, point reads and filtered counts (§2 "Storage").

use covidkg_bench::timer::{BenchmarkId, Criterion, Throughput};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::corpus;
use covidkg_corpus::Publication;
use covidkg_json::Value;
use covidkg_store::{Collection, CollectionConfig, Filter};

fn bench_store_scale(c: &mut Criterion) {
    let pubs = corpus(150);
    let docs: Vec<Value> = pubs.iter().map(Publication::to_doc).collect();

    let mut group = c.benchmark_group("e8_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(docs.len() as u64));
    for shards in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("parallel_insert", shards), &shards, |b, &s| {
            b.iter(|| {
                let coll = Collection::new(
                    CollectionConfig::new("pubs")
                        .with_shards(s)
                        .with_text_fields(Publication::text_fields()),
                );
                coll.insert_parallel(docs.clone(), 8).unwrap();
                std::hint::black_box(coll.len());
            })
        });
    }
    group.finish();

    let coll = Collection::new(
        CollectionConfig::new("pubs")
            .with_shards(4)
            .with_text_fields(Publication::text_fields()),
    );
    coll.insert_parallel(docs, 8).unwrap();
    let filter = Filter::parse(
        &covidkg_json::obj! { "date" => covidkg_json::obj!{ "$gte" => "2021-01" } },
        &[],
    )
    .unwrap();
    let mut group = c.benchmark_group("e8_reads");
    group.bench_function("point_get", |b| {
        b.iter(|| std::hint::black_box(coll.get("paper-000042")))
    });
    group.bench_function("filtered_count", |b| {
        b.iter(|| std::hint::black_box(coll.count(&filter)))
    });
    group.bench_function("stats_report", |b| {
        b.iter(|| std::hint::black_box(coll.stats()))
    });
    group.finish();
}

criterion_group!(benches, bench_store_scale);
criterion_main!(benches);
