//! E7 timing: meta-profile construction throughput (Fig 6).

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::corpus;
use covidkg_core::system::parse_side_effect_table;
use covidkg_kg::profile::{build_meta_profiles, Observation};

fn bench_profiles(c: &mut Criterion) {
    let pubs = corpus(120);
    let mut observations: Vec<Observation> = Vec::new();
    for p in &pubs {
        for t in &p.tables {
            for parsed in covidkg_tables::parse_tables(&t.html).unwrap() {
                observations.extend(parse_side_effect_table(&parsed.caption, &parsed.rows, &p.id));
            }
        }
    }

    let mut group = c.benchmark_group("e7_profiles");
    group.bench_function("build_meta_profiles", |b| {
        b.iter(|| std::hint::black_box(build_meta_profiles(&observations)))
    });
    group.bench_function("parse_side_effect_table", |b| {
        let table = &pubs
            .iter()
            .flat_map(|p| p.tables.iter())
            .find(|t| !t.side_effects.is_empty())
            .expect("side-effect tables exist");
        b.iter(|| {
            std::hint::black_box(parse_side_effect_table(&table.caption, &table.rows, "p"))
        })
    });
    let profiles = build_meta_profiles(&observations);
    group.bench_function("render_profile", |b| {
        b.iter(|| std::hint::black_box(profiles[0].render()))
    });
    group.finish();
}

criterion_group!(benches, bench_profiles);
criterion_main!(benches);
