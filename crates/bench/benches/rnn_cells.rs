//! E2 timing: GRU vs LSTM cells — forward and forward+backward per
//! sequence. The paper picked the BiGRU because "the training time was
//! faster" (§3.6); the 3-vs-4-gate gap shows directly here.

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_ml::rnn::{BiRnn, CellKind, GruCell, LstmCell};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{Rng, SeedableRng};

fn seq(rng: &mut SmallRng, n: usize, dim: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn bench_rnn_cells(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let xs = seq(&mut rng, 12, 24);
    let hidden = 100; // the paper's layer width

    let gru = GruCell::new(24, hidden, &mut rng);
    let lstm = LstmCell::new(24, hidden, &mut rng);
    let mut group = c.benchmark_group("e2_forward");
    group.bench_function("gru_forward", |b| {
        b.iter(|| std::hint::black_box(gru.forward(&xs)))
    });
    group.bench_function("lstm_forward", |b| {
        b.iter(|| std::hint::black_box(lstm.forward(&xs)))
    });
    group.finish();

    let mut group = c.benchmark_group("e2_forward_backward");
    let dhs = vec![vec![1.0f32; hidden]; xs.len()];
    let mut gru2 = GruCell::new(24, hidden, &mut rng);
    let mut lstm2 = LstmCell::new(24, hidden, &mut rng);
    group.bench_function("gru_fwd_bwd", |b| {
        b.iter(|| {
            let steps = gru2.forward(&xs);
            std::hint::black_box(gru2.backward(&steps, &dhs));
        })
    });
    group.bench_function("lstm_fwd_bwd", |b| {
        b.iter(|| {
            let steps = lstm2.forward(&xs);
            std::hint::black_box(lstm2.backward(&steps, &dhs));
        })
    });
    group.finish();

    let mut group = c.benchmark_group("e2_bidirectional");
    let bigru = BiRnn::new(CellKind::Gru, 24, hidden, &mut rng);
    let bilstm = BiRnn::new(CellKind::Lstm, 24, hidden, &mut rng);
    group.bench_function("bigru_forward", |b| {
        b.iter(|| std::hint::black_box(bigru.forward(&xs)))
    });
    group.bench_function("bilstm_forward", |b| {
        b.iter(|| std::hint::black_box(bilstm.forward(&xs)))
    });
    group.finish();
}

criterion_group!(benches, bench_rnn_cells);
criterion_main!(benches);
