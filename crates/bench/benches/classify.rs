//! E1 timing: SVM and BiGRU training and per-row inference on the
//! metadata-classification task (§3).

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::{labeled_rows, SEED};
use covidkg_core::training::{build_tuple_examples, SvmFeaturizer};
use covidkg_ml::model::{TupleClassifier, TupleClassifierConfig};
use covidkg_ml::svm::{Svm, SvmConfig};

fn bench_classify(c: &mut Criterion) {
    let rows: Vec<_> = labeled_rows(32).into_iter().take(300).collect();
    let featurizer = SvmFeaturizer::fit(&rows, 1000);
    let vectors: Vec<_> = rows.iter().map(|r| featurizer.vectorize(&r.features, &r.cells)).collect();
    let labels: Vec<bool> = rows.iter().map(|r| r.features.label.unwrap_or(false)).collect();

    let mut group = c.benchmark_group("e1_training");
    group.sample_size(10);
    group.bench_function("svm_train_300_rows", |b| {
        b.iter(|| std::hint::black_box(Svm::train(&vectors, &labels, &SvmConfig::default())))
    });
    let examples = build_tuple_examples(&rows);
    let cfg = TupleClassifierConfig {
        embed_dims: 12,
        hidden: 16,
        max_len: 8,
        epochs: 2,
        seed: SEED,
        ..TupleClassifierConfig::default()
    };
    group.bench_function("bigru_train_2_epochs_300_rows", |b| {
        b.iter(|| {
            let mut model = TupleClassifier::new(&examples, None, cfg.clone());
            std::hint::black_box(model.train(&examples));
        })
    });
    group.finish();

    let svm = Svm::train(&vectors, &labels, &SvmConfig::default());
    let mut model = TupleClassifier::new(&examples, None, cfg);
    model.train(&examples);
    let mut group = c.benchmark_group("e1_inference");
    group.bench_function("svm_predict_row", |b| {
        b.iter(|| std::hint::black_box(svm.predict(&vectors[0])))
    });
    group.bench_function("bigru_predict_row", |b| {
        b.iter(|| std::hint::black_box(model.predict(&examples[0])))
    });
    group.bench_function("featurize_row", |b| {
        b.iter(|| std::hint::black_box(featurizer.vectorize(&rows[0].features, &rows[0].cells)))
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
