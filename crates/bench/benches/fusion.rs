//! E6 timing: fusion throughput — term matching only vs with the
//! embedding fallback (§4.2).

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::{corpus, SEED};
use covidkg_core::training::pretrain_embeddings;
use covidkg_kg::{extract_subtrees, seed_graph, FusionConfig, FusionEngine};
use covidkg_ml::Word2VecConfig;
use covidkg_tables::{detect_orientation, Orientation};

fn bench_fusion(c: &mut Criterion) {
    let pubs = corpus(60);
    let embeddings = pretrain_embeddings(
        &pubs,
        SEED,
        &Word2VecConfig {
            dims: 24,
            epochs: 2,
            seed: SEED,
            ..Word2VecConfig::default()
        },
    );
    let mut trees = Vec::new();
    for p in &pubs {
        for t in &p.tables {
            let orientation = detect_orientation(&t.rows);
            trees.extend(extract_subtrees(
                &t.rows,
                &t.metadata_rows,
                orientation == Orientation::Vertical,
                &t.caption,
                &p.id,
            ));
        }
    }

    let mut group = c.benchmark_group("e6_fusion");
    group.bench_function("term_match_only", |b| {
        b.iter(|| {
            let cfg = FusionConfig {
                use_embeddings: false,
                ..FusionConfig::default()
            };
            let mut engine = FusionEngine::new(seed_graph(), None, cfg);
            for tree in &trees {
                std::hint::black_box(engine.fuse(tree.clone()));
            }
        })
    });
    group.bench_function("with_embedding_fallback", |b| {
        b.iter(|| {
            let mut engine =
                FusionEngine::new(seed_graph(), Some(&embeddings), FusionConfig::default());
            for tree in &trees {
                std::hint::black_box(engine.fuse(tree.clone()));
            }
        })
    });
    group.bench_function("kg_search_after_fusion", |b| {
        let mut engine =
            FusionEngine::new(seed_graph(), Some(&embeddings), FusionConfig::default());
        for tree in &trees {
            engine.fuse(tree.clone());
        }
        let kg = engine.into_graph();
        b.iter(|| std::hint::black_box(kg.search("fever")))
    });
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
