//! E4 timing: query latency of the three §2.1 engines, plus the inverted
//! index vs full-scan `$text` ablation.

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::{collection_with, corpus};
use covidkg_corpus::Publication;
use covidkg_search::{SearchEngine, SearchMode};
use covidkg_store::{Collection, CollectionConfig, Filter};
use std::sync::Arc;

fn bench_search_engines(c: &mut Criterion) {
    let pubs = corpus(200);
    let coll = collection_with(&pubs, 4);
    let engine = SearchEngine::new(Arc::clone(&coll));

    let mut group = c.benchmark_group("e4_search_engines");
    group.bench_function("all_fields_stemmed", |b| {
        b.iter(|| std::hint::black_box(engine.search(&SearchMode::AllFields("vaccine".into()), 0)))
    });
    group.bench_function("all_fields_exact", |b| {
        b.iter(|| {
            std::hint::black_box(engine.search(&SearchMode::AllFields("\"dose 2\"".into()), 0))
        })
    });
    group.bench_function("tables_engine", |b| {
        b.iter(|| std::hint::black_box(engine.search(&SearchMode::Tables("ventilators".into()), 0)))
    });
    group.bench_function("title_abstract_caption", |b| {
        let mode = SearchMode::TitleAbstractCaption {
            title: "vaccine".into(),
            abstract_q: String::new(),
            caption: "side-effects".into(),
        };
        b.iter(|| std::hint::black_box(engine.search(&mode, 0)))
    });
    group.finish();

    // Inverted-index ablation at the filter level.
    let no_index = Collection::new(CollectionConfig::new("noidx").with_shards(4));
    no_index
        .insert_many(pubs.iter().map(Publication::to_doc))
        .unwrap();
    let filter = Filter::text("ventilator intubation", Publication::text_fields());
    let mut group = c.benchmark_group("e4_text_index");
    group.bench_function("with_inverted_index", |b| {
        b.iter(|| std::hint::black_box(coll.find(&filter)))
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| std::hint::black_box(no_index.find(&filter)))
    });
    group.finish();
}

criterion_group!(benches, bench_search_engines);
criterion_main!(benches);
