//! E4 timing: query latency of the three §2.1 engines, plus the inverted
//! index vs full-scan `$text` ablation, plus the naive-scan vs
//! index-pruned top-k comparison emitted to `BENCH_search.json`.

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::{collection_with, corpus};
use covidkg_corpus::Publication;
use covidkg_json::{obj, Value};
use covidkg_search::{SearchEngine, SearchMode, SearchPage};
use covidkg_store::{Collection, CollectionConfig, Filter};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench_search_engines(c: &mut Criterion) {
    let pubs = corpus(200);
    let coll = collection_with(&pubs, 4);
    let engine = SearchEngine::new(Arc::clone(&coll));

    let mut group = c.benchmark_group("e4_search_engines");
    group.bench_function("all_fields_stemmed", |b| {
        b.iter(|| std::hint::black_box(engine.search(&SearchMode::AllFields("vaccine".into()), 0)))
    });
    group.bench_function("all_fields_exact", |b| {
        b.iter(|| {
            std::hint::black_box(engine.search(&SearchMode::AllFields("\"dose 2\"".into()), 0))
        })
    });
    group.bench_function("tables_engine", |b| {
        b.iter(|| std::hint::black_box(engine.search(&SearchMode::Tables("ventilators".into()), 0)))
    });
    group.bench_function("title_abstract_caption", |b| {
        let mode = SearchMode::TitleAbstractCaption {
            title: "vaccine".into(),
            abstract_q: String::new(),
            caption: "side-effects".into(),
        };
        b.iter(|| std::hint::black_box(engine.search(&mode, 0)))
    });
    group.finish();

    // Inverted-index ablation at the filter level.
    let no_index = Collection::new(CollectionConfig::new("noidx").with_shards(4));
    no_index
        .insert_many(pubs.iter().map(Publication::to_doc))
        .unwrap();
    let filter = Filter::text("ventilator intubation", Publication::text_fields());
    let mut group = c.benchmark_group("e4_text_index");
    group.bench_function("with_inverted_index", |b| {
        b.iter(|| std::hint::black_box(coll.find(&filter)))
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| std::hint::black_box(no_index.find(&filter)))
    });
    group.finish();
}

/// Time `run` repeatedly: warm up, then sample until 120 samples or a
/// 900 ms budget (minimum 12), returning sorted per-call durations.
fn sample(mut run: impl FnMut() -> SearchPage) -> Vec<Duration> {
    for _ in 0..3 {
        std::hint::black_box(run());
    }
    let budget = Duration::from_millis(900);
    let started = Instant::now();
    let mut samples = Vec::new();
    while samples.len() < 120 && (samples.len() < 12 || started.elapsed() < budget) {
        let t = Instant::now();
        std::hint::black_box(run());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    samples
}

fn quantile_us(sorted: &[Duration], pct: usize) -> f64 {
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx].as_secs_f64() * 1e6
}

/// Naive full-scan full-sort vs index-pruned shard-parallel top-k across
/// the three engines at three corpus sizes; medians, tails and speedups
/// land in `BENCH_search.json` at the workspace root.
fn bench_naive_vs_pruned(_c: &mut Criterion) {
    let sizes = [100usize, 400, 1200];
    let modes: [(&str, SearchMode); 3] = [
        ("all_fields", SearchMode::AllFields("vaccine side effects".into())),
        ("tables", SearchMode::Tables("ventilators".into())),
        (
            "title_abstract_caption",
            SearchMode::TitleAbstractCaption {
                title: "vaccine".into(),
                abstract_q: String::new(),
                caption: "side-effects".into(),
            },
        ),
    ];

    println!("\nnaive full-scan vs index-pruned top-k (page 0)");
    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for &size in &sizes {
        let pubs = corpus(size);
        let coll = collection_with(&pubs, 4);
        let engine = SearchEngine::new(Arc::clone(&coll));
        for (label, mode) in &modes {
            // Pruned and naive paths must agree before we time them.
            let fast = engine.search(mode, 0);
            let slow = engine.search_naive(mode, 0);
            assert_eq!(fast.total, slow.total, "{label}@{size}: totals diverge");
            let naive = sample(|| engine.search_naive(mode, 0));
            let pruned = sample(|| engine.search(mode, 0));
            let naive_p50 = quantile_us(&naive, 50);
            let pruned_p50 = quantile_us(&pruned, 50);
            let speedup = naive_p50 / pruned_p50;
            println!(
                "  {label:<24} corpus {size:>5}: naive p50 {naive_p50:>9.1} µs, \
                 pruned p50 {pruned_p50:>8.1} µs → {speedup:.1}x",
            );
            for (variant, samples, p50) in
                [("naive", &naive, naive_p50), ("pruned", &pruned, pruned_p50)]
            {
                results.push(obj! {
                    "engine" => *label,
                    "corpus" => size as i64,
                    "variant" => variant,
                    "ops_per_sec" => 1e6 / p50,
                    "p50_us" => p50,
                    "p99_us" => quantile_us(samples, 99),
                    "samples" => samples.len() as i64,
                });
            }
            speedups.push(obj! {
                "engine" => *label,
                "corpus" => size as i64,
                "p50_speedup" => speedup,
            });
        }
    }

    let report = obj! {
        "bench" => "search_engines:naive_vs_pruned",
        "note" => "per-query latency of search_naive (full scan, tokenizing scorer, full sort) vs search (postings candidates, shard-parallel top-k), page 0, shards=4",
        "corpus_sizes" => Value::Array(sizes.iter().map(|s| Value::int(*s as i64)).collect()),
        "results" => Value::Array(results),
        "speedups" => Value::Array(speedups),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, report.to_json_pretty() + "\n").expect("write BENCH_search.json");
    println!("  wrote {path}");
}

criterion_group!(benches, bench_search_engines, bench_naive_vs_pruned);
criterion_main!(benches);
