//! E5 timing: SVM training cost as the feature-space dimensionality
//! grows (§3.2: larger vocabularies made training "significantly slower").

use covidkg_bench::timer::{BenchmarkId, Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::labeled_rows;
use covidkg_core::training::build_svm_features;
use covidkg_ml::svm::{Svm, SvmConfig};

fn bench_feature_space(c: &mut Criterion) {
    let rows: Vec<_> = labeled_rows(32).into_iter().take(250).collect();
    let mut group = c.benchmark_group("e5_feature_space");
    group.sample_size(10);
    for max_vocab in [100usize, 500, 2000] {
        let (vectors, labels, _) = build_svm_features(&rows, max_vocab);
        group.bench_with_input(
            BenchmarkId::new("svm_train", max_vocab),
            &max_vocab,
            |b, _| {
                b.iter(|| std::hint::black_box(Svm::train(&vectors, &labels, &SvmConfig::default())))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("featurize_corpus", max_vocab),
            &max_vocab,
            |b, &mv| b.iter(|| std::hint::black_box(build_svm_features(&rows, mv))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_feature_space);
criterion_main!(benches);
