//! E3 timing: `$match`-first vs `$match`-last pipelines, and `$project`
//! pruning on/off (§2.1's stated optimizations).

use covidkg_bench::timer::{Criterion};
use covidkg_bench::{criterion_group, criterion_main};
use covidkg_bench::setup::{collection_with, corpus};
use covidkg_corpus::Publication;
use covidkg_json::Value;
use covidkg_store::pipeline::{DocFn, Pipeline};
use std::sync::Arc;

fn bench_pipeline_order(c: &mut Criterion) {
    let pubs = corpus(200);
    let coll = collection_with(&pubs, 4);
    let fields = Publication::text_fields();
    let rank_fn: DocFn = Arc::new(|d: &Value| {
        Value::float(
            d.path("title")
                .and_then(Value::as_str)
                .map_or(0.0, |t| t.len() as f64),
        )
    });
    let spec = covidkg_json::obj! { "$text" => covidkg_json::obj!{ "$search" => "ventilator" } };

    let match_first = Pipeline::new()
        .match_spec(&spec, &fields)
        .unwrap()
        .project(["title", "date"])
        .function("rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .limit(10);
    let match_last = Pipeline::new()
        .function("rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .match_spec(&spec, &fields)
        .unwrap()
        .limit(10);
    let no_project = Pipeline::new()
        .match_spec(&spec, &fields)
        .unwrap()
        .function("rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .limit(10);

    let mut group = c.benchmark_group("e3_pipeline_order");
    group.bench_function("match_first_with_project", |b| {
        b.iter(|| std::hint::black_box(coll.aggregate(&match_first)))
    });
    group.bench_function("match_first_no_project", |b| {
        b.iter(|| std::hint::black_box(coll.aggregate(&no_project)))
    });
    group.bench_function("match_last", |b| {
        b.iter(|| std::hint::black_box(coll.aggregate(&match_last)))
    });
    group.finish();

    // Sort+limit fusion ablation: the executor fuses adjacent $sort+$limit
    // into a heap top-k; a $skip(0) wedge between them defeats the
    // peephole and forces the full sort.
    let fused = Pipeline::new()
        .function("rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .limit(10);
    let unfused = Pipeline::new()
        .function("rank", "score", Arc::clone(&rank_fn))
        .sort_desc("score")
        .skip(0)
        .limit(10);
    let mut group = c.benchmark_group("e3_topk_fusion");
    group.bench_function("fused_heap_topk", |b| {
        b.iter(|| std::hint::black_box(coll.aggregate(&fused)))
    });
    group.bench_function("full_sort_then_limit", |b| {
        b.iter(|| std::hint::black_box(coll.aggregate(&unfused)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline_order);
criterion_main!(benches);
