//! Normalized NLP term matching (§4.2).
//!
//! KG fusion first matches extracted subtree roots to graph nodes "based on
//! normalized NLP term matching". Normalization here means: lowercase,
//! tokenize, drop stopwords and punctuation (including parenthesized
//! qualifiers like `Vaccine(s)`), stem each token, and compare the token
//! multisets order-insensitively — so `Vaccine(s)` matches `vaccines` and
//! `side effect` matches `Side-Effects`.

use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize_lower;

/// A term reduced to its canonical matching form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NormalizedTerm {
    /// Sorted stemmed tokens.
    pub stems: Vec<String>,
}

impl NormalizedTerm {
    /// Canonical single-string key, suitable for hash-map indexing.
    pub fn key(&self) -> String {
        self.stems.join(" ")
    }

    /// True when normalization removed everything (e.g. "(the)").
    pub fn is_empty(&self) -> bool {
        self.stems.is_empty()
    }
}

/// Normalize a term per the fusion matcher's rules.
pub fn normalize_term(term: &str) -> NormalizedTerm {
    let mut stems: Vec<String> = tokenize_lower(term)
        .into_iter()
        // Split hyphenated/apostrophe compounds: "side-effects" == "side effects".
        .flat_map(|t| {
            t.split(['-', '\'', '’'])
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        // Drop stopwords and single-letter qualifiers like the "(s)" plural
        // marker in "Vaccine(s)".
        .filter(|t| {
            !t.is_empty()
                && !is_stopword(t)
                && (t.len() != 1 || t.chars().next().unwrap().is_ascii_digit())
        })
        .map(|t| stem(&t))
        .collect();
    stems.sort();
    stems.dedup();
    NormalizedTerm { stems }
}

/// Do two surface terms match after normalization?
pub fn term_match(a: &str, b: &str) -> bool {
    let (na, nb) = (normalize_term(a), normalize_term(b));
    !na.is_empty() && na == nb
}

/// Levenshtein edit distance between two strings (char-wise). Used as a
/// tie-breaker when several KG nodes normalize to nearby keys, and by
/// tests asserting near-match behaviour.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plural_and_parenthesized_forms_match() {
        // The paper's own example: node `Vaccine` matches KG node `Vaccine(s)`.
        assert!(term_match("Vaccine", "Vaccine(s)"));
        assert!(term_match("vaccines", "Vaccine"));
    }

    #[test]
    fn hyphen_and_spacing_variants_match() {
        assert!(term_match("Side-Effects", "side effects"));
        assert!(term_match("side effect", "Side Effects"));
    }

    #[test]
    fn word_order_is_ignored() {
        assert!(term_match("transmission airborne", "Airborne Transmission"));
    }

    #[test]
    fn stopwords_are_dropped() {
        assert!(term_match("ways of transmission", "transmission ways"));
    }

    #[test]
    fn different_concepts_do_not_match() {
        assert!(!term_match("vaccine", "ventilator"));
        assert!(!term_match("symptoms", "side effects"));
        assert!(!term_match("children side-effects", "side-effects"));
    }

    #[test]
    fn empty_normalizations_never_match() {
        assert!(!term_match("(the)", "(of)"));
        assert!(normalize_term("...").is_empty());
    }

    #[test]
    fn key_is_stable() {
        assert_eq!(
            normalize_term("Airborne Transmission").key(),
            normalize_term("transmission, airborne").key()
        );
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("moderna", "moderna"), 0);
        assert_eq!(levenshtein("pfizer", "pfizzer"), 1);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(levenshtein("novavax", "novovac"), levenshtein("novovac", "novavax"));
    }
}
