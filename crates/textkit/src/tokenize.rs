//! Word tokenization with byte spans.
//!
//! A token is a maximal run of alphanumeric characters, possibly joined by
//! single internal hyphens or apostrophes ("covid-19", "sars-cov-2",
//! "patient's"). Spans are byte offsets into the original text so the
//! search result renderer can highlight matches in place (Figs 2 & 4).

/// A single token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text as it appears in the source.
    pub text: String,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Tokenize `text` into words with spans.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if !c.is_alphanumeric() {
            chars.next();
            continue;
        }
        let mut end = start;
        let mut last_was_joiner = false;
        while let Some(&(i, c)) = chars.peek() {
            if c.is_alphanumeric() {
                end = i + c.len_utf8();
                last_was_joiner = false;
                chars.next();
            } else if (c == '-' || c == '\'' || c == '’') && !last_was_joiner {
                // A joiner is only kept if followed by an alphanumeric; we
                // tentatively consume it and roll back `end` otherwise.
                last_was_joiner = true;
                chars.next();
            } else {
                break;
            }
        }
        out.push(Token {
            text: text[start..end].to_string(),
            start,
            end,
        });
    }
    out
}

/// Tokenize and lowercase, returning only the token strings. This is the
/// common indexing path (vocabulary building, TF-IDF, query parsing).
pub fn tokenize_lower(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .map(|t| t.text.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(texts("masks, ventilators; doses."), ["masks", "ventilators", "doses"]);
    }

    #[test]
    fn keeps_internal_hyphens() {
        assert_eq!(texts("COVID-19 and SARS-CoV-2"), ["COVID-19", "and", "SARS-CoV-2"]);
    }

    #[test]
    fn trailing_hyphen_is_not_part_of_token() {
        assert_eq!(texts("dose- escalation"), ["dose", "escalation"]);
        assert_eq!(texts("end-"), ["end"]);
    }

    #[test]
    fn double_hyphen_splits() {
        assert_eq!(texts("a--b"), ["a", "b"]);
    }

    #[test]
    fn apostrophes_join() {
        assert_eq!(texts("patient's recovery"), ["patient's", "recovery"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(texts("5-10 mg of 0.5%"), ["5-10", "mg", "of", "0", "5"]);
    }

    #[test]
    fn spans_are_byte_accurate() {
        let text = "é covid";
        let toks = tokenize(text);
        assert_eq!(toks.len(), 2);
        assert_eq!(&text[toks[1].start..toks[1].end], "covid");
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!?.,;:()").is_empty());
    }

    #[test]
    fn lowercasing() {
        assert_eq!(tokenize_lower("Pfizer BioNTech"), ["pfizer", "biontech"]);
    }

    #[test]
    fn unicode_words() {
        assert_eq!(texts("médecine générale"), ["médecine", "générale"]);
    }
}
