#![warn(missing_docs)]

//! # covidkg-text
//!
//! Text-processing substrate for the COVIDKG reproduction:
//!
//! * [`tokenize`] — word tokenization with byte spans (needed for snippet
//!   highlighting in the search result pages, Figs 2 & 4 of the paper);
//! * [`stem`] — the Porter stemming algorithm, used for the "stemming match
//!   capability on a tokenized query" (§2.1);
//! * [`stopwords`] — the noise-word list used when building the feature
//!   space (§3.2 "cutting off the noise words and spam");
//! * [`vocab`] — the frequency-sorted vocabulary / feature space (§3.2:
//!   100k-dimensional in the paper, configurable here);
//! * [`tfidf`] — Term Frequency–Inverse Document Frequency weighting
//!   (Sparck Jones [53]) used by the ranking function (§2.1);
//! * [`normalize`] — normalized NLP term matching used during KG fusion
//!   (§4.2), plus Levenshtein distance;
//! * [`synonyms`] — curated medical synonym groups for the ranking
//!   function's synonym matching (§5);
//! * [`snippet`] — excerpt extraction with highlight spans for result pages.

pub mod normalize;
pub mod snippet;
pub mod stem;
pub mod stopwords;
pub mod synonyms;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use normalize::{levenshtein, normalize_term, term_match, NormalizedTerm};
pub use snippet::{make_snippet, Snippet};
pub use stem::stem;
pub use stopwords::is_stopword;
pub use synonyms::{are_synonyms, synonym_stems};
pub use tfidf::{SparseVec, TfIdf};
pub use tokenize::{tokenize, tokenize_lower, Token};
pub use vocab::{Vocabulary, VocabularyBuilder};
