//! The Porter stemming algorithm (M.F. Porter, 1980), implemented in full.
//!
//! The COVIDKG search engines evaluate a "stemming match capability on a
//! tokenized query" (§2.1): both the indexed terms and the query terms are
//! reduced to stems so that `vaccinated`, `vaccination` and `vaccine`
//! retrieve each other. The classic five-step Porter algorithm is the
//! standard choice and is what we implement here, operating on ASCII
//! lowercase; tokens with non-ASCII letters are returned unchanged.

/// Stem a single lowercase word. Words shorter than 3 characters and words
/// containing non-ASCII-alphabetic characters are returned as-is.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut b: Vec<u8> = word.as_bytes().to_vec();
    let mut k = b.len();
    k = step1a(&mut b, k);
    k = step1b(&mut b, k);
    k = step1c(&mut b, k);
    k = step2(&mut b, k);
    k = step3(&mut b, k);
    k = step4(&mut b, k);
    k = step5a(&mut b, k);
    k = step5b(&b, k);
    String::from_utf8(b[..k].to_vec()).unwrap()
}

/// Is `b[i]` a consonant in the word `b[..=i]`? ('y' is a consonant when it
/// follows a vowel position per Porter's definition.)
fn is_cons(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_cons(b, i - 1),
        _ => true,
    }
}

/// Porter's measure m of `b[..k]`: number of VC sequences.
fn measure(b: &[u8], k: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < k && is_cons(b, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < k && !is_cons(b, i) {
            i += 1;
        }
        if i >= k {
            return m;
        }
        m += 1;
        // Skip consonants.
        while i < k && is_cons(b, i) {
            i += 1;
        }
        if i >= k {
            return m;
        }
    }
}

/// Does the stem `b[..k]` contain a vowel?
fn has_vowel(b: &[u8], k: usize) -> bool {
    (0..k).any(|i| !is_cons(b, i))
}

/// Does `b[..k]` end with a double consonant?
fn ends_double_cons(b: &[u8], k: usize) -> bool {
    k >= 2 && b[k - 1] == b[k - 2] && is_cons(b, k - 1)
}

/// Does `b[..k]` end consonant-vowel-consonant, where the final consonant
/// is not w, x or y? (Porter's *o condition.)
fn cvc(b: &[u8], k: usize) -> bool {
    if k < 3 || !is_cons(b, k - 1) || is_cons(b, k - 2) || !is_cons(b, k - 3) {
        return false;
    }
    !matches!(b[k - 1], b'w' | b'x' | b'y')
}

fn ends_with(b: &[u8], k: usize, suffix: &str) -> bool {
    let s = suffix.as_bytes();
    k >= s.len() && &b[k - s.len()..k] == s
}

/// Replace suffix of length `slen` with `rep`, returning the new k.
fn set_to(b: &mut Vec<u8>, k: usize, slen: usize, rep: &str) -> usize {
    let base = k - slen;
    b.truncate(base);
    b.extend_from_slice(rep.as_bytes());
    base + rep.len()
}

fn step1a(b: &mut Vec<u8>, k: usize) -> usize {
    if ends_with(b, k, "sses") {
        set_to(b, k, 4, "ss")
    } else if ends_with(b, k, "ies") {
        set_to(b, k, 3, "i")
    } else if ends_with(b, k, "ss") {
        k
    } else if ends_with(b, k, "s") {
        set_to(b, k, 1, "")
    } else {
        k
    }
}

fn step1b(b: &mut Vec<u8>, k: usize) -> usize {
    if ends_with(b, k, "eed") {
        if measure(b, k - 3) > 0 {
            return set_to(b, k, 3, "ee");
        }
        return k;
    }
    let trimmed = if ends_with(b, k, "ed") && has_vowel(b, k - 2) {
        Some(set_to(b, k, 2, ""))
    } else if ends_with(b, k, "ing") && has_vowel(b, k - 3) {
        Some(set_to(b, k, 3, ""))
    } else {
        None
    };
    let Some(k) = trimmed else { return k };
    // Post-trim fixups: at -> ate, bl -> ble, iz -> ize, undouble, or add e.
    if ends_with(b, k, "at") || ends_with(b, k, "bl") || ends_with(b, k, "iz") {
        let mut nk = k;
        b.truncate(nk);
        b.push(b'e');
        nk += 1;
        nk
    } else if ends_double_cons(b, k) && !matches!(b[k - 1], b'l' | b's' | b'z') {
        b.truncate(k - 1);
        k - 1
    } else if measure(b, k) == 1 && cvc(b, k) {
        b.truncate(k);
        b.push(b'e');
        k + 1
    } else {
        b.truncate(k);
        k
    }
}

fn step1c(b: &mut [u8], k: usize) -> usize {
    if ends_with(b, k, "y") && has_vowel(b, k - 1) {
        b[k - 1] = b'i';
    }
    k
}

/// Apply the first matching (suffix, replacement) rule whose stem measure
/// exceeds `min_m`.
fn rule_table(b: &mut Vec<u8>, k: usize, rules: &[(&str, &str)], min_m: usize) -> usize {
    for (suffix, rep) in rules {
        if ends_with(b, k, suffix) {
            if measure(b, k - suffix.len()) > min_m {
                return set_to(b, k, suffix.len(), rep);
            }
            return k;
        }
    }
    k
}

fn step2(b: &mut Vec<u8>, k: usize) -> usize {
    rule_table(
        b,
        k,
        &[
            ("ational", "ate"),
            ("tional", "tion"),
            ("enci", "ence"),
            ("anci", "ance"),
            ("izer", "ize"),
            ("bli", "ble"),
            ("alli", "al"),
            ("entli", "ent"),
            ("eli", "e"),
            ("ousli", "ous"),
            ("ization", "ize"),
            ("ation", "ate"),
            ("ator", "ate"),
            ("alism", "al"),
            ("iveness", "ive"),
            ("fulness", "ful"),
            ("ousness", "ous"),
            ("aliti", "al"),
            ("iviti", "ive"),
            ("biliti", "ble"),
            ("logi", "log"),
        ],
        0,
    )
}

fn step3(b: &mut Vec<u8>, k: usize) -> usize {
    rule_table(
        b,
        k,
        &[
            ("icate", "ic"),
            ("ative", ""),
            ("alize", "al"),
            ("iciti", "ic"),
            ("ical", "ic"),
            ("ful", ""),
            ("ness", ""),
        ],
        0,
    )
}

fn step4(b: &mut Vec<u8>, k: usize) -> usize {
    // Like rule_table but with m > 1 and the special (s|t)ion case.
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent",
        "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    for suffix in RULES {
        if ends_with(b, k, suffix) {
            let base = k - suffix.len();
            if *suffix == "ion" && !(base >= 1 && matches!(b[base - 1], b's' | b't')) {
                return k;
            }
            if measure(b, base) > 1 {
                return set_to(b, k, suffix.len(), "");
            }
            return k;
        }
    }
    k
}

fn step5a(b: &mut Vec<u8>, k: usize) -> usize {
    if ends_with(b, k, "e") {
        let m = measure(b, k - 1);
        if m > 1 || (m == 1 && !cvc(b, k - 1)) {
            return set_to(b, k, 1, "");
        }
    }
    k
}

fn step5b(b: &[u8], k: usize) -> usize {
    if k >= 2 && b[k - 1] == b'l' && ends_double_cons(b, k) && measure(b, k) > 1 {
        k - 1
    } else {
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference pairs from Porter's published vocabulary output.
    #[test]
    fn classic_porter_examples() {
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(stem(input), want, "stem({input:?})");
        }
    }

    #[test]
    fn covid_domain_terms_conflate() {
        assert_eq!(stem("vaccination"), stem("vaccinations"));
        assert_eq!(stem("vaccinated"), stem("vaccinate"));
        assert_eq!(stem("masks"), stem("mask"));
        assert_eq!(stem("ventilators"), stem("ventilator"));
        assert_eq!(stem("infections"), stem("infection"));
        assert_eq!(stem("symptomatic")[..7], stem("symptomatically")[..7]);
    }

    #[test]
    fn short_words_pass_through() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("at"), "at");
        assert_eq!(stem("a"), "a");
    }

    #[test]
    fn non_ascii_words_pass_through() {
        assert_eq!(stem("médecine"), "médecine");
        assert_eq!(stem("covid-19"), "covid-19");
    }

    #[test]
    fn idempotent_on_common_terms() {
        for w in ["vaccination", "masks", "studied", "severity", "running"] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "stemming {w:?} must be idempotent");
        }
    }
}
