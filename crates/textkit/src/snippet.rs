//! Snippet extraction for search result pages.
//!
//! The COVIDKG result pages (Figs 2 & 4) display "brief snippets of the
//! document" with every matched term highlighted in red. [`make_snippet`]
//! picks the densest window of match spans, expands it to word boundaries,
//! and returns the excerpt together with highlight spans re-based onto the
//! excerpt.

/// An excerpt with highlight spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snippet {
    /// The excerpt text.
    pub text: String,
    /// Byte ranges within `text` to highlight.
    pub highlights: Vec<(usize, usize)>,
    /// True when text was elided before the excerpt.
    pub leading_ellipsis: bool,
    /// True when text was elided after the excerpt.
    pub trailing_ellipsis: bool,
}

impl Snippet {
    /// Render with `[` `]` markers around highlights (used by the CLI
    /// front-end and by tests).
    pub fn render_marked(&self) -> String {
        let mut out = String::with_capacity(self.text.len() + 8);
        if self.leading_ellipsis {
            out.push('…');
        }
        let mut last = 0;
        for &(s, e) in &self.highlights {
            out.push_str(&self.text[last..s]);
            out.push('[');
            out.push_str(&self.text[s..e]);
            out.push(']');
            last = e;
        }
        out.push_str(&self.text[last..]);
        if self.trailing_ellipsis {
            out.push('…');
        }
        out
    }
}

/// Build a snippet of roughly `window` bytes around the densest cluster of
/// `matches` (byte spans into `text`, assumed sorted by start). With no
/// matches, returns the head of the text.
pub fn make_snippet(text: &str, matches: &[(usize, usize)], window: usize) -> Snippet {
    if text.is_empty() {
        return Snippet {
            text: String::new(),
            highlights: Vec::new(),
            leading_ellipsis: false,
            trailing_ellipsis: false,
        };
    }
    let window = window.max(16);

    // Choose the window start: the position maximizing matches inside
    // [start, start+window). Slide over match starts only.
    let (w_start, _count) = if matches.is_empty() {
        (0, 0)
    } else {
        let mut best = (matches[0].0, 0usize);
        for &(s, _) in matches {
            let lo = s.saturating_sub(window / 4); // leave leading context
            let count = matches
                .iter()
                .filter(|&&(ms, me)| ms >= lo && me <= lo + window)
                .count();
            if count > best.1 {
                best = (lo, count);
            }
        }
        best
    };

    let mut start = snap_to_char(text, w_start.min(text.len()));
    let mut end = snap_to_char(text, (start + window).min(text.len()));
    // Expand to word boundaries (do not cut words in half).
    start = expand_left(text, start);
    end = expand_right(text, end);

    // Rebase spans onto the excerpt, then sort and merge overlaps — a
    // quoted phrase and a stemmed token can cover the same bytes, and
    // nested highlights would corrupt rendering.
    let mut highlights: Vec<(usize, usize)> = matches
        .iter()
        .filter(|&&(s, e)| s >= start && e <= end && s < e)
        .map(|&(s, e)| (s - start, e - start))
        .collect();
    highlights.sort_unstable();
    let mut merged: Vec<(usize, usize)> = Vec::with_capacity(highlights.len());
    for (s, e) in highlights {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    let highlights = merged;

    Snippet {
        text: text[start..end].to_string(),
        highlights,
        leading_ellipsis: start > 0,
        trailing_ellipsis: end < text.len(),
    }
}

fn snap_to_char(text: &str, mut i: usize) -> usize {
    while i < text.len() && !text.is_char_boundary(i) {
        i += 1;
    }
    i.min(text.len())
}

/// Maximum distance (in chars) boundary expansion may travel; beyond this
/// we accept cutting mid-word rather than dragging the window away from
/// the matches (long unbroken runs occur in URLs and gene identifiers).
const MAX_EXPAND: usize = 24;

fn expand_left(text: &str, start: usize) -> usize {
    let mut i = start;
    for _ in 0..MAX_EXPAND {
        if i == 0 {
            return 0;
        }
        let prev = text[..i].chars().next_back().unwrap();
        if prev.is_whitespace() {
            return i;
        }
        i -= prev.len_utf8();
    }
    start
}

fn expand_right(text: &str, start: usize) -> usize {
    let mut i = start;
    for c in text[i..].chars().take(MAX_EXPAND) {
        if c.is_whitespace() {
            return i;
        }
        i += c.len_utf8();
    }
    if i >= text.len() {
        text.len()
    } else {
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_matches_returns_head() {
        let s = make_snippet("alpha beta gamma delta", &[], 16);
        assert!(s.text.starts_with("alpha"));
        assert!(!s.leading_ellipsis);
        assert!(s.highlights.is_empty());
    }

    #[test]
    fn highlight_spans_rebase_onto_excerpt() {
        let text = "x".repeat(200) + " masks prevent spread " + &"y".repeat(200);
        let m_start = text.find("masks").unwrap();
        let s = make_snippet(&text, &[(m_start, m_start + 5)], 60);
        assert_eq!(s.highlights.len(), 1);
        let (hs, he) = s.highlights[0];
        assert_eq!(&s.text[hs..he], "masks");
        assert!(s.leading_ellipsis);
        assert!(s.trailing_ellipsis);
    }

    #[test]
    fn densest_cluster_wins() {
        // One early lone match, three clustered matches later.
        let text = format!(
            "mask {} mask mask mask end",
            "filler ".repeat(40)
        );
        let spans: Vec<(usize, usize)> = {
            let mut v = Vec::new();
            let mut at = 0;
            while let Some(p) = text[at..].find("mask") {
                v.push((at + p, at + p + 4));
                at += p + 4;
            }
            v
        };
        let s = make_snippet(&text, &spans, 40);
        assert!(s.highlights.len() >= 3, "got {:?}", s.highlights);
    }

    #[test]
    fn render_marked_wraps_highlights() {
        let text = "wearing masks works";
        let s = make_snippet(text, &[(8, 13)], 64);
        assert_eq!(s.render_marked(), "wearing [masks] works");
    }

    #[test]
    fn words_are_not_cut() {
        let text = "immunocompromised patients need protection from exposure";
        let s = make_snippet(text, &[(0, 17)], 20);
        // Each excerpt edge must be a word boundary.
        assert!(text.contains(&s.text));
        assert!(!s.text.starts_with(' '));
        for part in s.text.split_whitespace() {
            assert!(text.split_whitespace().any(|w| w == part), "{part}");
        }
    }

    #[test]
    fn overlapping_spans_merge_instead_of_corrupting() {
        let text = "after dose two reactions";
        // "dose two" phrase and "dose" stem overlap; nested/unsorted input.
        let s = make_snippet(text, &[(6, 14), (6, 10)], 64);
        assert_eq!(s.render_marked(), "after [dose two] reactions");
        // Out-of-order + partially overlapping.
        let s = make_snippet(text, &[(11, 14), (6, 12)], 64);
        assert_eq!(s.render_marked(), "after [dose two] reactions");
        // Adjacent-but-disjoint spans stay separate.
        let s = make_snippet(text, &[(6, 10), (11, 14)], 64);
        assert_eq!(s.render_marked(), "after [dose] [two] reactions");
    }

    #[test]
    fn empty_text() {
        let s = make_snippet("", &[], 32);
        assert!(s.text.is_empty());
    }

    #[test]
    fn multibyte_safety() {
        let text = "é".repeat(100);
        let s = make_snippet(&text, &[(10, 12)], 24);
        // Must not panic and must be valid UTF-8 slicing.
        assert!(!s.text.is_empty());
    }
}
