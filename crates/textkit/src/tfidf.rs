//! TF-IDF weighting (Sparck Jones [53] in the paper's references).
//!
//! §2.1: "Each term in the corpus has an associated Term
//! Frequency-Inverse Document Frequency (TF-IDF) weight in order to reward
//! more important terms. For each matched term its TF-IDF is weighted in
//! the ranking per document." [`TfIdf`] holds the corpus statistics and
//! produces [`SparseVec`] document vectors plus per-(term, doc) weights
//! consumed by the ranking `$function` stages.

use crate::vocab::Vocabulary;
use std::collections::HashMap;

/// A sparse feature vector: sorted `(feature id, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Build from unsorted pairs; duplicate ids are summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => entries.push((id, w)),
            }
        }
        SparseVec { entries }
    }

    /// Sorted entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Weight of a feature (0 if absent).
    pub fn get(&self, id: u32) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map_or(0.0, |idx| self.entries[idx].1)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector (merge join over sorted ids).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j, mut acc) = (0, 0, 0.0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, wa) = self.entries[i];
            let (b, wb) = other.entries[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += wa * wb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[−1, 1]`; 0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }
}

/// TF-IDF vectorizer bound to a [`Vocabulary`].
#[derive(Debug, Clone)]
pub struct TfIdf {
    vocab: Vocabulary,
}

impl TfIdf {
    /// Wrap a vocabulary.
    pub fn new(vocab: Vocabulary) -> Self {
        TfIdf { vocab }
    }

    /// The underlying vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Compute the TF-IDF weight for a term occurring `tf` times in a
    /// document: `(1 + ln tf) · idf(term)`; 0 for out-of-vocabulary terms.
    pub fn weight(&self, term: &str, tf: u64) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        match self.vocab.id(term) {
            Some(id) => (1.0 + (tf as f64).ln()) * self.vocab.idf(id),
            None => 0.0,
        }
    }

    /// Vectorize a tokenized (lowercased) document.
    pub fn vectorize<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> SparseVec {
        let mut tf: HashMap<u32, u64> = HashMap::new();
        for tok in tokens {
            if let Some(id) = self.vocab.id(tok) {
                *tf.entry(id).or_insert(0) += 1;
            }
        }
        SparseVec::from_pairs(
            tf.into_iter()
                .map(|(id, n)| (id, (1.0 + (n as f64).ln()) * self.vocab.idf(id)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabularyBuilder;

    fn model(docs: &[&str]) -> TfIdf {
        let mut b = VocabularyBuilder::new();
        for d in docs {
            let toks = crate::tokenize_lower(d);
            b.add_document(toks.iter().map(String::as_str));
        }
        TfIdf::new(b.build(1000))
    }

    #[test]
    fn sparse_vec_dedupes_and_sorts() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.entries(), &[(1, 2.0), (3, 1.5)]);
        assert_eq!(v.get(3), 1.5);
        assert_eq!(v.get(9), 0.0);
    }

    #[test]
    fn dot_and_cosine() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 2.0)]);
        let b = SparseVec::from_pairs(vec![(2, 3.0), (5, 1.0)]);
        assert!((a.dot(&b) - 6.0).abs() < 1e-12);
        let self_cos = a.cosine(&a);
        assert!((self_cos - 1.0).abs() < 1e-12);
        assert_eq!(SparseVec::default().cosine(&a), 0.0);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let m = model(&[
            "vaccine trial results",
            "vaccine mask study",
            "vaccine dosage remdesivir",
        ]);
        // "vaccine" appears in all docs, "remdesivir" in one.
        assert!(m.weight("remdesivir", 1) > m.weight("vaccine", 1));
    }

    #[test]
    fn tf_is_sublinear() {
        let m = model(&["mask mask vaccine", "other words"]);
        let w1 = m.weight("mask", 1);
        let w4 = m.weight("mask", 4);
        assert!(w4 > w1);
        assert!(w4 < 4.0 * w1, "log damping expected");
    }

    #[test]
    fn oov_terms_weigh_zero() {
        let m = model(&["mask vaccine"]);
        assert_eq!(m.weight("nonexistent", 3), 0.0);
        assert_eq!(m.weight("mask", 0), 0.0);
    }

    #[test]
    fn vectorize_matches_weight() {
        let m = model(&["mask mask vaccine", "vaccine trial"]);
        let toks = crate::tokenize_lower("mask mask vaccine");
        let v = m.vectorize(toks.iter().map(String::as_str));
        let id = m.vocabulary().id("mask").unwrap();
        assert!((v.get(id) - m.weight("mask", 2)).abs() < 1e-12);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn similar_documents_have_higher_cosine() {
        let m = model(&[
            "vaccine side effects fever",
            "vaccine side effects chills",
            "ventilator icu capacity",
        ]);
        let v = |s: &str| {
            let toks = crate::tokenize_lower(s);
            m.vectorize(toks.iter().map(String::as_str))
        };
        let a = v("vaccine side effects fever");
        let b = v("vaccine side effects chills");
        let c = v("ventilator icu capacity");
        assert!(a.cosine(&b) > a.cosine(&c));
    }
}
