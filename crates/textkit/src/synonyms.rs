//! Medical synonym groups for query expansion.
//!
//! §5 of the paper: "The ranking function incorporates matching terms and
//! synonyms, proximity, document, terms, and publication weights…" and
//! §4.2 notes that "significant concepts and terms can be referred to
//! differently (e.g. *COVID-19* and *coronavirus disease 2019*)". This
//! module holds the curated single-token synonym groups; membership is
//! tested on Porter stems so inflected forms resolve to the same group.

use crate::stem::stem;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Curated synonym groups (surface forms; stems are derived).
static GROUPS: &[&[&str]] = &[
    &["covid", "covid-19", "coronavirus", "sars-cov-2"],
    &["vaccine", "vaccination", "immunization", "inoculation", "jab"],
    &["side-effect", "reactogenicity", "adverse"],
    &["mask", "respirator", "ppe"],
    &["ventilator", "intubation"],
    &["symptom", "manifestation", "presentation"],
    &["transmission", "spread", "contagion"],
    &["treatment", "therapy", "therapeutic"],
    &["children", "pediatric", "paediatric", "infant"],
    &["test", "testing", "assay", "diagnostic"],
    &["doctor", "physician", "clinician"],
    &["drug", "medication", "medicine"],
    &["strain", "variant", "lineage"],
    &["fever", "pyrexia"],
    &["efficacy", "effectiveness"],
];

fn index() -> &'static HashMap<String, usize> {
    static INDEX: OnceLock<HashMap<String, usize>> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut map = HashMap::new();
        for (gid, group) in GROUPS.iter().enumerate() {
            for word in *group {
                map.insert(stem(&word.to_lowercase()), gid);
            }
        }
        map
    })
}

/// Stems synonymous with `query_stem` (excluding the stem itself);
/// empty when the term has no curated group.
pub fn synonym_stems(query_stem: &str) -> Vec<String> {
    let Some(&gid) = index().get(query_stem) else {
        return Vec::new();
    };
    let mut out: Vec<String> = GROUPS[gid]
        .iter()
        .map(|w| stem(&w.to_lowercase()))
        .filter(|s| s != query_stem)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Are two stems in the same synonym group (or equal)?
pub fn are_synonyms(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (index().get(a), index().get(b)) {
        (Some(ga), Some(gb)) => ga == gb,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaccine_group_resolves_inflections() {
        // "vaccinations" stems to "vaccin", in the vaccine group.
        let syns = synonym_stems(&stem("vaccinations"));
        assert!(syns.contains(&stem("immunization")), "{syns:?}");
        assert!(syns.contains(&stem("inoculation")));
        assert!(!syns.contains(&stem("vaccine")), "self excluded");
    }

    #[test]
    fn symmetric_membership() {
        assert!(are_synonyms(&stem("mask"), &stem("respirator")));
        assert!(are_synonyms(&stem("respirator"), &stem("mask")));
        assert!(are_synonyms(&stem("fever"), &stem("fever")));
        assert!(!are_synonyms(&stem("mask"), &stem("vaccine")));
        assert!(!are_synonyms(&stem("zzz"), &stem("mask")));
    }

    #[test]
    fn ungrouped_terms_have_no_synonyms() {
        assert!(synonym_stems(&stem("placebo")).is_empty());
        assert!(synonym_stems("").is_empty());
    }

    #[test]
    fn groups_are_disjoint_on_stems() {
        let mut seen = HashMap::new();
        for (gid, group) in GROUPS.iter().enumerate() {
            for w in *group {
                let s = stem(&w.to_lowercase());
                if let Some(prev) = seen.insert(s.clone(), gid) {
                    assert_eq!(prev, gid, "stem {s:?} appears in two groups");
                }
            }
        }
    }
}
