//! The vocabulary / feature space (§3.2).
//!
//! The paper: "We have used 100'000 dimensional feature space, i.e. 100K
//! English terms in our vocabulary that we have selected by taking all
//! terms from our datasets, sorting by frequency and cutting off the noise
//! words and spam." This module implements exactly that selection: count
//! term frequencies across documents, drop stopwords and spam-like terms,
//! sort by frequency (descending, ties broken lexicographically for
//! determinism) and keep the top `max_terms`.
//!
//! The resulting [`Vocabulary`] maps terms to dense feature ids used by
//! the SVM feature vectors and the embedding tables.

use crate::stopwords::is_stopword;
use std::collections::HashMap;

/// Accumulates term statistics across a corpus.
#[derive(Debug, Default)]
pub struct VocabularyBuilder {
    /// term -> (collection frequency, document frequency)
    counts: HashMap<String, (u64, u64)>,
    docs: u64,
}

impl VocabularyBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one document's tokens (already lowercased).
    pub fn add_document<'a, I: IntoIterator<Item = &'a str>>(&mut self, tokens: I) {
        self.docs += 1;
        let mut seen_in_doc: HashMap<&str, ()> = HashMap::new();
        for tok in tokens {
            let entry = match self.counts.get_mut(tok) {
                Some(e) => e,
                None => self.counts.entry(tok.to_string()).or_insert((0, 0)),
            };
            entry.0 += 1;
            if seen_in_doc.insert(tok, ()).is_none() {
                entry.1 += 1;
            }
        }
    }

    /// Number of documents added so far.
    pub fn document_count(&self) -> u64 {
        self.docs
    }

    /// Number of distinct terms seen so far.
    pub fn distinct_terms(&self) -> usize {
        self.counts.len()
    }

    /// Finalize into a [`Vocabulary`] of at most `max_terms` dimensions.
    ///
    /// Selection per §3.2: drop stopwords ("noise words") and spam-like
    /// terms, then keep the `max_terms` most frequent terms.
    pub fn build(self, max_terms: usize) -> Vocabulary {
        let mut terms: Vec<(String, u64, u64)> = self
            .counts
            .into_iter()
            .filter(|(t, _)| !is_stopword(t) && !is_spam_term(t))
            .map(|(t, (cf, df))| (t, cf, df))
            .collect();
        // Frequency-descending, then lexicographic for determinism.
        terms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        terms.truncate(max_terms);

        let mut index = HashMap::with_capacity(terms.len());
        let mut entries = Vec::with_capacity(terms.len());
        for (id, (term, cf, df)) in terms.into_iter().enumerate() {
            index.insert(term.clone(), id as u32);
            entries.push(TermEntry {
                term,
                collection_freq: cf,
                doc_freq: df,
            });
        }
        Vocabulary {
            index,
            entries,
            docs: self.docs,
        }
    }
}

/// Spam / junk heuristics: pure punctuation runs, very long tokens and
/// tokens that are mostly digits mixed with letters (e.g. tracking ids).
/// Mirrors the "spam classifier for web tables" cutoff the paper cites
/// ([78]) at the level of detail the paper gives.
fn is_spam_term(term: &str) -> bool {
    if term.len() > 32 || term.is_empty() {
        return true;
    }
    let digits = term.chars().filter(|c| c.is_ascii_digit()).count();
    let letters = term.chars().filter(|c| c.is_alphabetic()).count();
    // Mixed alphanumeric junk like "x7f9q2": many digits and letters
    // interleaved in a single token longer than a typical model number.
    if digits >= 3 && letters >= 3 && term.len() >= 8 {
        let transitions = term
            .as_bytes()
            .windows(2)
            .filter(|w| w[0].is_ascii_digit() != w[1].is_ascii_digit())
            .count();
        if transitions >= 4 {
            return true;
        }
    }
    false
}

/// One selected vocabulary term with its corpus statistics.
#[derive(Debug, Clone)]
pub struct TermEntry {
    /// The term text.
    pub term: String,
    /// Total occurrences across the corpus.
    pub collection_freq: u64,
    /// Number of documents containing the term.
    pub doc_freq: u64,
}

/// A frozen term → feature-id mapping (the feature space of §3.2).
#[derive(Debug, Clone)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    entries: Vec<TermEntry>,
    docs: u64,
}

impl Vocabulary {
    /// Feature id for a term, if in the vocabulary.
    pub fn id(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }

    /// Term for a feature id.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.entries.get(id as usize).map(|e| e.term.as_str())
    }

    /// Entry (term + stats) for a feature id.
    pub fn entry(&self, id: u32) -> Option<&TermEntry> {
        self.entries.get(id as usize)
    }

    /// Dimensionality of the feature space.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no terms were selected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of documents the statistics were computed over.
    pub fn document_count(&self) -> u64 {
        self.docs
    }

    /// Inverse document frequency of a term id:
    /// `ln((1 + N) / (1 + df)) + 1` (smoothed, always positive).
    pub fn idf(&self, id: u32) -> f64 {
        let df = self
            .entries
            .get(id as usize)
            .map_or(0, |e| e.doc_freq);
        (((1 + self.docs) as f64) / ((1 + df) as f64)).ln() + 1.0
    }

    /// Iterate `(id, entry)` pairs in frequency order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &TermEntry)> {
        self.entries.iter().enumerate().map(|(i, e)| (i as u32, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(docs: &[&str], max: usize) -> Vocabulary {
        let mut b = VocabularyBuilder::new();
        for d in docs {
            let toks = crate::tokenize_lower(d);
            b.add_document(toks.iter().map(String::as_str));
        }
        b.build(max)
    }

    #[test]
    fn frequency_ordering() {
        let v = build(
            &["vaccine vaccine vaccine mask mask dose", "vaccine mask"],
            10,
        );
        assert_eq!(v.term(0), Some("vaccine"));
        assert_eq!(v.term(1), Some("mask"));
        assert_eq!(v.term(2), Some("dose"));
    }

    #[test]
    fn stopwords_are_cut() {
        let v = build(&["the the the the vaccine"], 10);
        assert_eq!(v.id("the"), None);
        assert!(v.id("vaccine").is_some());
    }

    #[test]
    fn max_terms_caps_dimensionality() {
        let v = build(&["a1 b1 c1 d1 e1 f1 g1 h1"], 3);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let v = build(&["mask mask mask", "mask vaccine"], 10);
        let id = v.id("mask").unwrap();
        let e = v.entry(id).unwrap();
        assert_eq!(e.collection_freq, 4);
        assert_eq!(e.doc_freq, 2);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let v = build(&["common rare", "common", "common"], 10);
        let common = v.id("common").unwrap();
        let rare = v.id("rare").unwrap();
        assert!(v.idf(rare) > v.idf(common));
        assert!(v.idf(common) >= 1.0);
    }

    #[test]
    fn spam_terms_are_cut() {
        assert!(is_spam_term("x7f9q2ab1c3"));
        assert!(is_spam_term(&"a".repeat(40)));
        assert!(!is_spam_term("covid-19"));
        assert!(!is_spam_term("sars-cov-2"));
        assert!(!is_spam_term("ventilator"));
    }

    #[test]
    fn deterministic_tie_break() {
        let v1 = build(&["zeta alpha"], 10);
        let v2 = build(&["alpha zeta"], 10);
        assert_eq!(v1.term(0), v2.term(0));
        assert_eq!(v1.term(0), Some("alpha"));
    }

    #[test]
    fn unknown_terms_have_no_id() {
        let v = build(&["mask"], 10);
        assert_eq!(v.id("zzz"), None);
        assert_eq!(v.term(99), None);
    }
}
