//! English stopword ("noise word") list.
//!
//! §3.2 of the paper builds the 100k-term feature space by "sorting by
//! frequency and cutting off the noise words and spam". This module
//! provides the noise-word predicate used by the vocabulary builder and
//! the query parser (stopwords never contribute to ranking scores).

/// Sorted list of stopwords (binary-searchable).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any",
    "are", "aren't", "as", "at", "be", "because", "been", "before", "being", "below",
    "between", "both", "but", "by", "can", "cannot", "could", "couldn't", "did", "didn't",
    "do", "does", "doesn't", "doing", "don't", "down", "during", "each", "et", "etc",
    "few", "for", "from", "further", "had", "hadn't", "has", "hasn't", "have", "haven't",
    "having", "he", "he'd", "he'll", "he's", "her", "here", "here's", "hers", "herself",
    "him", "himself", "his", "how", "how's", "i", "i'd", "i'll", "i'm", "i've", "if",
    "in", "into", "is", "isn't", "it", "it's", "its", "itself", "let's", "me", "more",
    "most", "mustn't", "my", "myself", "no", "nor", "not", "of", "off", "on", "once",
    "only", "or", "other", "ought", "our", "ours", "ourselves", "out", "over", "own",
    "same", "shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't", "so",
    "some", "such", "than", "that", "that's", "the", "their", "theirs", "them",
    "themselves", "then", "there", "there's", "these", "they", "they'd", "they'll",
    "they're", "they've", "this", "those", "through", "to", "too", "under", "until",
    "up", "very", "was", "wasn't", "we", "we'd", "we'll", "we're", "we've", "were",
    "weren't", "what", "what's", "when", "when's", "where", "where's", "which", "while",
    "who", "who's", "whom", "why", "why's", "with", "won't", "would", "wouldn't", "you",
    "you'd", "you'll", "you're", "you've", "your", "yours", "yourself", "yourselves",
];

/// Is `word` (already lowercased) a stopword?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// The full stopword list, for callers that need to iterate it.
pub fn all() -> &'static [&'static str] {
    STOPWORDS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{:?} must sort before {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "with", "a"] {
            assert!(is_stopword(w), "{w:?}");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["vaccine", "mask", "covid", "ventilator", "symptom"] {
            assert!(!is_stopword(w), "{w:?}");
        }
    }

    #[test]
    fn case_sensitivity_contract() {
        // Callers must lowercase first.
        assert!(!is_stopword("The"));
    }
}
