//! Property tests for the text substrate.

use covidkg_text::{levenshtein, make_snippet, normalize_term, stem, tokenize, TfIdf, VocabularyBuilder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn token_spans_slice_back_to_token_text(text in "\\PC{0,64}") {
        for tok in tokenize(&text) {
            prop_assert_eq!(&text[tok.start..tok.end], tok.text.as_str());
        }
    }

    #[test]
    fn tokens_are_ordered_and_disjoint(text in "\\PC{0,64}") {
        let toks = tokenize(&text);
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    // NOTE: Porter stemming is *not* idempotent on arbitrary strings
    // (e.g. "uase" → "uas" → "ua"), so we assert shape invariants instead.
    #[test]
    fn stem_output_is_lowercase_ascii(word in "[a-z]{1,16}") {
        let s = stem(&word);
        prop_assert!(!s.is_empty());
        prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stem_never_grows_much(word in "[a-z]{3,16}") {
        // Porter may add at most one char (e.g. undoubling then +e).
        prop_assert!(stem(&word).len() <= word.len() + 1);
    }

    #[test]
    fn normalization_is_symmetric(a in "[a-zA-Z -]{0,24}", b in "[a-zA-Z -]{0,24}") {
        prop_assert_eq!(
            normalize_term(&a) == normalize_term(&b),
            normalize_term(&b) == normalize_term(&a)
        );
    }

    #[test]
    fn levenshtein_triangle_inequality(a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_zero_iff_equal(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
    }

    #[test]
    fn snippet_never_panics_and_highlights_are_valid(
        text in "\\PC{0,128}",
        window in 16usize..128,
    ) {
        // Derive plausible match spans from token positions.
        let spans: Vec<(usize, usize)> = tokenize(&text)
            .into_iter()
            .take(4)
            .map(|t| (t.start, t.end))
            .collect();
        let s = make_snippet(&text, &spans, window);
        for (a, b) in s.highlights {
            prop_assert!(a < b && b <= s.text.len());
            prop_assert!(s.text.is_char_boundary(a) && s.text.is_char_boundary(b));
        }
    }

    #[test]
    fn tfidf_cosine_bounds(d1 in "[a-z ]{0,48}", d2 in "[a-z ]{0,48}") {
        let mut b = VocabularyBuilder::new();
        for d in [&d1, &d2] {
            let toks = covidkg_text::tokenize_lower(d);
            b.add_document(toks.iter().map(String::as_str));
        }
        let m = TfIdf::new(b.build(1000));
        let toks1 = covidkg_text::tokenize_lower(&d1);
        let toks2 = covidkg_text::tokenize_lower(&d2);
        let v1 = m.vectorize(toks1.iter().map(String::as_str));
        let v2 = m.vectorize(toks2.iter().map(String::as_str));
        let cos = v1.cosine(&v2);
        prop_assert!((-1.0001..=1.0001).contains(&cos));
    }
}
