//! Property tests for the text substrate. Runs on the in-repo
//! `covidkg_rand::prop` harness (offline proptest replacement).

use covidkg_rand::prop::{self, any_string, charset_string, lowercase_string};
use covidkg_rand::Rng;
use covidkg_text::{
    levenshtein, make_snippet, normalize_term, stem, tokenize, TfIdf, VocabularyBuilder,
};

const ALNUM_SPACE: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', ' ', ' ', '-',
];

#[test]
fn token_spans_slice_back_to_token_text() {
    prop::run(256, |rng| {
        let text = any_string(rng, 0, 64);
        for tok in tokenize(&text) {
            assert_eq!(&text[tok.start..tok.end], tok.text.as_str());
        }
    });
}

#[test]
fn tokens_are_ordered_and_disjoint() {
    prop::run(256, |rng| {
        let text = any_string(rng, 0, 64);
        let toks = tokenize(&text);
        for w in toks.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    });
}

// NOTE: Porter stemming is *not* idempotent on arbitrary strings
// (e.g. "uase" → "uas" → "ua"), so we assert shape invariants instead.
#[test]
fn stem_output_is_lowercase_ascii() {
    prop::run(256, |rng| {
        let word = lowercase_string(rng, 1, 16);
        let s = stem(&word);
        assert!(!s.is_empty());
        assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
    });
}

#[test]
fn stem_never_grows_much() {
    prop::run(256, |rng| {
        let word = lowercase_string(rng, 3, 16);
        // Porter may add at most one char (e.g. undoubling then +e).
        assert!(stem(&word).len() <= word.len() + 1);
    });
}

#[test]
fn normalization_is_symmetric() {
    prop::run(128, |rng| {
        let a = charset_string(rng, ALNUM_SPACE, 0, 24);
        let b = charset_string(rng, ALNUM_SPACE, 0, 24);
        assert_eq!(
            normalize_term(&a) == normalize_term(&b),
            normalize_term(&b) == normalize_term(&a)
        );
    });
}

#[test]
fn levenshtein_triangle_inequality() {
    prop::run(128, |rng| {
        let a = lowercase_string(rng, 0, 10);
        let b = lowercase_string(rng, 0, 10);
        let c = lowercase_string(rng, 0, 10);
        assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    });
}

#[test]
fn levenshtein_zero_iff_equal() {
    prop::run(128, |rng| {
        let a = lowercase_string(rng, 0, 12);
        let b = lowercase_string(rng, 0, 12);
        assert_eq!(levenshtein(&a, &b) == 0, a == b);
    });
}

#[test]
fn snippet_never_panics_and_highlights_are_valid() {
    prop::run(128, |rng| {
        let text = any_string(rng, 0, 128);
        let window = rng.gen_range(16usize..128);
        // Derive plausible match spans from token positions.
        let spans: Vec<(usize, usize)> = tokenize(&text)
            .into_iter()
            .take(4)
            .map(|t| (t.start, t.end))
            .collect();
        let s = make_snippet(&text, &spans, window);
        for (a, b) in s.highlights {
            assert!(a < b && b <= s.text.len());
            assert!(s.text.is_char_boundary(a) && s.text.is_char_boundary(b));
        }
    });
}

#[test]
fn tfidf_cosine_bounds() {
    const LOWER_SPACE: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z', ' ', ' ', ' ',
    ];
    prop::run(64, |rng| {
        let d1 = charset_string(rng, LOWER_SPACE, 0, 48);
        let d2 = charset_string(rng, LOWER_SPACE, 0, 48);
        let mut b = VocabularyBuilder::new();
        for d in [&d1, &d2] {
            let toks = covidkg_text::tokenize_lower(d);
            b.add_document(toks.iter().map(String::as_str));
        }
        let m = TfIdf::new(b.build(1000));
        let toks1 = covidkg_text::tokenize_lower(&d1);
        let toks2 = covidkg_text::tokenize_lower(&d2);
        let v1 = m.vectorize(toks1.iter().map(String::as_str));
        let v2 = m.vectorize(toks2.iter().map(String::as_str));
        let cos = v1.cosine(&v2);
        assert!((-1.0001..=1.0001).contains(&cos));
    });
}
