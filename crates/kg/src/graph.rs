//! The hierarchical knowledge-graph structure.
//!
//! §4.2: "The graph is populated with nodes and edges and is stored in
//! JSON format. The structure of the graph is hierarchical, so all child
//! nodes have parent nodes." Overlapping categorizations are explicitly
//! kept ("it was decided to store all different ways to categorize the
//! data without merging them"), so a node may have several parents. The
//! root has none. Search returns matching nodes together with the path
//! from the root, which the front-end highlights.

use covidkg_json::{obj, Value};
use covidkg_text::{normalize_term, NormalizedTerm};
use std::collections::HashMap;

/// Index of a node within the graph.
pub type NodeId = usize;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The single root (e.g. `COVID-19`).
    Root,
    /// An organizing category (`Vaccines`, `Symptoms`, …).
    Category,
    /// A concrete entity / finding (`Pfizer`, `Fever`, …).
    Entity,
}

impl NodeKind {
    /// Stable serialization label (also used by the HTTP layer).
    pub fn as_str(self) -> &'static str {
        match self {
            NodeKind::Root => "root",
            NodeKind::Category => "category",
            NodeKind::Entity => "entity",
        }
    }

    /// Inverse of [`NodeKind::as_str`] (query-plan and JSON parsing).
    pub fn parse(s: &str) -> Option<NodeKind> {
        match s {
            "root" => Some(NodeKind::Root),
            "category" => Some(NodeKind::Category),
            "entity" => Some(NodeKind::Entity),
            _ => None,
        }
    }
}

/// One node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Id (index).
    pub id: NodeId,
    /// Display label.
    pub label: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Parent ids (empty only for the root).
    pub parents: Vec<NodeId>,
    /// Child ids.
    pub children: Vec<NodeId>,
    /// Publication ids this node's knowledge came from (provenance — "the
    /// nodes along the path provide access to the publications").
    pub provenance: Vec<String>,
    /// Fusion confidence in `[0, 1]` (1.0 for seeded nodes).
    pub confidence: f64,
}

/// A search hit: the node plus the highlighted path from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchHit {
    /// Matching node.
    pub node: NodeId,
    /// Node ids from the root to the match (inclusive).
    pub path: Vec<NodeId>,
}

/// The knowledge graph.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    nodes: Vec<Node>,
    /// normalized-term key → node ids (several labels can normalize alike).
    term_index: HashMap<String, Vec<NodeId>>,
    /// label stem → node ids (search's stem-containment candidates).
    stem_index: HashMap<String, Vec<NodeId>>,
    /// lowercased-label byte trigram → node ids (search's substring
    /// candidates; a substring match implies every query trigram occurs).
    trigram_index: HashMap<[u8; 3], Vec<NodeId>>,
}

impl KnowledgeGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the root node. Panics if called twice.
    pub fn add_root(&mut self, label: impl Into<String>) -> NodeId {
        assert!(self.nodes.is_empty(), "root must be the first node");
        self.push_node(label.into(), NodeKind::Root, Vec::new(), 1.0)
    }

    /// Add a node under `parent`.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        kind: NodeKind,
        confidence: f64,
    ) -> NodeId {
        assert!(parent < self.nodes.len(), "unknown parent {parent}");
        let id = self.push_node(label.into(), kind, vec![parent], confidence);
        self.nodes[parent].children.push(id);
        id
    }

    /// Link an existing node under an additional parent (overlapping
    /// categorizations, §4.2).
    pub fn add_parent(&mut self, node: NodeId, parent: NodeId) {
        assert!(node < self.nodes.len() && parent < self.nodes.len());
        assert_ne!(node, parent, "node cannot parent itself");
        if !self.nodes[node].parents.contains(&parent) {
            self.nodes[node].parents.push(parent);
            self.nodes[parent].children.push(node);
        }
    }

    fn push_node(
        &mut self,
        label: String,
        kind: NodeKind,
        parents: Vec<NodeId>,
        confidence: f64,
    ) -> NodeId {
        let id = self.nodes.len();
        self.index_label(id, &label);
        self.nodes.push(Node {
            id,
            label,
            kind,
            parents,
            children: Vec::new(),
            provenance: Vec::new(),
            confidence,
        });
        id
    }

    /// Maintain every label-derived index for a new node. Labels are
    /// immutable after creation, so insertion is the only sync point —
    /// `add_child`/`add_parent` mutate topology, never labels, and both
    /// funnel node creation through here.
    fn index_label(&mut self, id: NodeId, label: &str) {
        let norm = normalize_term(label);
        self.term_index.entry(norm.key()).or_default().push(id);
        for stem in &norm.stems {
            let ids = self.stem_index.entry(stem.clone()).or_default();
            if ids.last() != Some(&id) {
                ids.push(id);
            }
        }
        for tri in trigrams(&label.to_lowercase()) {
            let ids = self.trigram_index.entry(tri).or_default();
            if ids.last() != Some(&id) {
                ids.push(id);
            }
        }
    }

    /// Attach provenance (a publication id) to a node.
    pub fn add_provenance(&mut self, node: NodeId, paper_id: impl Into<String>) {
        let paper_id = paper_id.into();
        let prov = &mut self.nodes[node].provenance;
        if !prov.contains(&paper_id) {
            prov.push(paper_id);
        }
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Nodes whose label normalizes to the same key as `term`
    /// (`Vaccine` finds `Vaccine(s)`, §4.2's normalized NLP matching).
    pub fn find_by_term(&self, term: &str) -> Vec<NodeId> {
        let norm = normalize_term(term);
        if norm.is_empty() {
            return Vec::new();
        }
        self.term_index.get(&norm.key()).cloned().unwrap_or_default()
    }

    /// Same, restricted to children of `parent`.
    pub fn find_child_by_term(&self, parent: NodeId, term: &str) -> Option<NodeId> {
        let norm = normalize_term(term);
        self.nodes[parent]
            .children
            .iter()
            .copied()
            .find(|&c| normalize_term(&self.nodes[c].label) == norm)
    }

    /// Path from the root to `node` (first parent chain). Used for path
    /// highlighting in the front-end.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        let mut guard = 0;
        while let Some(&parent) = self.nodes[cur].parents.first() {
            path.push(parent);
            cur = parent;
            guard += 1;
            if guard > self.nodes.len() {
                break; // cycle guard; the API prevents cycles but stay safe
            }
        }
        path.reverse();
        path
    }

    /// Substring/stem search over labels; returns hits with highlighted
    /// paths, ordered by node id.
    ///
    /// Executes from the incrementally-maintained label indexes: stem
    /// postings intersected for stem-containment, the normalized-term
    /// index for exact matches, and a lowercased-trigram index for
    /// substring candidates — each candidate then verified against the
    /// exact scan predicate, so results are provably identical to
    /// [`KnowledgeGraph::search_scan`] (pinned by a unit test here and
    /// the seeded property test in `tests/query_prop.rs`). Queries too
    /// short to have a trigram fall back to the scan.
    pub fn search(&self, query: &str) -> Vec<SearchHit> {
        let qnorm = normalize_term(query);
        if qnorm.is_empty() {
            return Vec::new();
        }
        let qlower = query.to_lowercase();
        if qlower.len() < 3 {
            return self.search_scan(query);
        }
        let mut cands: Vec<NodeId> = Vec::new();
        // Substring candidates: nodes containing every query trigram.
        cands.extend(self.intersect_postings(
            trigrams(&qlower).map(|t| self.trigram_index.get(&t)),
        ));
        // Exact normalized match.
        if let Some(ids) = self.term_index.get(&qnorm.key()) {
            cands.extend_from_slice(ids);
        }
        // Stem containment: nodes whose label stems cover the query's.
        if !qnorm.stems.is_empty() {
            cands.extend(self.intersect_postings(
                qnorm.stems.iter().map(|s| self.stem_index.get(s)),
            ));
        }
        cands.sort_unstable();
        cands.dedup();
        cands
            .into_iter()
            .filter(|&id| self.matches_query(id, &qlower, &qnorm))
            .map(|id| SearchHit { node: id, path: self.path_to_root(id) })
            .collect()
    }

    /// The original linear scan, kept as the equivalence oracle for the
    /// index-backed [`KnowledgeGraph::search`].
    pub fn search_scan(&self, query: &str) -> Vec<SearchHit> {
        let qnorm = normalize_term(query);
        if qnorm.is_empty() {
            return Vec::new();
        }
        let qlower = query.to_lowercase();
        self.nodes
            .iter()
            .filter(|n| self.matches_query(n.id, &qlower, &qnorm))
            .map(|n| SearchHit {
                node: n.id,
                path: self.path_to_root(n.id),
            })
            .collect()
    }

    /// The one search predicate both paths share.
    fn matches_query(&self, id: NodeId, qlower: &str, qnorm: &NormalizedTerm) -> bool {
        let n = &self.nodes[id];
        let nnorm = normalize_term(&n.label);
        n.label.to_lowercase().contains(qlower) || nnorm == *qnorm || contains_all(&nnorm, qnorm)
    }

    /// Intersect posting lists (each ascending by construction); any
    /// missing list empties the result.
    fn intersect_postings<'a>(
        &self,
        lists: impl Iterator<Item = Option<&'a Vec<NodeId>>>,
    ) -> Vec<NodeId> {
        let mut acc: Option<Vec<NodeId>> = None;
        for list in lists {
            let Some(list) = list else { return Vec::new() };
            acc = Some(match acc {
                None => list.clone(),
                Some(prev) => prev
                    .into_iter()
                    .filter(|id| list.binary_search(id).is_ok())
                    .collect(),
            });
            if acc.as_ref().is_some_and(Vec::is_empty) {
                return Vec::new();
            }
        }
        acc.unwrap_or_default()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.path_to_root(node).len().saturating_sub(1)
    }

    /// Render the hierarchy as an indented tree down to `max_depth`
    /// (root = depth 0), the textual form of the №9/10 interactive
    /// browse. Nodes with children beyond the depth limit show a
    /// collapsed marker with the hidden-subtree size, mirroring the
    /// front-end's expand/collapse affordance.
    pub fn render_tree(&self, from: NodeId, max_depth: usize) -> String {
        let mut out = String::new();
        self.render_rec(from, 0, max_depth, &mut out, &mut vec![false; self.nodes.len()]);
        out
    }

    fn render_rec(
        &self,
        node: NodeId,
        depth: usize,
        max_depth: usize,
        out: &mut String,
        visited: &mut Vec<bool>,
    ) {
        // Multi-parent nodes appear once; later encounters show a ref.
        use std::fmt::Write as _;
        let n = &self.nodes[node];
        let prov = if n.provenance.is_empty() {
            String::new()
        } else {
            format!("  [{} papers]", n.provenance.len())
        };
        if visited[node] {
            let _ = writeln!(out, "{}{} (↟ shared)", "  ".repeat(depth), n.label);
            return;
        }
        visited[node] = true;
        let _ = writeln!(out, "{}{}{}", "  ".repeat(depth), n.label, prov);
        if depth >= max_depth {
            if !n.children.is_empty() {
                let hidden = self.subtree_size(node) - 1;
                let _ = writeln!(out, "{}▸ {} more…", "  ".repeat(depth + 1), hidden);
            }
            return;
        }
        for &c in &n.children {
            self.render_rec(c, depth + 1, max_depth, out, visited);
        }
    }

    /// Number of nodes in the subtree under `node` (including it; shared
    /// descendants counted once).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![node];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            count += 1;
            stack.extend(self.nodes[n].children.iter().copied());
        }
        count
    }

    /// Node detail view: path, kind, confidence and the publications the
    /// knowledge came from ("the nodes along the path provide access to
    /// the publications", §5).
    pub fn render_node(&self, node: NodeId) -> String {
        use std::fmt::Write as _;
        let n = &self.nodes[node];
        let mut out = String::new();
        let path: Vec<&str> = self
            .path_to_root(node)
            .iter()
            .map(|&p| self.nodes[p].label.as_str())
            .collect();
        let _ = writeln!(out, "{}", path.join(" → "));
        let _ = writeln!(
            out,
            "kind: {:?}   confidence: {:.2}   children: {}",
            n.kind,
            n.confidence,
            n.children.len()
        );
        if n.provenance.is_empty() {
            let _ = writeln!(out, "provenance: (seeded by expert)");
        } else {
            let _ = writeln!(out, "provenance: {}", n.provenance.join(", "));
        }
        out
    }

    /// Serialize the whole graph to JSON.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.nodes
                .iter()
                .map(|n| {
                    obj! {
                        "id" => n.id,
                        "label" => n.label.clone(),
                        "kind" => n.kind.as_str(),
                        "parents" => Value::Array(n.parents.iter().map(|&p| Value::int(p as i64)).collect()),
                        "provenance" => Value::Array(n.provenance.iter().map(|p| Value::str(p.clone())).collect()),
                        "confidence" => n.confidence,
                    }
                })
                .collect(),
        )
    }

    /// Rebuild a graph from [`KnowledgeGraph::to_json`] output.
    pub fn from_json(v: &Value) -> Option<KnowledgeGraph> {
        let items = v.as_array()?;
        let mut kg = KnowledgeGraph::new();
        for (expect_id, item) in items.iter().enumerate() {
            let id = item.get("id")?.as_i64()? as usize;
            if id != expect_id {
                return None;
            }
            let label = item.get("label")?.as_str()?.to_string();
            let kind = NodeKind::parse(item.get("kind")?.as_str()?)?;
            let parents: Vec<NodeId> = item
                .get("parents")?
                .as_array()?
                .iter()
                .filter_map(|p| p.as_i64().map(|i| i as usize))
                .collect();
            let confidence = item.get("confidence")?.as_f64()?;
            kg.index_label(id, &label);
            kg.nodes.push(Node {
                id,
                label,
                kind,
                parents: parents.clone(),
                children: Vec::new(),
                provenance: item
                    .get("provenance")?
                    .as_array()?
                    .iter()
                    .filter_map(|p| p.as_str().map(str::to_string))
                    .collect(),
                confidence,
            });
        }
        // Rebuild child lists.
        for id in 0..kg.nodes.len() {
            for p in kg.nodes[id].parents.clone() {
                if p >= kg.nodes.len() {
                    return None;
                }
                kg.nodes[p].children.push(id);
            }
        }
        Some(kg)
    }
}

fn contains_all(hay: &NormalizedTerm, needles: &NormalizedTerm) -> bool {
    !needles.stems.is_empty() && needles.stems.iter().all(|s| hay.stems.contains(s))
}

/// Byte trigrams of a string (empty for strings shorter than 3 bytes).
/// Operating on bytes is sound for the substring candidate set: if
/// `q` is a `str` substring of `label`, every byte trigram of `q`
/// occurs in `label`'s bytes.
fn trigrams(s: &str) -> impl Iterator<Item = [u8; 3]> + '_ {
    s.as_bytes().windows(3).map(|w| [w[0], w[1], w[2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let root = kg.add_root("COVID-19");
        let vaccines = kg.add_child(root, "Vaccine(s)", NodeKind::Category, 1.0);
        let pfizer = kg.add_child(vaccines, "Pfizer", NodeKind::Entity, 1.0);
        kg.add_provenance(pfizer, "paper-000001");
        let symptoms = kg.add_child(root, "Symptoms", NodeKind::Category, 1.0);
        kg.add_child(symptoms, "Fever", NodeKind::Entity, 0.9);
        kg
    }

    #[test]
    fn structure_and_accessors() {
        let kg = sample();
        assert_eq!(kg.len(), 5);
        assert_eq!(kg.node(0).kind, NodeKind::Root);
        assert_eq!(kg.node(1).parents, [0]);
        assert_eq!(kg.node(0).children, [1, 3]);
        assert_eq!(kg.depth(2), 2);
        assert_eq!(kg.node(2).provenance, ["paper-000001"]);
    }

    #[test]
    fn normalized_term_lookup() {
        let kg = sample();
        // "Vaccine" must find "Vaccine(s)" — the paper's own example.
        assert_eq!(kg.find_by_term("Vaccine"), [1]);
        assert_eq!(kg.find_by_term("vaccines"), [1]);
        assert!(kg.find_by_term("ventilator").is_empty());
        assert!(kg.find_by_term("...").is_empty());
    }

    #[test]
    fn find_child_scoped_to_parent() {
        let kg = sample();
        assert_eq!(kg.find_child_by_term(1, "pfizer"), Some(2));
        assert_eq!(kg.find_child_by_term(3, "pfizer"), None);
    }

    #[test]
    fn path_highlighting() {
        let kg = sample();
        let hits = kg.search("fever");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].path, vec![0, 3, 4]);
    }

    #[test]
    fn search_matches_stems_and_substrings() {
        let kg = sample();
        assert_eq!(kg.search("vaccine").len(), 1);
        assert_eq!(kg.search("vacc").len(), 1); // substring
        assert!(kg.search("").is_empty());
        assert!(kg.search("zzz").is_empty());
    }

    #[test]
    fn indexed_search_identical_to_scan() {
        let mut kg = sample();
        // Mutate through every topology entry point: the indexes must
        // stay in sync with add_child/add_parent/add_provenance.
        let side = kg.add_child(0, "Side-effects", NodeKind::Category, 1.0);
        kg.add_parent(4, side);
        kg.add_child(side, "Rash and swelling", NodeKind::Entity, 0.7);
        kg.add_provenance(side, "paper-000009");
        let json_round_trip = KnowledgeGraph::from_json(&kg.to_json()).unwrap();
        for g in [&kg, &json_round_trip] {
            for q in [
                "vaccine", "vacc", "VACCINE(S)", "fever", "side effects", "effects side",
                "swelling rash", "rash", "ras", "sw", "e", "", "zzz", "covid-19", "covid",
                "-19", "(s)", "symptoms fever", "…", "paper",
            ] {
                let indexed: Vec<_> = g.search(q);
                let scanned: Vec<_> = g.search_scan(q);
                assert_eq!(indexed, scanned, "query {q:?}");
            }
        }
    }

    #[test]
    fn multi_parent_categorization() {
        let mut kg = sample();
        // Fever is both a Symptom and a Side-effect.
        let side = kg.add_child(0, "Side-effects", NodeKind::Category, 1.0);
        kg.add_parent(4, side);
        assert_eq!(kg.node(4).parents, [3, side]);
        assert!(kg.node(side).children.contains(&4));
        // Idempotent.
        kg.add_parent(4, side);
        assert_eq!(kg.node(4).parents.len(), 2);
        // Path uses the first parent.
        assert_eq!(kg.path_to_root(4), vec![0, 3, 4]);
    }

    #[test]
    fn provenance_dedupes() {
        let mut kg = sample();
        kg.add_provenance(2, "paper-000001");
        assert_eq!(kg.node(2).provenance.len(), 1);
        kg.add_provenance(2, "paper-000002");
        assert_eq!(kg.node(2).provenance.len(), 2);
    }

    #[test]
    fn render_tree_indents_and_collapses() {
        let kg = sample();
        let full = kg.render_tree(0, 5);
        assert!(full.contains("COVID-19\n"));
        assert!(full.contains("  Vaccine(s)"));
        assert!(full.contains("    Pfizer  [1 papers]"));
        // Depth-limited view collapses with a count.
        let shallow = kg.render_tree(0, 0);
        assert!(shallow.contains("▸ 4 more…"), "{shallow}");
        assert!(!shallow.contains("Pfizer"));
    }

    #[test]
    fn render_tree_handles_shared_nodes() {
        let mut kg = sample();
        let side = kg.add_child(0, "Side-effects", NodeKind::Category, 1.0);
        kg.add_parent(4, side); // Fever shared
        let text = kg.render_tree(0, 5);
        assert!(text.contains("(↟ shared)"), "{text}");
    }

    #[test]
    fn subtree_size_counts_unique_nodes() {
        let kg = sample();
        assert_eq!(kg.subtree_size(0), 5);
        assert_eq!(kg.subtree_size(1), 2);
        assert_eq!(kg.subtree_size(2), 1);
    }

    #[test]
    fn node_detail_shows_path_and_provenance() {
        let kg = sample();
        let detail = kg.render_node(2);
        assert!(detail.contains("COVID-19 → Vaccine(s) → Pfizer"));
        assert!(detail.contains("paper-000001"));
        let seeded = kg.render_node(1);
        assert!(seeded.contains("seeded by expert"));
    }

    #[test]
    fn json_round_trip() {
        let kg = sample();
        let j = kg.to_json();
        let back = KnowledgeGraph::from_json(&j).unwrap();
        assert_eq!(back.len(), kg.len());
        assert_eq!(back.node(2).label, "Pfizer");
        assert_eq!(back.node(2).provenance, ["paper-000001"]);
        assert_eq!(back.node(0).children, kg.node(0).children);
        assert_eq!(back.find_by_term("vaccine"), [1]);
        assert_eq!(back.path_to_root(4), kg.path_to_root(4));
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(KnowledgeGraph::from_json(&Value::int(3)).is_none());
        assert!(KnowledgeGraph::from_json(&covidkg_json::arr![obj! { "id" => 5 }]).is_none());
    }

    #[test]
    #[should_panic(expected = "root must be the first")]
    fn double_root_panics() {
        let mut kg = sample();
        kg.add_root("another");
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn bad_parent_panics() {
        let mut kg = KnowledgeGraph::new();
        kg.add_root("r");
        kg.add_child(99, "x", NodeKind::Entity, 1.0);
    }
}
