#![warn(missing_docs)]

//! # covidkg-kg
//!
//! The COVIDKG knowledge graph (§4): an interactive hierarchical graph of
//! COVID-19 medical knowledge with provenance back to publications.
//!
//! * [`graph`] — the hierarchical multi-parent node structure, JSON
//!   persistence, and search with path highlighting ("the front-end …
//!   also highlights the path to the matching nodes", §4.2);
//! * [`seed`] — the medical-expert initial layout (№1 in Fig 1: "an
//!   initial, small (10-20 nodes) structural layout");
//! * [`extract`] — turning classified tables into candidate subtrees
//!   (№6 in Fig 1: "newly discovered vaccines, strains, side-effects
//!   extracted … later fused with the main KG");
//! * [`fusion`] — the §4.2 fusion algorithm: normalized NLP term matching
//!   amended by embedding-driven matching for unseen terms, multi-layer
//!   subtrees routed to a human-expert review queue (№14), and a
//!   correction memory that makes fusion "minimally supervised" over
//!   time;
//! * [`profile`] — multi-layered meta-profiles (Fig 6): side-effect
//!   records grouped by vaccine, dosage and paper;
//! * [`query`] — the graph query engine: typed multi-hop query plans
//!   (kind/provenance predicate filters, co-occurrence expansion over
//!   shared-paper provenance) executed as bounded iterative traversal
//!   returning top-k ranked paths, with an exhaustive-DFS oracle for
//!   equivalence testing and a plan-level optimizer that anchors the
//!   traversal at the estimated-more-selective end;
//! * [`materialize`] — incrementally-materialized meta-profile
//!   documents: kept fresh off the collection mutation log instead of
//!   full rebuilds, epoch-stamped so stale profiles are never served.

pub mod extract;
pub mod fusion;
pub mod graph;
pub mod materialize;
pub mod profile;
pub mod query;
pub mod seed;

pub use extract::{extract_subtrees, ExtractedTree};
pub use fusion::{ExpertOracle, FusionConfig, FusionEngine, FusionOutcome, FusionStats, ScriptedExpert};
pub use graph::{KnowledgeGraph, NodeId, NodeKind, SearchHit};
pub use materialize::{profile_document, ProfileStore, ProfileStoreStats};
pub use profile::{build_meta_profiles, MetaProfile, Observation};
pub use query::{
    execute, execute_optimized, execute_oracle, HopRel, HopStep, QueryPlan, QueryResult,
    RankedPath, StartSet,
};
pub use seed::seed_graph;
