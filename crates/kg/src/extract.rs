//! Subtree extraction from classified tables (№6 in Fig 1).
//!
//! Once the §3 classifier has separated metadata from data rows (and the
//! orientation detector has picked the metadata axis), each table yields
//! a candidate subtree: the attribute heading becomes the subtree root
//! ("Vaccine"), the entity cells become its leaves ("NovoVac"). Caption
//! qualifiers ("… in children …") introduce an intermediate layer,
//! producing the multi-layer subtrees of the paper's
//! `Side-effects → Children side-effects → Rash` example.

use covidkg_text::tokenize_lower;

/// A candidate subtree extracted from one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedTree {
    /// Root label (the attribute heading, e.g. `Vaccine`).
    pub root: String,
    /// Intermediate category labels between root and leaves (often empty;
    /// populated by caption qualifiers like `Children side-effects`).
    pub layers: Vec<String>,
    /// Leaf labels (entity cells).
    pub leaves: Vec<String>,
    /// Publication the table came from (provenance).
    pub paper_id: String,
}

impl ExtractedTree {
    /// Total depth including root and leaf levels.
    pub fn depth(&self) -> usize {
        2 + self.layers.len()
    }

    /// True when the tree has intermediate layers (requires expert review
    /// per §4.2).
    pub fn is_multi_layer(&self) -> bool {
        !self.layers.is_empty()
    }
}

/// Caption qualifiers that create an intermediate layer. The label is the
/// qualified category that must stay separate from the general one.
const QUALIFIERS: &[(&str, &str)] = &[
    ("children", "Children side-effects"),
    ("pediatric", "Children side-effects"),
    ("infants", "Children side-effects"),
    ("elderly", "Elderly side-effects"),
    ("pregnant", "Pregnancy side-effects"),
];

/// Extract subtrees from a classified table.
///
/// * `rows` — the cell grid;
/// * `metadata_rows` — the classifier's per-row verdicts;
/// * `vertical` — orientation verdict (§3.3): when true, the metadata runs
///   down the first column;
/// * `caption` — table caption (qualifier source);
/// * `paper_id` — provenance.
///
/// Returns an empty vector when the table has no usable structure (no
/// metadata, a single row, empty cells).
pub fn extract_subtrees(
    rows: &[Vec<String>],
    metadata_rows: &[bool],
    vertical: bool,
    caption: &str,
    paper_id: &str,
) -> Vec<ExtractedTree> {
    if rows.len() < 2 {
        return Vec::new();
    }
    let (root, leaves) = if vertical {
        // Metadata is the first column; the first row holds the attribute
        // name followed by entity labels.
        let first = &rows[0];
        if first.len() < 2 {
            return Vec::new();
        }
        let root = first[0].clone();
        let leaves: Vec<String> = first[1..]
            .iter()
            .filter(|c| !c.trim().is_empty())
            .cloned()
            .collect();
        (root, leaves)
    } else {
        // Metadata rows are horizontal; attribute of the first column is
        // the heading cell of the first metadata row, leaves are the first
        // cells of the data rows.
        let header_idx = metadata_rows.iter().position(|&m| m);
        let Some(header_idx) = header_idx else {
            return Vec::new();
        };
        let Some(root_cell) = rows[header_idx].first() else {
            return Vec::new();
        };
        let leaves: Vec<String> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| !metadata_rows.get(*i).copied().unwrap_or(false))
            .filter_map(|(_, r)| r.first())
            .filter(|c| !c.trim().is_empty())
            .cloned()
            .collect();
        (root_cell.clone(), leaves)
    };
    if root.trim().is_empty() || leaves.is_empty() {
        return Vec::new();
    }
    // Caption qualifiers introduce an intermediate layer.
    let caption_tokens = tokenize_lower(caption);
    let layers: Vec<String> = QUALIFIERS
        .iter()
        .filter(|(q, _)| caption_tokens.iter().any(|t| t == q))
        .map(|(_, label)| label.to_string())
        .take(1)
        .collect();

    vec![ExtractedTree {
        root,
        layers,
        leaves,
        paper_id: paper_id.to_string(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect()
    }

    #[test]
    fn horizontal_extraction() {
        let table = rows(&[
            &["Vaccine", "Doses", "Efficacy"],
            &["Pfizer", "2", "95%"],
            &["NovoVac", "1", "89%"],
        ]);
        let trees = extract_subtrees(&table, &[true, false, false], false, "Table 2: vaccines", "p1");
        assert_eq!(trees.len(), 1);
        let t = &trees[0];
        assert_eq!(t.root, "Vaccine");
        assert_eq!(t.leaves, ["Pfizer", "NovoVac"]);
        assert!(t.layers.is_empty());
        assert_eq!(t.depth(), 2);
        assert_eq!(t.paper_id, "p1");
    }

    #[test]
    fn vertical_extraction() {
        let table = rows(&[
            &["Vaccine", "Pfizer", "Moderna"],
            &["Doses", "2", "2"],
        ]);
        let trees = extract_subtrees(&table, &[false, false], true, "", "p2");
        assert_eq!(trees[0].root, "Vaccine");
        assert_eq!(trees[0].leaves, ["Pfizer", "Moderna"]);
    }

    #[test]
    fn caption_qualifier_adds_layer() {
        let table = rows(&[
            &["Side effect", "Rate"],
            &["Rash", "4%"],
            &["Fever", "12%"],
        ]);
        let trees = extract_subtrees(
            &table,
            &[true, false, false],
            false,
            "Table 3: side-effects reported in children after vaccination",
            "p3",
        );
        let t = &trees[0];
        assert_eq!(t.layers, ["Children side-effects"]);
        assert!(t.is_multi_layer());
        assert_eq!(t.depth(), 3);
        assert_eq!(t.leaves, ["Rash", "Fever"]);
    }

    #[test]
    fn degenerate_tables_yield_nothing() {
        assert!(extract_subtrees(&rows(&[&["only"]]), &[true], false, "", "p").is_empty());
        assert!(extract_subtrees(&[], &[], false, "", "p").is_empty());
        // No metadata rows detected.
        let table = rows(&[&["a", "b"], &["c", "d"]]);
        assert!(extract_subtrees(&table, &[false, false], false, "", "p").is_empty());
        // Vertical with a single column.
        let table = rows(&[&["a"], &["b"]]);
        assert!(extract_subtrees(&table, &[false, false], true, "", "p").is_empty());
    }

    #[test]
    fn empty_cells_are_skipped() {
        let table = rows(&[
            &["Symptom", "n"],
            &["", "5"],
            &["Cough", "10"],
        ]);
        let trees = extract_subtrees(&table, &[true, false, false], false, "", "p");
        assert_eq!(trees[0].leaves, ["Cough"]);
    }

    #[test]
    fn only_first_qualifier_applies() {
        let table = rows(&[&["Side effect", "x"], &["Rash", "1"]]);
        let trees = extract_subtrees(
            &table,
            &[true, false],
            false,
            "children and pregnant cohorts",
            "p",
        );
        assert_eq!(trees[0].layers.len(), 1);
    }
}
