//! Multi-hop graph queries over the knowledge graph.
//!
//! The paper's §4 interrogation story ("Searching COVID-19 Clinical
//! Research Using Graph Queries" is the workload model): a typed query
//! plan — a start set plus a sequence of hop steps with predicate
//! filters — executed as a bounded traversal that returns the top-k
//! complete paths ranked by provenance support and inverse path length.
//!
//! Two executors share one successor function:
//!
//! - [`execute`] — the serving engine: an iterative explicit-stack
//!   traversal feeding a bounded top-k buffer, with hop/visit counters
//!   for the `covidkg_kg_*` metrics series.
//! - [`execute_oracle`] — a naive recursive exhaustive DFS that
//!   collects *every* complete path, sorts, and truncates. It exists
//!   only as the equivalence oracle for property tests.
//!
//! Determinism contract: successors are sorted by node id, filtered,
//! then truncated to `max_fanout`; ranking breaks score ties by
//! lexicographic path order (`(score desc, path lex asc)`), and scores
//! are computed by one shared function — so both executors return
//! byte-identical results, including tie-breaks.

use crate::graph::{KnowledgeGraph, NodeId, NodeKind};
use covidkg_json::{obj, Value};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Hard ceiling on hop steps per plan (bounded depth).
pub const MAX_STEPS: usize = 8;
/// Hard ceiling on successors expanded per node per step.
pub const MAX_FANOUT: usize = 64;
/// Hard ceiling on requested paths.
pub const MAX_K: usize = 100;

/// Where a traversal starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartSet {
    /// Nodes whose label normalizes to the term (`find_by_term`).
    Term(String),
    /// Every node of the given kind.
    Kind(NodeKind),
    /// One explicit node id.
    Node(NodeId),
}

/// Edge relation followed by a hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopRel {
    /// Parent → child edges.
    Child,
    /// Child → parent edges.
    Parent,
    /// Either direction.
    Any,
    /// Co-occurrence: nodes sharing at least one provenance paper.
    CoOccur,
}

impl HopRel {
    /// Stable serialization label (query-param grammar).
    pub fn as_str(self) -> &'static str {
        match self {
            HopRel::Child => "child",
            HopRel::Parent => "parent",
            HopRel::Any => "any",
            HopRel::CoOccur => "co",
        }
    }
}

/// One hop: a relation plus optional predicate filters on the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopStep {
    /// Which edges to follow.
    pub rel: HopRel,
    /// Keep only targets of this kind, when set.
    pub kind: Option<NodeKind>,
    /// Keep only targets whose provenance contains this paper id.
    pub provenance: Option<String>,
}

/// A complete query plan: start set, hop steps, bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Where traversal starts.
    pub start: StartSet,
    /// Hops to take, in order. A path is complete only after all steps.
    pub steps: Vec<HopStep>,
    /// Successor truncation per node per step (and start-set bound).
    pub max_fanout: usize,
    /// How many ranked paths to return.
    pub k: usize,
}

/// One ranked result path.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPath {
    /// Node ids, start first.
    pub nodes: Vec<NodeId>,
    /// Labels of the same nodes (for rendering).
    pub labels: Vec<String>,
    /// Distinct provenance papers supporting the path.
    pub support: usize,
    /// `(support + 1) / path length` — provenance support × inverse
    /// path length, with a +1 floor so seeded (paperless) paths still
    /// rank by length.
    pub score: f64,
}

/// Traversal outcome: ranked paths plus work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Top-k paths, `(score desc, path lex asc)`.
    pub paths: Vec<RankedPath>,
    /// Edges traversed (successors pushed).
    pub hops: u64,
    /// Nodes expanded (start nodes included).
    pub visited: u64,
}

impl QueryPlan {
    /// Parse the textual plan grammar shared by the CLI and the
    /// `GET /kg/query` route.
    ///
    /// `start`: `term:<text>` | `kind:<root|category|entity>` |
    /// `node:<id>`. `steps`: comma-separated hops, each
    /// `<child|parent|any|co>[:<kind>[:<paper-id>]]` with empty slots
    /// allowed (`co::paper-3` filters provenance without a kind).
    pub fn parse(start: &str, steps: &str, max_fanout: usize, k: usize) -> Result<QueryPlan, String> {
        let start = match start.split_once(':') {
            Some(("term", t)) if !t.is_empty() => StartSet::Term(t.to_string()),
            Some(("kind", k)) => StartSet::Kind(
                NodeKind::parse(k).ok_or_else(|| format!("unknown kind {k:?}: expected root, category or entity"))?,
            ),
            Some(("node", id)) => StartSet::Node(
                id.parse::<usize>().map_err(|_| format!("node id {id:?} is not a non-negative integer"))?,
            ),
            _ => return Err(format!("start {start:?} must be term:<text>, kind:<kind> or node:<id>")),
        };
        let mut parsed = Vec::new();
        for step in steps.split(',').filter(|s| !s.is_empty()) {
            let mut parts = step.splitn(3, ':');
            let rel = match parts.next().unwrap_or_default() {
                "child" => HopRel::Child,
                "parent" => HopRel::Parent,
                "any" => HopRel::Any,
                "co" => HopRel::CoOccur,
                other => return Err(format!("unknown relation {other:?}: expected child, parent, any or co")),
            };
            let kind = match parts.next() {
                None | Some("") => None,
                Some(k) => Some(
                    NodeKind::parse(k).ok_or_else(|| format!("unknown kind {k:?} in step {step:?}"))?,
                ),
            };
            let provenance = match parts.next() {
                None | Some("") => None,
                Some(p) => Some(p.to_string()),
            };
            parsed.push(HopStep { rel, kind, provenance });
        }
        if parsed.len() > MAX_STEPS {
            return Err(format!("{} steps exceed the bound of {MAX_STEPS}", parsed.len()));
        }
        if max_fanout == 0 || max_fanout > MAX_FANOUT {
            return Err(format!("fanout must be in 1..={MAX_FANOUT}"));
        }
        if k == 0 || k > MAX_K {
            return Err(format!("k must be in 1..={MAX_K}"));
        }
        Ok(QueryPlan { start, steps: parsed, max_fanout, k })
    }

    /// Collision-free canonical form — the serve-layer cache key.
    /// Free-form fields (term, paper ids) are length-prefixed so no
    /// two distinct plans can serialize alike.
    pub fn cache_key(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("kgq|");
        match &self.start {
            StartSet::Term(t) => { let _ = write!(out, "t{}:{t}", t.len()); }
            StartSet::Kind(k) => { let _ = write!(out, "k:{}", k.as_str()); }
            StartSet::Node(id) => { let _ = write!(out, "n:{id}"); }
        }
        for s in &self.steps {
            let _ = write!(out, "|{}", s.rel.as_str());
            if let Some(k) = s.kind {
                let _ = write!(out, ":{}", k.as_str());
            } else {
                out.push(':');
            }
            match &s.provenance {
                Some(p) => { let _ = write!(out, ":p{}:{p}", p.len()); }
                None => out.push(':'),
            }
        }
        let _ = write!(out, "|f{}|k{}", self.max_fanout, self.k);
        out
    }
}

impl RankedPath {
    /// JSON form of one path.
    pub fn to_json(&self) -> Value {
        obj! {
            "nodes" => Value::Array(self.nodes.iter().map(|&n| Value::int(n as i64)).collect()),
            "labels" => Value::Array(self.labels.iter().map(|l| Value::str(l.clone())).collect()),
            "support" => self.support,
            "score" => self.score,
        }
    }
}

impl QueryResult {
    /// The ranked paths alone — the part both executors must agree on
    /// byte-for-byte (work counters legitimately differ).
    pub fn paths_json(&self) -> Value {
        Value::Array(self.paths.iter().map(RankedPath::to_json).collect())
    }

    /// Full JSON form: paths plus work counters.
    pub fn to_json(&self) -> Value {
        obj! {
            "paths" => self.paths_json(),
            "hops" => self.hops as i64,
            "visited" => self.visited as i64,
        }
    }
}

/// Paper-id → node-ids co-occurrence index, built once per execution
/// so `co` hops don't rescan the graph per expansion.
struct CoIndex {
    by_paper: HashMap<String, Vec<NodeId>>,
}

impl CoIndex {
    fn build(kg: &KnowledgeGraph) -> CoIndex {
        let mut by_paper: HashMap<String, Vec<NodeId>> = HashMap::new();
        for n in kg.nodes() {
            for p in &n.provenance {
                by_paper.entry(p.clone()).or_default().push(n.id);
            }
        }
        CoIndex { by_paper }
    }
}

/// The shared successor function: candidates by relation, sorted by
/// node id, deduplicated, filtered by the step's predicates and the
/// no-revisit rule, truncated to `max_fanout`. Both executors call
/// this, which is what makes them equivalent by construction.
fn successors(
    kg: &KnowledgeGraph,
    co: &CoIndex,
    path: &[NodeId],
    step: &HopStep,
    max_fanout: usize,
) -> Vec<NodeId> {
    let from = *path.last().expect("path never empty");
    let node = kg.node(from);
    let mut cands: Vec<NodeId> = match step.rel {
        HopRel::Child => node.children.clone(),
        HopRel::Parent => node.parents.clone(),
        HopRel::Any => {
            let mut v = node.children.clone();
            v.extend_from_slice(&node.parents);
            v
        }
        HopRel::CoOccur => {
            let mut v = Vec::new();
            for p in &node.provenance {
                if let Some(ids) = co.by_paper.get(p) {
                    v.extend_from_slice(ids);
                }
            }
            v
        }
    };
    cands.sort_unstable();
    cands.dedup();
    cands.retain(|&c| {
        if path.contains(&c) {
            return false;
        }
        let n = kg.node(c);
        if let Some(k) = step.kind {
            if n.kind != k {
                return false;
            }
        }
        if let Some(p) = &step.provenance {
            if !n.provenance.iter().any(|pp| pp == p) {
                return false;
            }
        }
        true
    });
    cands.truncate(max_fanout);
    cands
}

/// Resolve the start set: sorted by id, truncated to `max_fanout`.
fn start_nodes(kg: &KnowledgeGraph, plan: &QueryPlan) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = match &plan.start {
        StartSet::Term(t) => kg.find_by_term(t),
        StartSet::Kind(k) => kg.nodes().iter().filter(|n| n.kind == *k).map(|n| n.id).collect(),
        StartSet::Node(id) => {
            if *id < kg.len() {
                vec![*id]
            } else {
                Vec::new()
            }
        }
    };
    ids.sort_unstable();
    ids.dedup();
    ids.truncate(plan.max_fanout);
    ids
}

/// Shared scoring: distinct provenance papers across the path's nodes,
/// +1 floor, divided by path length.
fn score_path(kg: &KnowledgeGraph, path: &[NodeId]) -> (usize, f64) {
    let mut papers: BTreeSet<&str> = BTreeSet::new();
    for &n in path {
        for p in &kg.node(n).provenance {
            papers.insert(p.as_str());
        }
    }
    let support = papers.len();
    (support, (support + 1) as f64 / path.len() as f64)
}

/// `(score desc, path lex asc)` — the deterministic result order.
fn better(a: &RankedPath, b: &RankedPath) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then_with(|| a.nodes.cmp(&b.nodes))
}

fn ranked(kg: &KnowledgeGraph, path: Vec<NodeId>) -> RankedPath {
    let (support, score) = score_path(kg, &path);
    let labels = path.iter().map(|&n| kg.node(n).label.clone()).collect();
    RankedPath { nodes: path, labels, support, score }
}

/// Bounded buffer keeping the best `k` paths under [`better`].
struct TopK {
    k: usize,
    items: Vec<RankedPath>,
}

impl TopK {
    fn push(&mut self, p: RankedPath) {
        let pos = self.items.partition_point(|q| better(q, &p).is_lt());
        if pos >= self.k {
            return;
        }
        self.items.insert(pos, p);
        self.items.truncate(self.k);
    }
}

/// The serving engine: iterative explicit-stack traversal with a
/// bounded top-k buffer and hop/visit counters.
pub fn execute(kg: &KnowledgeGraph, plan: &QueryPlan) -> QueryResult {
    execute_with(kg, &CoIndex::build(kg), plan)
}

fn execute_with(kg: &KnowledgeGraph, co: &CoIndex, plan: &QueryPlan) -> QueryResult {
    let mut top = TopK { k: plan.k, items: Vec::new() };
    let mut hops = 0u64;
    let mut visited = 0u64;
    // Stack of partial paths; `depth` = steps already taken.
    let mut stack: Vec<Vec<NodeId>> = start_nodes(kg, plan)
        .into_iter()
        .rev()
        .map(|n| vec![n])
        .collect();
    while let Some(path) = stack.pop() {
        visited += 1;
        let depth = path.len() - 1;
        if depth == plan.steps.len() {
            top.push(ranked(kg, path));
            continue;
        }
        let next = successors(kg, co, &path, &plan.steps[depth], plan.max_fanout);
        hops += next.len() as u64;
        for &n in next.iter().rev() {
            let mut p = path.clone();
            p.push(n);
            stack.push(p);
        }
    }
    QueryResult { paths: top.items, hops, visited }
}

/// Does a node satisfy one hop step's predicate filters?
fn matches_step(node: &crate::graph::Node, step: &HopStep) -> bool {
    if let Some(k) = step.kind {
        if node.kind != k {
            return false;
        }
    }
    if let Some(p) = &step.provenance {
        if !node.provenance.iter().any(|pp| pp == p) {
            return false;
        }
    }
    true
}

/// Can the plan's results provably not depend on fanout truncation?
/// Holds when the untruncated start set and every node's total degree
/// fit under `max_fanout` — then both the forward engine and a reversed
/// traversal enumerate the *same complete path set* exhaustively, so
/// reordering is free. Co-occurrence hops are excluded: their candidate
/// lists are unions over shared papers with no cheap degree bound.
fn reversal_safe(kg: &KnowledgeGraph, plan: &QueryPlan) -> bool {
    if plan.steps.is_empty() || plan.steps.iter().any(|s| s.rel == HopRel::CoOccur) {
        return false;
    }
    if untruncated_start_len(kg, plan) > plan.max_fanout {
        return false;
    }
    kg.nodes()
        .iter()
        .all(|n| n.children.len() + n.parents.len() <= plan.max_fanout)
}

/// Start-set cardinality *before* the `max_fanout` truncation.
fn untruncated_start_len(kg: &KnowledgeGraph, plan: &QueryPlan) -> usize {
    match &plan.start {
        StartSet::Term(t) => {
            let mut ids = kg.find_by_term(t);
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        }
        StartSet::Kind(k) => kg.nodes().iter().filter(|n| n.kind == *k).count(),
        StartSet::Node(id) => usize::from(*id < kg.len()),
    }
}

/// Estimated frontier size after anchoring at `anchor` nodes and
/// expanding through `steps`: anchor cardinality × per-step expected
/// fanout (mean degree for the relation, scaled by the kind predicate's
/// population fraction and a flat penalty for provenance filters). All
/// integer-derived floats, so the estimate — and hence the chosen
/// direction — is deterministic for a given graph.
fn estimate_cost(kg: &KnowledgeGraph, anchor: usize, steps: &[&HopStep], reversed: bool) -> f64 {
    let n = kg.len().max(1) as f64;
    let (child_edges, parent_edges) = kg.nodes().iter().fold((0usize, 0usize), |(c, p), node| {
        (c + node.children.len(), p + node.parents.len())
    });
    let kind_count = |k: NodeKind| kg.nodes().iter().filter(|x| x.kind == k).count() as f64;
    let mut cost = anchor as f64;
    for step in steps {
        let mean_fanout = match (step.rel, reversed) {
            (HopRel::Child, false) | (HopRel::Parent, true) => child_edges as f64 / n,
            (HopRel::Parent, false) | (HopRel::Child, true) => parent_edges as f64 / n,
            _ => (child_edges + parent_edges) as f64 / n,
        };
        let kind_fraction = match step.kind {
            Some(k) => kind_count(k) / n,
            None => 1.0,
        };
        let provenance_penalty = if step.provenance.is_some() { 0.25 } else { 1.0 };
        cost *= (mean_fanout * kind_fraction * provenance_penalty).max(0.05);
    }
    cost
}

/// Plan-level query optimization: pick the cheaper traversal anchor by
/// estimated selectivity before touching the graph.
///
/// Two rewrites, both result-preserving:
///
/// 1. **Co-index elision** — the paper→nodes co-occurrence index is
///    built only when the plan actually contains a `co` hop, instead of
///    unconditionally per execution.
/// 2. **Anchor reversal** — when the terminal step's predicate set is
///    estimated more selective than the start set (terminal cardinality
///    × reversed-step fanout products vs start cardinality × forward
///    products), traversal runs *backward* from the nodes matching the
///    last step's predicates, following reversed relations, and keeps
///    only paths landing in the start set. Applied only in the
///    [`reversal_safe`] regime where fanout truncation provably cannot
///    fire, so the enumerated path set — and therefore the ranked
///    output — is byte-identical to [`execute`]. Work counters
///    legitimately differ (that is the point).
pub fn execute_optimized(kg: &KnowledgeGraph, plan: &QueryPlan) -> QueryResult {
    if reversal_safe(kg, plan) {
        let last = plan.steps.last().expect("non-empty in safe regime");
        let terminal: Vec<NodeId> = kg
            .nodes()
            .iter()
            .filter(|node| matches_step(node, last))
            .map(|node| node.id)
            .collect();
        let fwd_steps: Vec<&HopStep> = plan.steps.iter().collect();
        let rev_steps: Vec<&HopStep> = plan.steps.iter().rev().collect();
        let fwd = estimate_cost(kg, untruncated_start_len(kg, plan), &fwd_steps, false);
        let bwd = estimate_cost(kg, terminal.len(), &rev_steps, true);
        if bwd < fwd {
            return execute_backward(kg, plan, terminal);
        }
    }
    let co = if plan.steps.iter().any(|s| s.rel == HopRel::CoOccur) {
        CoIndex::build(kg)
    } else {
        CoIndex { by_paper: HashMap::new() }
    };
    execute_with(kg, &co, plan)
}

/// Exhaustive reversed traversal for the [`reversal_safe`] regime:
/// anchor at `terminal` (nodes matching the last step's predicates),
/// walk reversed relations toward position 0, accept paths whose far
/// end lies in the start set, then rank exactly like the oracle.
fn execute_backward(kg: &KnowledgeGraph, plan: &QueryPlan, terminal: Vec<NodeId>) -> QueryResult {
    let start: BTreeSet<NodeId> = start_nodes(kg, plan).into_iter().collect();
    let len = plan.steps.len();
    let mut all: Vec<RankedPath> = Vec::new();
    let mut hops = 0u64;
    let mut visited = 0u64;
    // Reversed partial paths: rpath[i] holds the node at forward
    // position `len - i`, so a complete rpath ends at position 0.
    let mut stack: Vec<Vec<NodeId>> = terminal.into_iter().map(|n| vec![n]).collect();
    while let Some(rpath) = stack.pop() {
        visited += 1;
        if rpath.len() == len + 1 {
            let mut path = rpath;
            path.reverse();
            all.push(ranked(kg, path));
            continue;
        }
        // Forward position of the head, and the step whose edge links it
        // to the previous position.
        let pos = len - (rpath.len() - 1);
        let node = kg.node(*rpath.last().expect("rpath never empty"));
        let mut cands: Vec<NodeId> = match plan.steps[pos - 1].rel {
            // Forward `child` goes parent→child, so walk up to parents.
            HopRel::Child => node.parents.clone(),
            HopRel::Parent => node.children.clone(),
            HopRel::Any => {
                let mut v = node.children.clone();
                v.extend_from_slice(&node.parents);
                v
            }
            HopRel::CoOccur => unreachable!("excluded by reversal_safe"),
        };
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|&c| {
            if rpath.contains(&c) {
                return false;
            }
            if pos - 1 == 0 {
                start.contains(&c)
            } else {
                matches_step(kg.node(c), &plan.steps[pos - 2])
            }
        });
        hops += cands.len() as u64;
        for c in cands {
            let mut p = rpath.clone();
            p.push(c);
            stack.push(p);
        }
    }
    all.sort_by(better);
    all.truncate(plan.k);
    QueryResult { paths: all, hops, visited }
}

/// The naive oracle: recursive exhaustive DFS collecting every
/// complete path, then sort + truncate. Exists for equivalence tests.
pub fn execute_oracle(kg: &KnowledgeGraph, plan: &QueryPlan) -> QueryResult {
    fn dfs(
        kg: &KnowledgeGraph,
        co: &CoIndex,
        plan: &QueryPlan,
        path: &mut Vec<NodeId>,
        all: &mut Vec<RankedPath>,
        hops: &mut u64,
        visited: &mut u64,
    ) {
        *visited += 1;
        let depth = path.len() - 1;
        if depth == plan.steps.len() {
            all.push(ranked(kg, path.clone()));
            return;
        }
        for n in successors(kg, co, path, &plan.steps[depth], plan.max_fanout) {
            *hops += 1;
            path.push(n);
            dfs(kg, co, plan, path, all, hops, visited);
            path.pop();
        }
    }
    let co = CoIndex::build(kg);
    let mut all = Vec::new();
    let mut hops = 0u64;
    let mut visited = 0u64;
    for n in start_nodes(kg, plan) {
        dfs(kg, &co, plan, &mut vec![n], &mut all, &mut hops, &mut visited);
    }
    all.sort_by(better);
    all.truncate(plan.k);
    QueryResult { paths: all, hops, visited }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_graph;

    fn provenance_graph() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let root = kg.add_root("COVID-19");
        let vaccines = kg.add_child(root, "Vaccine(s)", NodeKind::Category, 1.0);
        let pfizer = kg.add_child(vaccines, "Pfizer", NodeKind::Entity, 0.9);
        let moderna = kg.add_child(vaccines, "Moderna", NodeKind::Entity, 0.9);
        let symptoms = kg.add_child(root, "Symptoms", NodeKind::Category, 1.0);
        let fever = kg.add_child(symptoms, "Fever", NodeKind::Entity, 0.8);
        kg.add_provenance(pfizer, "paper-1");
        kg.add_provenance(pfizer, "paper-2");
        kg.add_provenance(moderna, "paper-2");
        kg.add_provenance(fever, "paper-1");
        kg
    }

    fn plan(start: &str, steps: &str) -> QueryPlan {
        QueryPlan::parse(start, steps, 8, 10).expect("plan parses")
    }

    #[test]
    fn child_hops_walk_the_hierarchy() {
        let kg = provenance_graph();
        let r = execute(&kg, &plan("node:0", "child,child"));
        // Root → {Vaccines, Symptoms} → entities: 3 complete paths.
        assert_eq!(r.paths.len(), 3);
        for p in &r.paths {
            assert_eq!(p.nodes.len(), 3);
            assert_eq!(p.nodes[0], 0);
        }
        // Pfizer path carries 2 papers → best score.
        assert_eq!(r.paths[0].labels, ["COVID-19", "Vaccine(s)", "Pfizer"]);
        assert_eq!(r.paths[0].support, 2);
        assert!(r.hops > 0 && r.visited > 0);
    }

    #[test]
    fn kind_and_provenance_filters_apply() {
        let kg = provenance_graph();
        let r = execute(&kg, &plan("term:vaccine", "child:entity:paper-2"));
        assert_eq!(r.paths.len(), 2);
        assert!(r.paths.iter().all(|p| p.labels[1] == "Pfizer" || p.labels[1] == "Moderna"));
        let none = execute(&kg, &plan("term:vaccine", "child:category:paper-2"));
        assert!(none.paths.is_empty(), "entities are not categories");
    }

    #[test]
    fn cooccurrence_expands_via_shared_papers() {
        let kg = provenance_graph();
        // Pfizer co-occurs with Moderna (paper-2) and Fever (paper-1).
        let r = execute(&kg, &plan("term:pfizer", "co"));
        let targets: Vec<&str> = r.paths.iter().map(|p| p.labels[1].as_str()).collect();
        assert_eq!(targets, ["Moderna", "Fever"], "sorted by node id");
    }

    #[test]
    fn no_revisits_within_a_path() {
        let kg = provenance_graph();
        let r = execute(&kg, &plan("node:2", "parent,child"));
        // Pfizer → Vaccines → {Moderna} only; Pfizer itself is excluded.
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].labels, ["Pfizer", "Vaccine(s)", "Moderna"]);
    }

    #[test]
    fn tie_break_is_path_lexicographic() {
        let kg = seed_graph(); // no provenance: all scores equal per length
        let r = execute(&kg, &plan("node:0", "child"));
        let mut sorted = r.paths.clone();
        sorted.sort_by(|a, b| a.nodes.cmp(&b.nodes));
        assert_eq!(r.paths, sorted, "equal scores fall back to path order");
    }

    #[test]
    fn fanout_truncates_and_k_bounds() {
        let kg = seed_graph();
        let narrow = QueryPlan::parse("node:0", "child", 2, 10).unwrap();
        assert_eq!(execute(&kg, &narrow).paths.len(), 2);
        let top1 = QueryPlan::parse("node:0", "child", 8, 1).unwrap();
        assert_eq!(execute(&kg, &top1).paths.len(), 1);
    }

    #[test]
    fn engine_matches_oracle_on_fixed_graphs() {
        for (kg, plans) in [
            (provenance_graph(), vec![
                plan("node:0", "child,child"),
                plan("term:vaccine", "child:entity"),
                plan("term:pfizer", "co,co"),
                plan("kind:entity", "parent,child"),
                plan("kind:category", "any,any"),
            ]),
            (seed_graph(), vec![
                plan("node:0", "child,child,child"),
                plan("kind:category", "parent"),
                plan("term:symptoms", "any,any"),
            ]),
        ] {
            for p in plans {
                let engine = execute(&kg, &p);
                let oracle = execute_oracle(&kg, &p);
                assert_eq!(
                    engine.paths_json().to_json(),
                    oracle.paths_json().to_json(),
                    "plan {p:?}"
                );
            }
        }
    }

    #[test]
    fn optimized_matches_engine_on_fixed_graphs() {
        for (kg, plans) in [
            (provenance_graph(), vec![
                plan("node:0", "child,child"),
                plan("kind:entity", "parent,child"),
                plan("kind:category", "any,any"),
                plan("kind:entity", "parent,child:entity:paper-2"),
                plan("term:pfizer", "co,co"),
            ]),
            (seed_graph(), vec![
                plan("node:0", "child,child,child"),
                plan("kind:category", "parent"),
                plan("kind:entity", "parent,parent"),
                plan("term:symptoms", "any,any"),
            ]),
        ] {
            for p in plans {
                let engine = execute(&kg, &p);
                let optimized = execute_optimized(&kg, &p);
                assert_eq!(
                    engine.paths_json().to_json(),
                    optimized.paths_json().to_json(),
                    "plan {p:?}"
                );
            }
        }
    }

    #[test]
    fn reversal_anchors_at_the_selective_end() {
        // Broad start (every entity), needle terminal (provenance
        // filter matching one node): reversal must fire, and fire
        // cheaper — strictly fewer node expansions than forward.
        let kg = provenance_graph();
        let p = plan("kind:entity", "parent,child::paper-1");
        assert!(reversal_safe(&kg, &p));
        let forward = execute(&kg, &p);
        let optimized = execute_optimized(&kg, &p);
        assert_eq!(
            forward.paths_json().to_json(),
            optimized.paths_json().to_json()
        );
        assert!(
            optimized.visited < forward.visited,
            "backward {} vs forward {}",
            optimized.visited,
            forward.visited
        );
    }

    #[test]
    fn reversal_declines_unsafe_regimes() {
        let kg = provenance_graph();
        // Co hops have no degree bound.
        assert!(!reversal_safe(&kg, &plan("node:0", "co")));
        // Tiny fanout: truncation may fire, order matters.
        let narrow = QueryPlan::parse("kind:entity", "parent,child", 1, 10).unwrap();
        assert!(!reversal_safe(&kg, &narrow));
        // Still correct through the fallback path.
        assert_eq!(
            execute(&kg, &narrow).paths_json().to_json(),
            execute_optimized(&kg, &narrow).paths_json().to_json()
        );
    }

    #[test]
    fn plan_grammar_round_trips_and_rejects() {
        let p = plan("term:vaccine", "child:entity,co::paper-1,parent");
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].kind, Some(NodeKind::Entity));
        assert_eq!(p.steps[1].provenance.as_deref(), Some("paper-1"));
        assert_eq!(p.steps[2], HopStep { rel: HopRel::Parent, kind: None, provenance: None });
        assert!(QueryPlan::parse("term:", "", 8, 10).is_err());
        assert!(QueryPlan::parse("node:x", "", 8, 10).is_err());
        assert!(QueryPlan::parse("kind:planet", "", 8, 10).is_err());
        assert!(QueryPlan::parse("node:0", "sideways", 8, 10).is_err());
        assert!(QueryPlan::parse("node:0", "child", 0, 10).is_err());
        assert!(QueryPlan::parse("node:0", "child", 8, 0).is_err());
        assert!(QueryPlan::parse("node:0", &["child"; MAX_STEPS + 1].join(","), 8, 10).is_err());
    }

    #[test]
    fn cache_keys_are_collision_free_for_tricky_terms() {
        let a = plan("term:a|b", "").cache_key();
        let b = plan("term:a", "").cache_key();
        assert_ne!(a, b);
        let c = plan("node:0", "co::p|x").cache_key();
        let d = plan("node:0", "co::p").cache_key();
        assert_ne!(c, d);
        assert_eq!(plan("term:x", "child").cache_key(), plan("term:x", "child").cache_key());
    }

    #[test]
    fn missing_start_yields_empty_result() {
        let kg = provenance_graph();
        let r = execute(&kg, &plan("term:ventilator", "child"));
        assert!(r.paths.is_empty());
        let r = execute(&kg, &plan("node:999", "child"));
        assert!(r.paths.is_empty());
    }
}
