//! Multi-layered meta-profiles (Fig 6, and [40] in the references).
//!
//! "Figure 6 displays a multi-layered 3D profile for COVID-19 Vaccine
//! Side-effects composed from three different COVID-19 papers. This 3D
//! visualization summarizes information from 9 different sources in one
//! place…" A [`MetaProfile`] groups extracted side-effect observations by
//! vaccine → dosage → paper, exactly the three grouping axes of the
//! figure, and reports the source-compression factor the paper touts.

use std::collections::BTreeMap;

/// One observation feeding a profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Vaccine name.
    pub vaccine: String,
    /// Dose number.
    pub dose: u8,
    /// Side-effect name.
    pub effect: String,
    /// Incidence percentage.
    pub rate: f32,
    /// Source publication id.
    pub paper_id: String,
}

/// Side-effect rates for one (vaccine, dose) layer, per effect and paper.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileLayer {
    /// effect → list of (paper id, rate).
    pub effects: BTreeMap<String, Vec<(String, f32)>>,
}

impl ProfileLayer {
    /// Mean rate for one effect across papers.
    pub fn mean_rate(&self, effect: &str) -> Option<f32> {
        let obs = self.effects.get(effect)?;
        if obs.is_empty() {
            return None;
        }
        Some(obs.iter().map(|(_, r)| r).sum::<f32>() / obs.len() as f32)
    }
}

/// A multi-layered meta-profile for one vaccine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetaProfile {
    /// Vaccine name.
    pub vaccine: String,
    /// dose → layer.
    pub doses: BTreeMap<u8, ProfileLayer>,
    /// Distinct source papers.
    pub sources: Vec<String>,
}

impl MetaProfile {
    /// Number of distinct sources summarized.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Total observations folded in.
    pub fn observation_count(&self) -> usize {
        self.doses
            .values()
            .map(|l| l.effects.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Render the Fig 6 panel as a layered chart: one row per side-effect,
    /// one column block per dose, bar length ∝ mean reported rate — the
    /// terminal stand-in for the paper's 3D visualization.
    pub fn render_chart(&self) -> String {
        use std::fmt::Write as _;
        const BAR: usize = 24;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — side-effect rates by dose ({} papers)",
            self.vaccine,
            self.source_count()
        );
        // Stable union of effects across doses.
        let mut effects: Vec<&String> = self
            .doses
            .values()
            .flat_map(|l| l.effects.keys())
            .collect();
        effects.sort();
        effects.dedup();
        let max_rate = self
            .doses
            .values()
            .flat_map(|l| l.effects.keys().map(|e| l.mean_rate(e).unwrap_or(0.0)))
            .fold(1.0f32, f32::max);
        for effect in effects {
            let _ = write!(out, "  {effect:<12}");
            for (dose, layer) in &self.doses {
                match layer.mean_rate(effect) {
                    Some(rate) => {
                        let filled =
                            ((rate / max_rate) * BAR as f32).round().clamp(1.0, BAR as f32) as usize;
                        let _ = write!(
                            out,
                            " d{dose} {:<BAR$} {rate:>5.1}%",
                            "█".repeat(filled)
                        );
                    }
                    None => {
                        let _ = write!(out, " d{dose} {:<BAR$}      -", "");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render the textual form of the Fig 6 panel.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} — side-effect meta-profile ({} observations from {} papers)",
            self.vaccine,
            self.observation_count(),
            self.source_count()
        );
        for (dose, layer) in &self.doses {
            let _ = writeln!(out, "  dose {dose}:");
            for (effect, obs) in &layer.effects {
                let mean = layer.mean_rate(effect).unwrap_or(0.0);
                let papers: Vec<&str> = obs.iter().map(|(p, _)| p.as_str()).collect();
                let _ = writeln!(
                    out,
                    "    {effect:<12} mean {mean:>5.1}%  [{}]",
                    papers.join(", ")
                );
            }
        }
        out
    }
}

/// Group observations into per-vaccine meta-profiles.
pub fn build_meta_profiles(observations: &[Observation]) -> Vec<MetaProfile> {
    let mut by_vaccine: BTreeMap<String, MetaProfile> = BTreeMap::new();
    for obs in observations {
        let profile = by_vaccine
            .entry(obs.vaccine.clone())
            .or_insert_with(|| MetaProfile {
                vaccine: obs.vaccine.clone(),
                ..MetaProfile::default()
            });
        profile
            .doses
            .entry(obs.dose)
            .or_default()
            .effects
            .entry(obs.effect.clone())
            .or_default()
            .push((obs.paper_id.clone(), obs.rate));
        if !profile.sources.contains(&obs.paper_id) {
            profile.sources.push(obs.paper_id.clone());
        }
    }
    by_vaccine.into_values().collect()
}

/// The headline number of Fig 6: how many sources a reader would have had
/// to consult, now summarized in `profiles.len()` profiles.
pub fn compression_factor(profiles: &[MetaProfile]) -> f64 {
    if profiles.is_empty() {
        return 0.0;
    }
    let sources: usize = profiles.iter().map(MetaProfile::source_count).sum();
    sources as f64 / profiles.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(vaccine: &str, dose: u8, effect: &str, rate: f32, paper: &str) -> Observation {
        Observation {
            vaccine: vaccine.into(),
            dose,
            effect: effect.into(),
            rate,
            paper_id: paper.into(),
        }
    }

    fn fig6_like() -> Vec<Observation> {
        // Three papers reporting on two vaccines, mirroring Fig 6's
        // "three different COVID-19 papers … 9 different sources" shape.
        vec![
            obs("Pfizer", 1, "Fever", 12.0, "p1"),
            obs("Pfizer", 1, "Fatigue", 30.0, "p1"),
            obs("Pfizer", 2, "Fever", 22.0, "p2"),
            obs("Pfizer", 1, "Fever", 14.0, "p3"),
            obs("Moderna", 1, "Fever", 15.0, "p2"),
            obs("Moderna", 2, "Chills", 25.0, "p3"),
        ]
    }

    #[test]
    fn groups_by_vaccine_dose_effect_paper() {
        let profiles = build_meta_profiles(&fig6_like());
        assert_eq!(profiles.len(), 2);
        let pfizer = profiles.iter().find(|p| p.vaccine == "Pfizer").unwrap();
        assert_eq!(pfizer.source_count(), 3);
        assert_eq!(pfizer.observation_count(), 4);
        let dose1 = &pfizer.doses[&1];
        assert_eq!(dose1.effects["Fever"].len(), 2);
        // Mean over p1 (12) and p3 (14).
        assert!((dose1.mean_rate("Fever").unwrap() - 13.0).abs() < 1e-6);
        assert_eq!(dose1.mean_rate("Nonexistent"), None);
    }

    #[test]
    fn compression_factor_counts_sources_per_profile() {
        let profiles = build_meta_profiles(&fig6_like());
        // Pfizer: 3 sources, Moderna: 2 → 5 sources in 2 profiles.
        assert!((compression_factor(&profiles) - 2.5).abs() < 1e-9);
        assert_eq!(compression_factor(&[]), 0.0);
    }

    #[test]
    fn render_contains_all_axes() {
        let profiles = build_meta_profiles(&fig6_like());
        let text = profiles
            .iter()
            .map(MetaProfile::render)
            .collect::<String>();
        assert!(text.contains("Pfizer"));
        assert!(text.contains("dose 1"));
        assert!(text.contains("dose 2"));
        assert!(text.contains("Fever"));
        assert!(text.contains("p3"));
    }

    #[test]
    fn chart_renders_bars_per_dose() {
        let profiles = build_meta_profiles(&fig6_like());
        let pfizer = profiles.iter().find(|p| p.vaccine == "Pfizer").unwrap();
        let chart = pfizer.render_chart();
        assert!(chart.contains("Pfizer"), "{chart}");
        assert!(chart.contains("█"), "{chart}");
        assert!(chart.contains("d1"), "{chart}");
        assert!(chart.contains("d2"), "{chart}");
        // Fatigue appears only at dose 1; dose 2 shows the empty marker.
        let fatigue_line = chart.lines().find(|l| l.contains("Fatigue")).unwrap();
        assert!(fatigue_line.contains('-'), "{fatigue_line}");
        // The largest rate fills the longest bar.
        let fever_line = chart.lines().find(|l| l.contains("Fatigue")).unwrap();
        assert!(fever_line.contains("30.0%"));
    }

    #[test]
    fn empty_input_yields_no_profiles() {
        assert!(build_meta_profiles(&[]).is_empty());
    }

    #[test]
    fn deterministic_ordering() {
        let a = build_meta_profiles(&fig6_like());
        let mut rev = fig6_like();
        rev.reverse();
        let b = build_meta_profiles(&rev);
        let names_a: Vec<&str> = a.iter().map(|p| p.vaccine.as_str()).collect();
        let names_b: Vec<&str> = b.iter().map(|p| p.vaccine.as_str()).collect();
        assert_eq!(names_a, names_b);
    }
}
