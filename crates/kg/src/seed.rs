//! The expert-seeded initial layout (№1 in Fig 1).
//!
//! "A Medical Engineering professional … creates an initial, small (10-20
//! nodes) structural layout that will initialize the base of our
//! Knowledge Graph" (§2), with "the general characteristics of COVID-19
//! as a virus … extracted from older, vetted ontologies about viral
//! infections, e.g. symptoms, ways of transmission" (§4.1). This module
//! hard-codes that seed: a root plus the top-level categories the §4.2
//! fusion examples reference (including the overlapping symptom
//! categorizations the paper discusses).

use crate::graph::{KnowledgeGraph, NodeKind};

/// Build the seeded knowledge graph (18 nodes).
pub fn seed_graph() -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let root = kg.add_root("COVID-19");

    let clinical = kg.add_child(root, "Clinical presentation", NodeKind::Category, 1.0);
    let symptoms = kg.add_child(clinical, "Symptoms", NodeKind::Category, 1.0);
    // The paper: common/rare and organ-system categorizations overlap and
    // are both kept (§4.2).
    kg.add_child(symptoms, "Common symptoms", NodeKind::Category, 1.0);
    kg.add_child(symptoms, "Rare symptoms", NodeKind::Category, 1.0);
    let organ = kg.add_child(symptoms, "By organ system", NodeKind::Category, 1.0);
    kg.add_child(organ, "Neurological symptoms", NodeKind::Category, 1.0);
    kg.add_child(organ, "Cerebrovascular symptoms", NodeKind::Category, 1.0);

    let transmission = kg.add_child(root, "Ways of transmission", NodeKind::Category, 1.0);
    kg.add_child(transmission, "Airborne transmission", NodeKind::Category, 1.0);

    let vaccines = kg.add_child(root, "Vaccine(s)", NodeKind::Category, 1.0);
    let side_effects = kg.add_child(vaccines, "Side-effects", NodeKind::Category, 1.0);
    kg.add_child(side_effects, "Children side-effects", NodeKind::Category, 1.0);

    kg.add_child(root, "Treatments", NodeKind::Category, 1.0);
    kg.add_child(root, "Variants", NodeKind::Category, 1.0);
    kg.add_child(root, "Prevention", NodeKind::Category, 1.0);
    kg.add_child(root, "Diagnostics", NodeKind::Category, 1.0);
    kg.add_child(root, "Epidemiology", NodeKind::Category, 1.0);

    kg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_size_matches_paper_range() {
        let kg = seed_graph();
        assert!(
            (10..=20).contains(&kg.len()),
            "seed has {} nodes; the paper says 10-20",
            kg.len()
        );
    }

    #[test]
    fn fusion_reference_nodes_exist() {
        let kg = seed_graph();
        for term in [
            "Vaccine",          // matches Vaccine(s)
            "Side effects",     // matches Side-effects
            "children side-effects",
            "symptoms",
            "transmission ways", // word order ignored
        ] {
            assert!(!kg.find_by_term(term).is_empty(), "missing {term:?}");
        }
    }

    #[test]
    fn hierarchy_is_rooted_and_acyclic() {
        let kg = seed_graph();
        assert_eq!(kg.node(0).kind, NodeKind::Root);
        for n in kg.nodes() {
            if n.id != 0 {
                assert!(!n.parents.is_empty(), "{} is orphaned", n.label);
                let path = kg.path_to_root(n.id);
                assert_eq!(path[0], 0, "{} does not reach the root", n.label);
                assert!(path.len() <= kg.len());
            }
        }
    }

    #[test]
    fn symptom_categorizations_overlap_by_design() {
        let kg = seed_graph();
        let symptoms = kg.find_by_term("Symptoms")[0];
        let labels: Vec<&str> = kg.node(symptoms)
            .children
            .iter()
            .map(|&c| kg.node(c).label.as_str())
            .collect();
        assert!(labels.contains(&"Common symptoms"));
        assert!(labels.contains(&"Rare symptoms"));
        assert!(labels.contains(&"By organ system"));
    }
}
