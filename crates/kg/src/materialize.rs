//! Incrementally-materialized meta-profile documents.
//!
//! [`build_meta_profiles`](crate::profile::build_meta_profiles) is a
//! pure full rebuild: every caller re-derives every vaccine's profile
//! from every observation. This module keeps the same profiles *live*
//! instead: a [`ProfileStore`] holds observations keyed by source
//! paper, and a mutation (one paper ingested, updated or deleted)
//! rebuilds only the vaccines that paper touches — driven by the
//! collection mutation log (`Collection::touched_since`, the same hook
//! the render cache and the ANN sync use) plus the ingest path's
//! explicit new-id list (inserts never bump the mutation epoch).
//!
//! Equivalence contract: after any mutation sequence the store's
//! profiles are **equal** to a from-scratch
//! `build_meta_profiles(canonical observations)` where canonical order
//! is papers ascending by id, observations in extraction order within
//! a paper. That holds because a vaccine's profile is a function of
//! the ordered subsequence of its observations, and the store always
//! replays a dirty vaccine's observations in canonical order. The
//! property test in `tests/query_prop.rs` pins it across random
//! mutation sequences.
//!
//! Freshness contract: the store is stamped with the collection
//! mutation epoch it replayed up to and the system generation it was
//! refreshed at; profile documents embed the generation, and the
//! serve-layer cache keys on it — so a stale profile is never served
//! after an ingest.

use crate::profile::{build_meta_profiles, MetaProfile, Observation};
use covidkg_json::{obj, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Counters for the `covidkg_kg_profile_*` metrics series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStoreStats {
    /// Papers currently contributing observations.
    pub papers: usize,
    /// Materialized profiles (distinct vaccines).
    pub profiles: usize,
    /// Observations across all papers.
    pub observations: usize,
    /// Incremental refreshes applied (mutation-log driven).
    pub incremental_refreshes: u64,
    /// Full rebuilds (initial build, or the bounded log overflowed).
    pub full_rebuilds: u64,
    /// Vaccine profiles rebuilt across all refreshes.
    pub vaccines_rebuilt: u64,
    /// Collection mutation epoch the store has replayed up to.
    pub epoch: u64,
    /// System generation the store was last refreshed at.
    pub generation: u64,
}

/// Live meta-profile documents, kept fresh per-paper.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    /// paper id → its observations, in extraction order. BTreeMap is
    /// the canonical order the equivalence contract depends on.
    by_paper: BTreeMap<String, Vec<Observation>>,
    /// vaccine → materialized profile.
    profiles: BTreeMap<String, MetaProfile>,
    /// Flat view in vaccine order, for the `&[MetaProfile]` accessor.
    flat: Vec<MetaProfile>,
    /// Vaccines whose profiles need a rebuild.
    dirty: BTreeSet<String>,
    epoch: u64,
    generation: u64,
    incremental_refreshes: u64,
    full_rebuilds: u64,
    vaccines_rebuilt: u64,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> ProfileStore {
        ProfileStore::default()
    }

    /// Replace the whole corpus: the initial build, and the fallback
    /// when the bounded mutation log no longer covers the window
    /// (`touched_since` returned `None`). `papers` is `(paper id,
    /// observations)`; order does not matter, the store canonicalizes.
    pub fn rebuild_all(&mut self, papers: Vec<(String, Vec<Observation>)>, epoch: u64) {
        self.by_paper.clear();
        for (id, obs) in papers {
            if !obs.is_empty() {
                self.by_paper.insert(id, obs);
            }
        }
        self.profiles.clear();
        for p in build_meta_profiles(&self.canonical_observations()) {
            self.profiles.insert(p.vaccine.clone(), p);
        }
        self.dirty.clear();
        self.epoch = epoch;
        self.full_rebuilds += 1;
        self.vaccines_rebuilt += self.profiles.len() as u64;
        self.reflatten();
    }

    /// Incremental refresh: replay only the given papers (the mutation
    /// log's touched ids unioned with the ingest new-id list), then
    /// rebuild only the vaccines those papers mention. `extract`
    /// re-derives one paper's observations (empty = paper gone or has
    /// no side-effect tables).
    pub fn refresh(
        &mut self,
        epoch: u64,
        paper_ids: &[String],
        mut extract: impl FnMut(&str) -> Vec<Observation>,
    ) {
        let mut ids: Vec<&String> = paper_ids.iter().collect();
        ids.sort();
        ids.dedup();
        for id in ids {
            self.apply(id, extract(id));
        }
        self.rebuild_dirty();
        self.epoch = epoch;
        self.incremental_refreshes += 1;
        self.reflatten();
    }

    /// Upsert or remove one paper's observations, marking the vaccines
    /// of both the old and the new set dirty.
    fn apply(&mut self, paper_id: &str, obs: Vec<Observation>) {
        if let Some(old) = self.by_paper.get(paper_id) {
            for o in old {
                self.dirty.insert(o.vaccine.clone());
            }
        }
        for o in &obs {
            self.dirty.insert(o.vaccine.clone());
        }
        if obs.is_empty() {
            self.by_paper.remove(paper_id);
        } else {
            self.by_paper.insert(paper_id.to_string(), obs);
        }
    }

    /// Rebuild every dirty vaccine from its canonical observation
    /// subsequence.
    fn rebuild_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for vaccine in dirty {
            let obs: Vec<Observation> = self
                .by_paper
                .values()
                .flatten()
                .filter(|o| o.vaccine == vaccine)
                .cloned()
                .collect();
            self.vaccines_rebuilt += 1;
            match build_meta_profiles(&obs).pop() {
                Some(p) => {
                    self.profiles.insert(vaccine, p);
                }
                None => {
                    self.profiles.remove(&vaccine);
                }
            }
        }
    }

    fn reflatten(&mut self) {
        self.flat = self.profiles.values().cloned().collect();
    }

    /// All observations in canonical order (papers ascending,
    /// extraction order within a paper) — what a full rebuild sees.
    pub fn canonical_observations(&self) -> Vec<Observation> {
        self.by_paper.values().flatten().cloned().collect()
    }

    /// Stamp the system generation the store is current as of.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Profiles in vaccine order.
    pub fn profiles(&self) -> &[MetaProfile] {
        &self.flat
    }

    /// One vaccine's profile.
    pub fn profile(&self, vaccine: &str) -> Option<&MetaProfile> {
        self.profiles.get(vaccine)
    }

    /// Mutation epoch the store has replayed up to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epoch-stamped profile document for one vaccine: the JSON form
    /// (doses → effects → per-paper rates) plus the rendered Fig 6
    /// panel, or `None` for an unknown vaccine.
    pub fn document(&self, vaccine: &str) -> Option<Value> {
        let p = self.profiles.get(vaccine)?;
        Some(profile_document(p, self.epoch, self.generation))
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ProfileStoreStats {
        ProfileStoreStats {
            papers: self.by_paper.len(),
            profiles: self.profiles.len(),
            observations: self.by_paper.values().map(Vec::len).sum(),
            incremental_refreshes: self.incremental_refreshes,
            full_rebuilds: self.full_rebuilds,
            vaccines_rebuilt: self.vaccines_rebuilt,
            epoch: self.epoch,
            generation: self.generation,
        }
    }
}

/// The meta-profile *document*: observations grouped by dose → effect
/// → source paper, rendered and JSON forms, epoch-stamped.
pub fn profile_document(p: &MetaProfile, epoch: u64, generation: u64) -> Value {
    let doses = Value::Object(
        p.doses
            .iter()
            .map(|(dose, layer)| {
                let effects = Value::Object(
                    layer
                        .effects
                        .iter()
                        .map(|(effect, obs)| {
                            let reports = Value::Array(
                                obs.iter()
                                    .map(|(paper, rate)| {
                                        obj! {
                                            "paper" => paper.as_str(),
                                            "rate" => *rate as f64,
                                        }
                                    })
                                    .collect(),
                            );
                            let v = obj! {
                                "mean" => layer.mean_rate(effect).unwrap_or(0.0) as f64,
                                "reports" => reports,
                            };
                            (effect.clone(), v)
                        })
                        .collect(),
                );
                (dose.to_string(), effects)
            })
            .collect(),
    );
    obj! {
        "vaccine" => p.vaccine.as_str(),
        "sources" => Value::Array(p.sources.iter().map(|s| Value::str(s.clone())).collect()),
        "observations" => p.observation_count(),
        "doses" => doses,
        "rendered" => p.render(),
        "epoch" => epoch as i64,
        "generation" => generation as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ob(vaccine: &str, dose: u8, effect: &str, rate: f32, paper: &str) -> Observation {
        Observation {
            vaccine: vaccine.into(),
            dose,
            effect: effect.into(),
            rate,
            paper_id: paper.into(),
        }
    }

    fn assert_matches_full_rebuild(store: &ProfileStore) {
        let full = build_meta_profiles(&store.canonical_observations());
        assert_eq!(store.profiles(), &full[..], "incremental ≡ full rebuild");
    }

    #[test]
    fn initial_build_then_incremental_upsert() {
        let mut store = ProfileStore::new();
        store.rebuild_all(
            vec![
                ("p1".into(), vec![ob("Pfizer", 1, "Fever", 12.0, "p1")]),
                ("p2".into(), vec![ob("Moderna", 1, "Fever", 15.0, "p2")]),
            ],
            3,
        );
        assert_eq!(store.profiles().len(), 2);
        assert_matches_full_rebuild(&store);
        // A new paper arrives touching only Pfizer: one vaccine rebuilt.
        let before = store.stats().vaccines_rebuilt;
        store.refresh(5, &["p3".into()], |id| {
            assert_eq!(id, "p3");
            vec![ob("Pfizer", 2, "Chills", 20.0, "p3")]
        });
        assert_eq!(store.stats().vaccines_rebuilt, before + 1);
        assert_eq!(store.stats().incremental_refreshes, 1);
        assert_eq!(store.epoch(), 5);
        assert_eq!(store.profile("Pfizer").unwrap().source_count(), 2);
        assert_matches_full_rebuild(&store);
    }

    #[test]
    fn update_and_delete_mark_old_vaccines_dirty() {
        let mut store = ProfileStore::new();
        store.rebuild_all(
            vec![("p1".into(), vec![ob("Pfizer", 1, "Fever", 12.0, "p1")])],
            1,
        );
        // p1 is rewritten to report on Moderna instead: Pfizer must
        // vanish, Moderna must appear.
        store.refresh(2, &["p1".into()], |_| vec![ob("Moderna", 1, "Fever", 9.0, "p1")]);
        assert!(store.profile("Pfizer").is_none());
        assert!(store.profile("Moderna").is_some());
        assert_matches_full_rebuild(&store);
        // Deletion (empty extraction) removes the last profile.
        store.refresh(3, &["p1".into()], |_| Vec::new());
        assert!(store.profiles().is_empty());
        assert_matches_full_rebuild(&store);
    }

    #[test]
    fn canonical_order_is_paper_ascending() {
        let mut a = ProfileStore::new();
        a.rebuild_all(
            vec![
                ("p2".into(), vec![ob("Pfizer", 1, "Fever", 20.0, "p2")]),
                ("p1".into(), vec![ob("Pfizer", 1, "Fever", 10.0, "p1")]),
            ],
            1,
        );
        // Same papers arriving incrementally in the other order.
        let mut b = ProfileStore::new();
        b.rebuild_all(vec![("p1".into(), vec![ob("Pfizer", 1, "Fever", 10.0, "p1")])], 1);
        b.refresh(2, &["p2".into()], |_| vec![ob("Pfizer", 1, "Fever", 20.0, "p2")]);
        assert_eq!(a.profiles(), b.profiles(), "arrival order must not matter");
        assert_eq!(a.profile("Pfizer").unwrap().sources, ["p1", "p2"]);
    }

    #[test]
    fn document_is_epoch_stamped_and_complete() {
        let mut store = ProfileStore::new();
        store.rebuild_all(
            vec![(
                "p1".into(),
                vec![
                    ob("Pfizer", 1, "Fever", 12.0, "p1"),
                    ob("Pfizer", 2, "Chills", 25.0, "p1"),
                ],
            )],
            7,
        );
        store.set_generation(4);
        let doc = store.document("Pfizer").expect("profile exists");
        assert_eq!(doc.get("vaccine").unwrap().as_str(), Some("Pfizer"));
        assert_eq!(doc.get("epoch").unwrap().as_i64(), Some(7));
        assert_eq!(doc.get("generation").unwrap().as_i64(), Some(4));
        assert_eq!(doc.get("observations").unwrap().as_i64(), Some(2));
        let doses = doc.get("doses").unwrap();
        let fever = doses.get("1").unwrap().get("Fever").unwrap();
        assert!(fever.get("mean").unwrap().as_f64().unwrap() > 11.0);
        assert!(doc.get("rendered").unwrap().as_str().unwrap().contains("dose 1"));
        assert!(store.document("Sputnik").is_none());
        // Documents re-stamp on refresh: a later epoch shows through.
        store.refresh(9, &[], |_| unreachable!("no papers touched"));
        assert_eq!(store.document("Pfizer").unwrap().get("epoch").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn full_rebuild_counter_and_stats() {
        let mut store = ProfileStore::new();
        store.rebuild_all(
            vec![
                ("p1".into(), vec![ob("Pfizer", 1, "Fever", 12.0, "p1")]),
                ("p2".into(), Vec::new()),
            ],
            1,
        );
        let s = store.stats();
        assert_eq!(s.full_rebuilds, 1);
        assert_eq!(s.papers, 1, "empty papers are not stored");
        assert_eq!(s.profiles, 1);
        assert_eq!(s.observations, 1);
        assert_eq!(s.epoch, 1);
    }
}
