//! The §4.2 fusion algorithm.
//!
//! "The first step of fusing the extracted hierarchical knowledge into
//! the KG is matching the root node of the extracted subtree to the
//! corresponding node(s) in the KG. This matching process is based on
//! normalized NLP term matching, amended by the embedding-driven
//! matching. The latter is especially important in context of new terms,
//! unseen before …"
//!
//! Rules implemented exactly as the paper lays them out:
//!
//! * single-layer subtrees whose root term-matches a KG node fuse their
//!   leaves unsupervised ("fusion of leaves with nodes matched with high
//!   confidence score may be left unsupervised");
//! * when no term match exists, the leaves' embedding vectors are
//!   compared against existing KG leaves; a close match proposes the
//!   matched leaves' parent, but the *insertion of new nodes* still goes
//!   to the expert queue (№14);
//! * multi-layer subtrees (e.g. `Side-effects → Children side-effects →
//!   Rash`) always queue — qualified categories stay separate even when
//!   their leaves overlap the general category;
//! * expert decisions are remembered: "Over time, all categories of
//!   initial fusion mistakes identified by the expert will be learned by
//!   the fusion module to be automatically corrected, hence most of the
//!   fusion is expected to become minimally supervised."

use crate::extract::ExtractedTree;
use crate::graph::{KnowledgeGraph, NodeId, NodeKind};
use covidkg_ml::word2vec::cosine;
use covidkg_ml::Word2Vec;
use covidkg_text::{normalize_term, tokenize_lower};
use std::collections::HashMap;

/// Fusion tuning knobs.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Minimum leaf-embedding cosine for a leaf to cast a vote.
    pub embed_threshold: f32,
    /// Minimum gap between a leaf's best-parent similarity and its best
    /// similarity to any *other* parent's leaves (kills category-agnostic
    /// leaves like "Total" that sit near everything).
    pub embed_margin: f32,
    /// Confidence recorded on auto-fused leaves.
    pub auto_confidence: f64,
    /// Disable the embedding fallback (the E6 ablation arm).
    pub use_embeddings: bool,
}

impl Default for FusionConfig {
    fn default() -> Self {
        FusionConfig {
            embed_threshold: 0.9,
            embed_margin: 0.1,
            auto_confidence: 0.8,
            use_embeddings: true,
        }
    }
}

/// What happened to a submitted subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionOutcome {
    /// Leaves fused under an existing node without supervision.
    AutoFused {
        /// Parent the leaves went under.
        parent: NodeId,
        /// Leaves newly added (existing ones only gain provenance).
        added: usize,
        /// True when the parent came from the correction memory.
        via_memory: bool,
        /// True when the parent was found by embedding matching.
        via_embedding: bool,
    },
    /// Sent to the expert review queue.
    Queued {
        /// Index in the pending queue.
        ticket: usize,
        /// Why it queued.
        reason: QueueReason,
    },
    /// Dropped: no usable content.
    Discarded,
}

/// Why a subtree reached the review queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueReason {
    /// The subtree has intermediate layers (always expert-reviewed).
    MultiLayer,
    /// The root is unseen and a new category node would be inserted.
    NewNode,
    /// Several KG nodes matched the root ambiguously.
    Ambiguous,
}

/// A queued fusion awaiting expert review.
#[derive(Debug, Clone)]
pub struct PendingFusion {
    /// The extracted subtree.
    pub tree: ExtractedTree,
    /// Parent proposed by embedding matching, if any.
    pub proposed_parent: Option<NodeId>,
    /// Queue reason.
    pub reason: QueueReason,
}

/// The expert's verdict on a pending fusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpertDecision {
    /// Fuse under this existing node.
    AttachUnder(NodeId),
    /// Create the subtree's root as a new child of this node, then fuse.
    CreateUnder(NodeId),
    /// Reject the subtree entirely.
    Reject,
}

/// Anything that can play the reviewing expert (№14 in Fig 1).
pub trait ExpertOracle {
    /// Review one pending fusion.
    fn review(&mut self, kg: &KnowledgeGraph, pending: &PendingFusion) -> ExpertDecision;
}

/// A scripted expert driven by ground truth: maps normalized root terms to
/// canonical KG category labels. Substitutes for the human expert in
/// experiments (see DESIGN.md substitutions). An optional error-injection
/// mode makes a seeded fraction of reviews wrong, modeling a fallible
/// human so the correction-memory machinery can be tested for robustness.
#[derive(Debug, Clone, Default)]
pub struct ScriptedExpert {
    /// normalized root key → canonical category label in the KG.
    mapping: HashMap<String, String>,
    /// Reviews performed (supervision cost metric).
    pub reviews: usize,
    /// Wrong reviews issued by the error-injection mode.
    pub errors: usize,
    /// Probability of a wrong decision, with the LCG state driving it.
    error: Option<(f64, u64)>,
}

impl ScriptedExpert {
    /// Expert with a ground-truth mapping (`root term → category label`).
    pub fn new(pairs: &[(&str, &str)]) -> ScriptedExpert {
        ScriptedExpert {
            mapping: pairs
                .iter()
                .map(|(k, v)| (normalize_term(k).key(), v.to_string()))
                .collect(),
            reviews: 0,
            errors: 0,
            error: None,
        }
    }

    /// Enable error injection: each review is wrong with probability
    /// `rate` (deterministic per `seed`).
    pub fn with_error_rate(mut self, rate: f64, seed: u64) -> ScriptedExpert {
        self.error = Some((rate, seed | 1));
        self
    }

    /// Advance the internal LCG; returns true when this review should err.
    fn roll_error(&mut self) -> bool {
        let Some((rate, state)) = &mut self.error else {
            return false;
        };
        // Minimal LCG (Numerical Recipes constants) — dependency-free and
        // deterministic across platforms.
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let draw = (*state >> 11) as f64 / (1u64 << 53) as f64;
        draw < *rate
    }
}

impl ExpertOracle for ScriptedExpert {
    fn review(&mut self, kg: &KnowledgeGraph, pending: &PendingFusion) -> ExpertDecision {
        self.reviews += 1;
        if self.roll_error() {
            self.errors += 1;
            // A wrong-but-plausible decision: dump the subtree at the root.
            return ExpertDecision::CreateUnder(0);
        }
        let key = normalize_term(&pending.tree.root).key();
        if let Some(label) = self.mapping.get(&key) {
            if let Some(&node) = kg.find_by_term(label).first() {
                return ExpertDecision::AttachUnder(node);
            }
        }
        if let Some(parent) = pending.proposed_parent {
            return ExpertDecision::AttachUnder(parent);
        }
        // Fall back to creating the category under the root.
        ExpertDecision::CreateUnder(0)
    }
}

/// Running counters for the E6 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Subtrees fused without supervision.
    pub auto_fused: usize,
    /// … of which via correction memory.
    pub via_memory: usize,
    /// … of which via embedding matching.
    pub via_embedding: usize,
    /// Subtrees queued for expert review.
    pub queued: usize,
    /// Expert reviews resolved.
    pub reviewed: usize,
    /// Subtrees discarded.
    pub discarded: usize,
    /// Leaf nodes added to the graph.
    pub leaves_added: usize,
}

impl FusionStats {
    /// Fraction of submissions that needed the expert.
    pub fn supervision_rate(&self) -> f64 {
        let total = self.auto_fused + self.queued + self.discarded;
        if total == 0 {
            0.0
        } else {
            self.queued as f64 / total as f64
        }
    }
}

/// The fusion engine, owning the graph it grows.
pub struct FusionEngine<'w> {
    kg: KnowledgeGraph,
    cfg: FusionConfig,
    embeddings: Option<&'w Word2Vec>,
    /// Learned corrections: normalized root key → parent node.
    memory: HashMap<String, NodeId>,
    queue: Vec<PendingFusion>,
    stats: FusionStats,
}

impl<'w> FusionEngine<'w> {
    /// Engine over an initial graph, optionally with embeddings for the
    /// unseen-term fallback.
    pub fn new(kg: KnowledgeGraph, embeddings: Option<&'w Word2Vec>, cfg: FusionConfig) -> Self {
        FusionEngine {
            kg,
            cfg,
            embeddings,
            memory: HashMap::new(),
            queue: Vec::new(),
            stats: FusionStats::default(),
        }
    }

    /// The graph so far.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// Consume the engine, returning the graph.
    pub fn into_graph(self) -> KnowledgeGraph {
        self.kg
    }

    /// Consume the engine, returning the graph and the learned correction
    /// memory — callers doing incremental ingest (№12 in Fig 1) restore
    /// the memory into the next engine so supervision keeps decreasing
    /// across sessions.
    pub fn into_parts(self) -> (KnowledgeGraph, HashMap<String, NodeId>) {
        (self.kg, self.memory)
    }

    /// Restore a previously learned correction memory.
    pub fn set_memory(&mut self, memory: HashMap<String, NodeId>) {
        self.memory = memory;
    }

    /// Running statistics.
    pub fn stats(&self) -> FusionStats {
        self.stats
    }

    /// Pending review tickets.
    pub fn pending(&self) -> &[PendingFusion] {
        &self.queue
    }

    /// Submit one extracted subtree.
    pub fn fuse(&mut self, tree: ExtractedTree) -> FusionOutcome {
        if tree.leaves.is_empty() || tree.root.trim().is_empty() {
            self.stats.discarded += 1;
            return FusionOutcome::Discarded;
        }
        let key = normalize_term(&tree.root).key();

        // Multi-layer subtrees always need the expert (§4.2: "Fusion of
        // sub-trees, having several layers … will have to be evaluated by
        // a human expert").
        if tree.is_multi_layer() {
            return self.enqueue(tree, None, QueueReason::MultiLayer);
        }

        // 0. Correction memory (expert-derived: high confidence).
        if let Some(&parent) = self.memory.get(&key) {
            let added = self.attach_leaves_with(parent, &tree, 0.9);
            self.stats.auto_fused += 1;
            self.stats.via_memory += 1;
            return FusionOutcome::AutoFused {
                parent,
                added,
                via_memory: true,
                via_embedding: false,
            };
        }

        // 1. Normalized NLP term matching on the root.
        let matches = self.kg.find_by_term(&tree.root);
        match matches.len() {
            1 => {
                let parent = matches[0];
                // Normalized term matches are the paper's gold standard.
                let added = self.attach_leaves_with(parent, &tree, 1.0);
                self.stats.auto_fused += 1;
                FusionOutcome::AutoFused {
                    parent,
                    added,
                    via_memory: false,
                    via_embedding: false,
                }
            }
            0 => {
                // 2. Embedding fallback: match the subtree's leaves to
                // existing KG leaves; their parent is the proposal.
                let proposal = if self.cfg.use_embeddings {
                    self.embedding_proposal(&tree)
                } else {
                    None
                };
                match proposal {
                    Some((parent, sim)) => {
                        // The root term itself is unseen, so attaching the
                        // leaves under the matched parent is the paper's
                        // NovoVac scenario; leaf-level fusion with a high
                        // confidence match stays unsupervised, recording
                        // the embedding similarity as the confidence.
                        let added =
                            self.attach_leaves_with(parent, &tree, f64::from(sim).clamp(0.0, 1.0));
                        self.memory.insert(key, parent);
                        self.stats.auto_fused += 1;
                        self.stats.via_embedding += 1;
                        FusionOutcome::AutoFused {
                            parent,
                            added,
                            via_memory: false,
                            via_embedding: true,
                        }
                    }
                    None => self.enqueue(tree, None, QueueReason::NewNode),
                }
            }
            _ => self.enqueue(tree, None, QueueReason::Ambiguous),
        }
    }

    /// Resolve every queued fusion with the expert, learning corrections.
    /// Returns the number of tickets resolved.
    pub fn process_reviews(&mut self, expert: &mut dyn ExpertOracle) -> usize {
        let queue = std::mem::take(&mut self.queue);
        let n = queue.len();
        for pending in queue {
            let decision = expert.review(&self.kg, &pending);
            self.stats.reviewed += 1;
            let key = normalize_term(&pending.tree.root).key();
            match decision {
                ExpertDecision::AttachUnder(parent) => {
                    self.apply_layers_then_leaves(parent, &pending.tree);
                    self.memory.insert(key, parent);
                }
                ExpertDecision::CreateUnder(grandparent) => {
                    let parent = self.kg.add_child(
                        grandparent,
                        pending.tree.root.clone(),
                        NodeKind::Category,
                        self.cfg.auto_confidence,
                    );
                    self.apply_layers_then_leaves(parent, &pending.tree);
                    self.memory.insert(key, parent);
                }
                ExpertDecision::Reject => {
                    self.stats.discarded += 1;
                }
            }
        }
        n
    }

    /// Walk/create the intermediate layer chain, then attach the leaves.
    fn apply_layers_then_leaves(&mut self, mut parent: NodeId, tree: &ExtractedTree) {
        for layer in &tree.layers {
            parent = match self.kg.find_child_by_term(parent, layer) {
                Some(existing) => existing,
                // §4.2: the qualified category is added even if its leaves
                // overlap the general category's.
                None => self.kg.add_child(
                    parent,
                    layer.clone(),
                    NodeKind::Category,
                    self.cfg.auto_confidence,
                ),
            };
        }
        self.attach_leaves(parent, tree);
    }

    /// Merge leaves under `parent`: existing leaves gain provenance, new
    /// ones become Entity children. Returns the number added.
    fn attach_leaves(&mut self, parent: NodeId, tree: &ExtractedTree) -> usize {
        self.attach_leaves_with(parent, tree, self.cfg.auto_confidence)
    }

    /// Like [`Self::attach_leaves`] but recording an explicit per-match
    /// confidence (§4.2 grades matches by "high confidence score"; term
    /// matches score 1.0, memory-driven fusions 0.9, embedding matches
    /// carry their mean cosine).
    fn attach_leaves_with(
        &mut self,
        parent: NodeId,
        tree: &ExtractedTree,
        confidence: f64,
    ) -> usize {
        let mut added = 0;
        for leaf in &tree.leaves {
            let node = match self.kg.find_child_by_term(parent, leaf) {
                Some(existing) => existing,
                None => {
                    added += 1;
                    self.kg
                        .add_child(parent, leaf.clone(), NodeKind::Entity, confidence)
                }
            };
            self.kg.add_provenance(node, tree.paper_id.clone());
        }
        self.stats.leaves_added += added;
        added
    }

    fn enqueue(
        &mut self,
        tree: ExtractedTree,
        proposed_parent: Option<NodeId>,
        reason: QueueReason,
    ) -> FusionOutcome {
        // Even for queued trees, try to give the expert a proposal.
        let proposed = proposed_parent.or_else(|| {
            if self.cfg.use_embeddings {
                self.embedding_proposal(&tree).map(|(p, _)| p)
            } else {
                None
            }
        });
        self.queue.push(PendingFusion {
            tree,
            proposed_parent: proposed,
            reason,
        });
        self.stats.queued += 1;
        FusionOutcome::Queued {
            ticket: self.queue.len() - 1,
            reason,
        }
    }

    /// Embedding-driven matching (§4.2): each new leaf votes for the
    /// parent of its most similar existing Entity leaf, but only when the
    /// similarity is high **and** clearly separated from the next-best
    /// parent (category-agnostic strings like `Total` sit moderately
    /// close to everything and must abstain). The proposal stands when a
    /// strict majority of leaves votes for the same parent.
    fn embedding_proposal(&self, tree: &ExtractedTree) -> Option<(NodeId, f32)> {
        let w2v = self.embeddings?;
        let new_vecs: Vec<Vec<f32>> = tree
            .leaves
            .iter()
            .map(|l| w2v.embed_phrase(&tokenize_lower(l)))
            .filter(|v| v.iter().any(|&x| x != 0.0))
            .collect();
        if new_vecs.is_empty() {
            return None;
        }
        // Existing leaves with embeddings, tagged by parent.
        let entities: Vec<(NodeId, Vec<f32>)> = self
            .kg
            .nodes()
            .iter()
            .filter(|n| n.kind == NodeKind::Entity && !n.parents.is_empty())
            .filter_map(|n| {
                let v = w2v.embed_phrase(&tokenize_lower(&n.label));
                v.iter().any(|&x| x != 0.0).then_some((n.parents[0], v))
            })
            .collect();
        if entities.is_empty() {
            return None;
        }
        let mut votes: std::collections::HashMap<NodeId, (f32, usize)> =
            std::collections::HashMap::new();
        for v in &new_vecs {
            // Best similarity per candidate parent.
            let mut per_parent: std::collections::HashMap<NodeId, f32> =
                std::collections::HashMap::new();
            for (parent, existing) in &entities {
                let sim = cosine(v, existing);
                let slot = per_parent.entry(*parent).or_insert(f32::MIN);
                if sim > *slot {
                    *slot = sim;
                }
            }
            let mut ranked: Vec<(NodeId, f32)> = per_parent.into_iter().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            let (best_parent, best_sim) = ranked[0];
            let runner_up = ranked.get(1).map_or(f32::MIN, |&(_, s)| s);
            if best_sim >= self.cfg.embed_threshold
                && best_sim - runner_up >= self.cfg.embed_margin
            {
                let slot = votes.entry(best_parent).or_insert((0.0, 0));
                slot.0 += best_sim;
                slot.1 += 1;
            }
        }
        let (parent, (sum, n)) = votes.into_iter().max_by(|a, b| {
            a.1 .1
                .cmp(&b.1 .1)
                .then(a.1 .0.partial_cmp(&b.1 .0).unwrap_or(std::cmp::Ordering::Equal))
        })?;
        // Strict majority of all leaves must have voted for this parent.
        (n * 2 > new_vecs.len()).then(|| (parent, sum / n as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::seed_graph;
    use covidkg_ml::{Word2Vec, Word2VecConfig};

    fn tree(root: &str, leaves: &[&str], paper: &str) -> ExtractedTree {
        ExtractedTree {
            root: root.to_string(),
            layers: Vec::new(),
            leaves: leaves.iter().map(|s| s.to_string()).collect(),
            paper_id: paper.to_string(),
        }
    }

    #[test]
    fn term_match_fuses_unsupervised() {
        // The paper's example: root `Vaccine` matches KG node `Vaccine(s)`.
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        let outcome = engine.fuse(tree("Vaccine", &["Pfizer", "NovoVac"], "p1"));
        let FusionOutcome::AutoFused { parent, added, via_memory, via_embedding } = outcome else {
            panic!("expected auto fusion, got {outcome:?}");
        };
        assert_eq!(added, 2);
        assert!(!via_memory && !via_embedding);
        let kg = engine.graph();
        assert_eq!(kg.node(parent).label, "Vaccine(s)");
        let novo = kg.find_by_term("NovoVac")[0];
        assert_eq!(kg.node(novo).provenance, ["p1"]);
        assert_eq!(engine.stats().supervision_rate(), 0.0);
    }

    #[test]
    fn confidence_grades_by_match_kind() {
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        // Term match → confidence 1.0 on the new leaf.
        engine.fuse(tree("Vaccine", &["Pfizer"], "p1"));
        let pfizer = engine.graph().find_by_term("Pfizer")[0];
        assert_eq!(engine.graph().node(pfizer).confidence, 1.0);
        // Memory-driven fusion (after expert review) → 0.9.
        engine.fuse(tree("Jabs", &["Moderna"], "p2"));
        let mut expert = ScriptedExpert::new(&[("Jabs", "Vaccine(s)")]);
        engine.process_reviews(&mut expert);
        engine.fuse(tree("Jabs", &["Sputnik"], "p3"));
        let sputnik = engine.graph().find_by_term("Sputnik")[0];
        assert_eq!(engine.graph().node(sputnik).confidence, 0.9);
    }

    #[test]
    fn repeated_leaves_gain_provenance_not_duplicates() {
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        engine.fuse(tree("Vaccine", &["Pfizer"], "p1"));
        let before = engine.graph().len();
        engine.fuse(tree("Vaccines", &["Pfizer"], "p2"));
        assert_eq!(engine.graph().len(), before);
        let pfizer = engine.graph().find_by_term("Pfizer")[0];
        assert_eq!(engine.graph().node(pfizer).provenance, ["p1", "p2"]);
    }

    #[test]
    fn multi_layer_always_queues() {
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        let t = ExtractedTree {
            root: "Side-effects".into(),
            layers: vec!["Children side-effects".into()],
            leaves: vec!["Rash".into()],
            paper_id: "p3".into(),
        };
        let outcome = engine.fuse(t);
        assert!(matches!(
            outcome,
            FusionOutcome::Queued { reason: QueueReason::MultiLayer, .. }
        ));
        assert_eq!(engine.pending().len(), 1);
    }

    #[test]
    fn expert_resolves_multi_layer_and_rash_stays_qualified() {
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        engine.fuse(ExtractedTree {
            root: "Side-effects".into(),
            layers: vec!["Children side-effects".into()],
            leaves: vec!["Rash".into()],
            paper_id: "p3".into(),
        });
        let mut expert = ScriptedExpert::new(&[("Side-effects", "Side-effects")]);
        let resolved = engine.process_reviews(&mut expert);
        assert_eq!(resolved, 1);
        assert_eq!(expert.reviews, 1);
        let kg = engine.graph();
        // Rash lives under Children side-effects, not the general node.
        let rash = kg.find_by_term("Rash")[0];
        let path_labels: Vec<&str> = kg
            .path_to_root(rash)
            .iter()
            .map(|&n| kg.node(n).label.as_str())
            .collect();
        assert!(path_labels.contains(&"Children side-effects"), "{path_labels:?}");
    }

    #[test]
    fn unseen_root_without_embeddings_queues_as_new_node() {
        let cfg = FusionConfig {
            use_embeddings: false,
            ..FusionConfig::default()
        };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let outcome = engine.fuse(tree("Immunization products", &["NovoVac"], "p4"));
        assert!(matches!(
            outcome,
            FusionOutcome::Queued { reason: QueueReason::NewNode, .. }
        ));
    }

    /// The paper's NovoVac scenario: a brand-new term whose embedding sits
    /// near existing vaccines fuses under the vaccines node automatically.
    #[test]
    fn embedding_fallback_handles_unseen_terms() {
        // Train embeddings where "novovac" co-occurs with known vaccines.
        let sentences: Vec<Vec<String>> = (0..40)
            .map(|i| {
                let mut s = vec![
                    "pfizer".to_string(),
                    "moderna".to_string(),
                    "novovac".to_string(),
                    "dose".to_string(),
                ];
                s.rotate_left(i % 4);
                s
            })
            .chain((0..40).map(|i| {
                let mut s = vec![
                    "ventilator".to_string(),
                    "icu".to_string(),
                    "oxygen".to_string(),
                    "intubation".to_string(),
                ];
                s.rotate_left(i % 4);
                s
            }))
            .collect();
        let w2v = Word2Vec::train(
            &sentences,
            &Word2VecConfig {
                epochs: 25,
                ..Word2VecConfig::default()
            },
        );

        let mut kg = seed_graph();
        let vaccines = kg.find_by_term("Vaccine")[0];
        kg.add_child(vaccines, "Pfizer", NodeKind::Entity, 1.0);
        kg.add_child(vaccines, "Moderna", NodeKind::Entity, 1.0);

        // The toy corpus trains weaker vectors than the real pipeline, so
        // relax the vote threshold (the default 0.9 targets corpus-scale
        // embeddings).
        let cfg = FusionConfig {
            embed_threshold: 0.5,
            ..FusionConfig::default()
        };
        let mut engine = FusionEngine::new(kg, Some(&w2v), cfg);
        // Root "Immunization products" is unseen; leaf "novovac" is close
        // to pfizer/moderna in embedding space.
        let outcome = engine.fuse(tree("Immunization products", &["novovac"], "p5"));
        let FusionOutcome::AutoFused { parent, via_embedding, .. } = outcome else {
            panic!("expected embedding-driven fusion, got {outcome:?}");
        };
        assert!(via_embedding);
        assert_eq!(engine.graph().node(parent).label, "Vaccine(s)");
    }

    #[test]
    fn correction_memory_reduces_supervision() {
        let cfg = FusionConfig {
            use_embeddings: false,
            ..FusionConfig::default()
        };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let mut expert = ScriptedExpert::new(&[("Jabs", "Vaccine(s)")]);

        // Round 1: unseen root queues, expert resolves.
        let o1 = engine.fuse(tree("Jabs", &["Pfizer"], "p1"));
        assert!(matches!(o1, FusionOutcome::Queued { .. }));
        engine.process_reviews(&mut expert);
        assert_eq!(expert.reviews, 1);

        // Round 2: same root now fuses from memory — no expert needed.
        let o2 = engine.fuse(tree("Jabs", &["Moderna"], "p2"));
        assert!(
            matches!(o2, FusionOutcome::AutoFused { via_memory: true, .. }),
            "{o2:?}"
        );
        assert_eq!(expert.reviews, 1, "no new reviews");
        let stats = engine.stats();
        assert_eq!(stats.via_memory, 1);
        assert!(stats.supervision_rate() < 0.51);
    }

    #[test]
    fn ambiguous_roots_queue() {
        let mut kg = seed_graph();
        // Create a second node normalizing like "Symptoms".
        let clinical = kg.find_by_term("Clinical presentation")[0];
        kg.add_child(clinical, "Symptom", NodeKind::Category, 1.0);
        let mut engine = FusionEngine::new(kg, None, FusionConfig::default());
        let outcome = engine.fuse(tree("Symptoms", &["Cough"], "p6"));
        assert!(matches!(
            outcome,
            FusionOutcome::Queued { reason: QueueReason::Ambiguous, .. }
        ));
    }

    #[test]
    fn empty_trees_are_discarded() {
        let mut engine = FusionEngine::new(seed_graph(), None, FusionConfig::default());
        assert_eq!(engine.fuse(tree("Vaccine", &[], "p")), FusionOutcome::Discarded);
        assert_eq!(engine.fuse(tree("  ", &["x"], "p")), FusionOutcome::Discarded);
        assert_eq!(engine.stats().discarded, 2);
    }

    #[test]
    fn erring_expert_is_deterministic_and_bounded() {
        let mut expert =
            ScriptedExpert::new(&[("Jabs", "Vaccine(s)")]).with_error_rate(0.5, 9);
        let cfg = FusionConfig {
            use_embeddings: false,
            ..FusionConfig::default()
        };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg.clone());
        for i in 0..40 {
            engine.fuse(ExtractedTree {
                root: format!("Novel topic {i}"),
                layers: Vec::new(),
                leaves: vec![format!("Leaf {i}")],
                paper_id: "p".into(),
            });
            engine.process_reviews(&mut expert);
        }
        assert_eq!(expert.reviews, 40);
        assert!(
            (8..=32).contains(&expert.errors),
            "error injection out of band: {}",
            expert.errors
        );
        // Determinism per seed.
        let mut expert2 =
            ScriptedExpert::new(&[("Jabs", "Vaccine(s)")]).with_error_rate(0.5, 9);
        let mut engine2 = FusionEngine::new(seed_graph(), None, cfg);
        for i in 0..40 {
            engine2.fuse(ExtractedTree {
                root: format!("Novel topic {i}"),
                layers: Vec::new(),
                leaves: vec![format!("Leaf {i}")],
                paper_id: "p".into(),
            });
            engine2.process_reviews(&mut expert2);
        }
        assert_eq!(expert.errors, expert2.errors);
        // Even with errors, the graph stays rooted.
        let kg = engine.into_graph();
        for n in kg.nodes() {
            assert_eq!(kg.path_to_root(n.id)[0], 0);
        }
    }

    #[test]
    fn expert_create_under_builds_new_category() {
        let cfg = FusionConfig {
            use_embeddings: false,
            ..FusionConfig::default()
        };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        engine.fuse(tree("Long covid", &["Brain fog"], "p7"));
        // Expert without a mapping creates under root.
        let mut expert = ScriptedExpert::default();
        engine.process_reviews(&mut expert);
        let kg = engine.graph();
        let lc = kg.find_by_term("Long covid");
        assert_eq!(lc.len(), 1);
        assert_eq!(kg.path_to_root(lc[0]), vec![0, lc[0]]);
        assert_eq!(kg.find_by_term("Brain fog").len(), 1);
    }
}
