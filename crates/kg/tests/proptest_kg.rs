//! Property tests: fusion streams keep the knowledge graph a rooted DAG,
//! JSON round-trips preserve structure, and search never panics. Runs on
//! the in-repo `covidkg_rand::prop` harness.

use covidkg_kg::{
    seed_graph, ExtractedTree, FusionConfig, FusionEngine, FusionOutcome, KnowledgeGraph,
    ScriptedExpert,
};
use covidkg_rand::prop::{self, any_string, charset_string, lowercase_string, vec_of};
use covidkg_rand::{Rng, SmallRng};

const UPPER: &[char] = &[
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S',
    'T', 'U', 'V', 'W', 'X', 'Y', 'Z',
];
const DIGITS_LOWER: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9',
];

/// A capitalised word like the old `[A-Z][a-z]{2,8}` strategy produced.
fn cap_word(rng: &mut SmallRng) -> String {
    let head = charset_string(rng, UPPER, 1, 1);
    let tail = lowercase_string(rng, 2, 8);
    format!("{head}{tail}")
}

fn random_tree(rng: &mut SmallRng) -> ExtractedTree {
    let root = match rng.gen_range(0u32..5) {
        0 => "Vaccine".to_string(),
        1 => "Side effect".to_string(),
        2 => "Symptoms".to_string(),
        3 => "Treatments".to_string(),
        _ => cap_word(rng),
    };
    let leaves = vec_of(rng, 0, 3, cap_word);
    let layers = vec_of(rng, 0, 1, |_| "Children side-effects".to_string());
    let paper = charset_string(rng, DIGITS_LOWER, 4, 8);
    ExtractedTree {
        root,
        layers,
        leaves,
        paper_id: format!("paper-{paper}"),
    }
}

fn assert_rooted_dag(kg: &KnowledgeGraph) {
    for node in kg.nodes() {
        if node.id == 0 {
            assert!(node.parents.is_empty());
            continue;
        }
        assert!(!node.parents.is_empty(), "{} orphaned", node.label);
        let path = kg.path_to_root(node.id);
        assert_eq!(path[0], 0, "{} unreachable from root", node.label);
        assert!(path.len() <= kg.len(), "cycle suspected at {}", node.label);
        // Parent/child symmetry.
        for &p in &node.parents {
            assert!(
                kg.node(p).children.contains(&node.id),
                "asymmetric edge {} -> {}",
                p,
                node.id
            );
        }
    }
}

#[test]
fn fusion_streams_preserve_graph_invariants() {
    prop::run(48, |rng| {
        let trees = vec_of(rng, 0, 24, random_tree);
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let mut expert = ScriptedExpert::default();
        for tree in trees {
            let _ = engine.fuse(tree);
            engine.process_reviews(&mut expert);
        }
        let stats = engine.stats();
        let kg = engine.into_graph();
        assert_rooted_dag(&kg);
        // Accounting: every submission is exactly one of the outcomes.
        assert_eq!(stats.reviewed, stats.queued, "all queued items must be reviewed");
    });
}

#[test]
fn fusion_outcomes_are_exhaustive() {
    prop::run(48, |rng| {
        let tree = random_tree(rng);
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let outcome = engine.fuse(tree.clone());
        let stats = engine.stats();
        match outcome {
            FusionOutcome::AutoFused { .. } => assert_eq!(stats.auto_fused, 1),
            FusionOutcome::Queued { .. } => assert_eq!(stats.queued, 1),
            FusionOutcome::Discarded => assert_eq!(stats.discarded, 1),
        }
    });
}

#[test]
fn json_round_trip_preserves_fused_graphs() {
    prop::run(48, |rng| {
        let trees = vec_of(rng, 0, 14, random_tree);
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let mut expert = ScriptedExpert::default();
        for tree in trees {
            let _ = engine.fuse(tree);
        }
        engine.process_reviews(&mut expert);
        let kg = engine.into_graph();
        let back = KnowledgeGraph::from_json(&kg.to_json()).expect("round trip");
        assert_eq!(back.len(), kg.len());
        for (a, b) in kg.nodes().iter().zip(back.nodes()) {
            assert_eq!(&a.label, &b.label);
            assert_eq!(&a.parents, &b.parents);
            assert_eq!(&a.provenance, &b.provenance);
        }
        assert_rooted_dag(&back);
    });
}

#[test]
fn kg_search_never_panics() {
    prop::run(96, |rng| {
        let query = any_string(rng, 0, 24);
        let kg = seed_graph();
        let hits = kg.search(&query);
        for hit in hits {
            assert!(hit.node < kg.len());
            assert_eq!(hit.path.last(), Some(&hit.node));
        }
    });
}
