//! Property tests: fusion streams keep the knowledge graph a rooted DAG,
//! JSON round-trips preserve structure, and search never panics.

use covidkg_kg::{
    seed_graph, ExtractedTree, FusionConfig, FusionEngine, FusionOutcome, KnowledgeGraph,
    ScriptedExpert,
};
use proptest::prelude::*;

fn tree_strategy() -> impl Strategy<Value = ExtractedTree> {
    (
        prop_oneof![
            Just("Vaccine".to_string()),
            Just("Side effect".to_string()),
            Just("Symptoms".to_string()),
            Just("Treatments".to_string()),
            "[A-Z][a-z]{2,8}",
        ],
        prop::collection::vec("[A-Z][a-z]{2,8}", 0..4),
        prop::collection::vec(Just("Children side-effects".to_string()), 0..2),
        "[a-z0-9]{4,8}",
    )
        .prop_map(|(root, leaves, layers, paper)| ExtractedTree {
            root,
            layers,
            leaves,
            paper_id: format!("paper-{paper}"),
        })
}

fn assert_rooted_dag(kg: &KnowledgeGraph) {
    for node in kg.nodes() {
        if node.id == 0 {
            assert!(node.parents.is_empty());
            continue;
        }
        assert!(!node.parents.is_empty(), "{} orphaned", node.label);
        let path = kg.path_to_root(node.id);
        assert_eq!(path[0], 0, "{} unreachable from root", node.label);
        assert!(path.len() <= kg.len(), "cycle suspected at {}", node.label);
        // Parent/child symmetry.
        for &p in &node.parents {
            assert!(
                kg.node(p).children.contains(&node.id),
                "asymmetric edge {} -> {}",
                p,
                node.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_streams_preserve_graph_invariants(
        trees in prop::collection::vec(tree_strategy(), 0..25),
    ) {
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let mut expert = ScriptedExpert::default();
        for tree in trees {
            let _ = engine.fuse(tree);
            engine.process_reviews(&mut expert);
        }
        let stats = engine.stats();
        let kg = engine.into_graph();
        assert_rooted_dag(&kg);
        // Accounting: every submission is exactly one of the outcomes.
        prop_assert_eq!(
            stats.reviewed, stats.queued,
            "all queued items must be reviewed"
        );
    }

    #[test]
    fn fusion_outcomes_are_exhaustive(tree in tree_strategy()) {
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let outcome = engine.fuse(tree.clone());
        let stats = engine.stats();
        match outcome {
            FusionOutcome::AutoFused { .. } => prop_assert_eq!(stats.auto_fused, 1),
            FusionOutcome::Queued { .. } => prop_assert_eq!(stats.queued, 1),
            FusionOutcome::Discarded => prop_assert_eq!(stats.discarded, 1),
        }
    }

    #[test]
    fn json_round_trip_preserves_fused_graphs(
        trees in prop::collection::vec(tree_strategy(), 0..15),
    ) {
        let cfg = FusionConfig { use_embeddings: false, ..FusionConfig::default() };
        let mut engine = FusionEngine::new(seed_graph(), None, cfg);
        let mut expert = ScriptedExpert::default();
        for tree in trees {
            let _ = engine.fuse(tree);
        }
        engine.process_reviews(&mut expert);
        let kg = engine.into_graph();
        let back = KnowledgeGraph::from_json(&kg.to_json()).expect("round trip");
        prop_assert_eq!(back.len(), kg.len());
        for (a, b) in kg.nodes().iter().zip(back.nodes()) {
            prop_assert_eq!(&a.label, &b.label);
            prop_assert_eq!(&a.parents, &b.parents);
            prop_assert_eq!(&a.provenance, &b.provenance);
        }
        assert_rooted_dag(&back);
    }

    #[test]
    fn kg_search_never_panics(query in "\\PC{0,24}") {
        let kg = seed_graph();
        let hits = kg.search(&query);
        for hit in hits {
            prop_assert!(hit.node < kg.len());
            prop_assert_eq!(hit.path.last(), Some(&hit.node));
        }
    }
}
