//! Seeded equivalence properties for the graph query engine and the
//! incremental profile materializer.
//!
//! Each case draws a random graph (hierarchy edges, multi-parent links,
//! overlapping provenance pools so co-occurrence hops have real work to
//! do) plus a random query plan, and demands the serving engine's
//! ranked paths be **byte-identical** — including `(score desc, path
//! lex)` tie-breaks — to the naive exhaustive-DFS oracle. A second
//! property drives a [`ProfileStore`] through random mutation sequences
//! (insert/update/delete papers) and demands every materialized
//! document match a from-scratch full rebuild byte for byte. Failures
//! shrink to a minimal op sequence via `covidkg_rand::prop::run_shrink`
//! and print a replay seed.

use std::collections::BTreeMap;

use covidkg_kg::materialize::ProfileStore;
use covidkg_kg::profile::Observation;
use covidkg_kg::query::{execute, execute_optimized, execute_oracle, QueryPlan};
use covidkg_kg::{KnowledgeGraph, NodeKind};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{prop, Rng};

/// Small label pool: collisions make `term:` starts multi-node and give
/// the inverted index duplicate postings to manage.
const LABELS: &[&str] = &["fever", "chills", "pfizer", "moderna", "dose", "trial", "fatigue"];
/// Small paper pool: overlap is what makes co-occurrence hops fire.
const PAPERS: &[&str] = &["p0", "p1", "p2", "p3", "p4"];

// ---------------------------------------------------------------------
// Random graphs.
// ---------------------------------------------------------------------

/// One graph-construction op; node/parent indices are taken modulo the
/// graph size at apply time so every op sequence is valid (and stays
/// valid under shrinking).
#[derive(Debug, Clone)]
enum GraphOp {
    /// `add_child(parent % len, label, kind)` + provenance papers.
    Child { parent: usize, label: usize, kind: u8, papers: Vec<usize> },
    /// `add_parent(node % len, parent % len)` (skipped when identical).
    Link { node: usize, parent: usize },
    /// `add_provenance(node % len, paper)`.
    Provenance { node: usize, paper: usize },
}

fn gen_graph_op(rng: &mut SmallRng) -> GraphOp {
    match rng.gen_range(0u8..10) {
        0..=5 => GraphOp::Child {
            parent: rng.gen_range(0usize..64),
            label: rng.gen_range(0..LABELS.len()),
            kind: rng.gen_range(0u8..2),
            papers: prop::vec_of(rng, 0, 2, |r| r.gen_range(0..PAPERS.len())),
        },
        6..=7 => GraphOp::Link {
            node: rng.gen_range(0usize..64),
            parent: rng.gen_range(0usize..64),
        },
        _ => GraphOp::Provenance {
            node: rng.gen_range(0usize..64),
            paper: rng.gen_range(0..PAPERS.len()),
        },
    }
}

/// Replay an op sequence into a graph. Deterministic: the same ops
/// always produce the same graph, which is what lets shrinking drop
/// ops and still get a meaningful smaller counterexample.
fn build_graph(ops: &[GraphOp]) -> KnowledgeGraph {
    let mut kg = KnowledgeGraph::new();
    let root = kg.add_root("covid");
    kg.add_provenance(root, PAPERS[0]);
    for op in ops {
        let len = kg.len();
        match op {
            GraphOp::Child { parent, label, kind, papers } => {
                let kind = if *kind == 0 { NodeKind::Category } else { NodeKind::Entity };
                let id = kg.add_child(parent % len, LABELS[*label], kind, 0.9);
                for p in papers {
                    kg.add_provenance(id, PAPERS[*p]);
                }
            }
            GraphOp::Link { node, parent } => {
                if node % len != parent % len {
                    kg.add_parent(node % len, parent % len);
                }
            }
            GraphOp::Provenance { node, paper } => {
                kg.add_provenance(node % len, PAPERS[*paper]);
            }
        }
    }
    kg
}

// ---------------------------------------------------------------------
// Property 1: engine ≡ oracle, byte for byte.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct QueryCase {
    ops: Vec<GraphOp>,
    start: String,
    steps: Vec<String>,
    fanout: usize,
    k: usize,
}

fn gen_step(rng: &mut SmallRng) -> String {
    let rel = ["child", "parent", "any", "co"][rng.gen_range(0usize..4)];
    match rng.gen_range(0u8..4) {
        0 => format!("{rel}:entity"),
        1 => format!("{rel}:category"),
        2 => format!("{rel}::{}", PAPERS[rng.gen_range(0..PAPERS.len())]),
        _ => rel.to_string(),
    }
}

fn gen_start(rng: &mut SmallRng) -> String {
    match rng.gen_range(0u8..4) {
        0 => format!("term:{}", LABELS[rng.gen_range(0..LABELS.len())]),
        1 => "kind:category".to_string(),
        2 => "kind:entity".to_string(),
        _ => format!("node:{}", rng.gen_range(0usize..24)),
    }
}

#[test]
fn engine_matches_oracle_on_random_graphs() {
    prop::run_shrink(
        64,
        |rng| QueryCase {
            ops: prop::vec_of(rng, 0, 40, gen_graph_op),
            start: gen_start(rng),
            steps: prop::vec_of(rng, 1, 4, gen_step),
            fanout: rng.gen_range(1usize..10),
            k: rng.gen_range(1usize..12),
        },
        |case| {
            // Shrink toward fewer graph ops first (the usual culprit),
            // then fewer hops, then tighter bounds.
            let mut out: Vec<QueryCase> = prop::shrink_vec(&case.ops, |_| Vec::new())
                .into_iter()
                .map(|ops| QueryCase { ops, ..case.clone() })
                .collect();
            if case.steps.len() > 1 {
                out.extend(
                    prop::shrink_vec(&case.steps, |_| Vec::new())
                        .into_iter()
                        .filter(|s| !s.is_empty())
                        .map(|steps| QueryCase { steps, ..case.clone() }),
                );
            }
            for fanout in prop::shrink_usize(case.fanout) {
                if fanout > 0 {
                    out.push(QueryCase { fanout, ..case.clone() });
                }
            }
            for k in prop::shrink_usize(case.k) {
                if k > 0 {
                    out.push(QueryCase { k, ..case.clone() });
                }
            }
            out
        },
        |case| {
            let kg = build_graph(&case.ops);
            let plan =
                QueryPlan::parse(&case.start, &case.steps.join(","), case.fanout, case.k)
                    .map_err(|e| format!("plan failed to parse: {e}"))?;
            let engine = execute(&kg, &plan).paths_json().to_json();
            let oracle = execute_oracle(&kg, &plan).paths_json().to_json();
            if engine != oracle {
                return Err(format!("engine != oracle\n  engine: {engine}\n  oracle: {oracle}"));
            }
            // The plan optimizer (co-index elision + selectivity-driven
            // anchor reversal) must be invisible in the ranked output.
            let optimized = execute_optimized(&kg, &plan).paths_json().to_json();
            if optimized != engine {
                return Err(format!(
                    "optimizer changed results\n  engine:    {engine}\n  optimized: {optimized}"
                ));
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Property 2: index-backed search ≡ linear scan on random graphs.
// ---------------------------------------------------------------------

#[test]
fn indexed_search_matches_scan_on_random_graphs() {
    prop::run_shrink(
        48,
        |rng| {
            let ops = prop::vec_of(rng, 0, 40, gen_graph_op);
            let query = LABELS[rng.gen_range(0..LABELS.len())].to_string();
            (ops, query)
        },
        |(ops, query)| {
            prop::shrink_vec(ops, |_| Vec::new())
                .into_iter()
                .map(|ops| (ops, query.clone()))
                .collect()
        },
        |(ops, query)| {
            let kg = build_graph(ops);
            let indexed = kg.search(query);
            let scanned = kg.search_scan(query);
            if indexed != scanned {
                return Err(format!(
                    "search({query:?}) diverged: indexed {indexed:?} vs scan {scanned:?}"
                ));
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Property 3: incremental materialization ≡ full rebuild.
// ---------------------------------------------------------------------

/// One collection-level mutation; the paper index is taken modulo a
/// small pool so updates and deletes actually hit existing papers.
#[derive(Debug, Clone)]
enum PaperOp {
    /// Insert-or-replace the paper's observation list.
    Upsert { paper: usize, obs: Vec<(usize, u8, usize, u32)> },
    /// Drop the paper entirely.
    Delete { paper: usize },
}

const VACCINES: &[&str] = &["pfizer", "moderna", "astrazeneca", "janssen"];
const EFFECTS: &[&str] = &["fever", "chills", "fatigue"];

fn gen_paper_op(rng: &mut SmallRng) -> PaperOp {
    if rng.gen_bool(0.75) {
        PaperOp::Upsert {
            paper: rng.gen_range(0usize..6),
            obs: prop::vec_of(rng, 0, 4, |r| {
                (
                    r.gen_range(0..VACCINES.len()),
                    r.gen_range(1u8..4),
                    r.gen_range(0..EFFECTS.len()),
                    r.gen_range(0u32..400),
                )
            }),
        }
    } else {
        PaperOp::Delete { paper: rng.gen_range(0usize..6) }
    }
}

fn observations(paper: &str, obs: &[(usize, u8, usize, u32)]) -> Vec<Observation> {
    obs.iter()
        .map(|&(v, dose, e, rate)| Observation {
            vaccine: VACCINES[v].to_string(),
            dose,
            effect: EFFECTS[e].to_string(),
            rate: rate as f32 / 10.0,
            paper_id: paper.to_string(),
        })
        .collect()
}

/// A store rebuilt from scratch over the model's current papers — the
/// oracle the incremental store must match after every mutation.
fn full_rebuild(model: &BTreeMap<String, Vec<Observation>>, epoch: u64) -> ProfileStore {
    let mut store = ProfileStore::new();
    store.rebuild_all(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect(), epoch);
    store
}

#[test]
fn incremental_materialization_matches_full_rebuild() {
    prop::run_shrink(
        48,
        |rng| prop::vec_of(rng, 1, 24, gen_paper_op),
        |ops| prop::shrink_vec(ops, |_| Vec::new()),
        |ops| {
            let mut model: BTreeMap<String, Vec<Observation>> = BTreeMap::new();
            let mut store = ProfileStore::new();
            store.rebuild_all(Vec::new(), 0);
            for (epoch0, op) in ops.iter().enumerate() {
                let epoch = epoch0 as u64 + 1;
                let paper_id = match op {
                    PaperOp::Upsert { paper, obs } => {
                        let id = format!("paper-{:02}", paper % 6);
                        model.insert(id.clone(), observations(&id, obs));
                        id
                    }
                    PaperOp::Delete { paper } => {
                        let id = format!("paper-{:02}", paper % 6);
                        model.remove(&id);
                        id
                    }
                };
                store.refresh(epoch, &[paper_id], |id| {
                    model.get(id).cloned().unwrap_or_default()
                });
                let oracle = full_rebuild(&model, epoch);
                // Profile structs must match, and so must every
                // epoch-stamped wire document, byte for byte.
                if store.profiles() != oracle.profiles() {
                    return Err(format!(
                        "profiles diverged after epoch {epoch}: {:?} vs {:?}",
                        store.profiles(),
                        oracle.profiles()
                    ));
                }
                for p in oracle.profiles() {
                    let got = store.document(&p.vaccine).map(|d| d.to_json());
                    let want = oracle.document(&p.vaccine).map(|d| d.to_json());
                    if got != want {
                        return Err(format!(
                            "document({}) diverged after epoch {epoch}:\n  {got:?}\n  {want:?}",
                            p.vaccine
                        ));
                    }
                }
                if store.stats().epoch != epoch {
                    return Err(format!(
                        "store epoch {} not stamped to {epoch}",
                        store.stats().epoch
                    ));
                }
            }
            Ok(())
        },
    );
}
