//! End-to-end tests over real TCP sockets: a `std::net::TcpStream`
//! client against a live [`HttpServer`], checking the acceptance
//! contract — byte-identical JSON to the in-process API, honest
//! backpressure statuses, keep-alive, reaping and graceful shutdown.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_net::{HttpClient, HttpServer, NetConfig};
use covidkg_search::SearchMode;
use covidkg_serve::{ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn build_system() -> CovidKg {
    CovidKg::build(CovidKgConfig {
        corpus_size: 24,
        max_training_rows: 300,
        ..CovidKgConfig::default()
    })
    .unwrap()
}

fn start_stack(serve_config: ServeConfig, net_config: NetConfig) -> (Arc<Server>, HttpServer) {
    let serve = Arc::new(Server::start(build_system(), serve_config));
    let http = HttpServer::start(Arc::clone(&serve), net_config).unwrap();
    (serve, http)
}

fn client(http: &HttpServer) -> HttpClient {
    HttpClient::connect(http.local_addr(), Duration::from_secs(10)).unwrap()
}

#[test]
fn wire_json_is_byte_identical_to_in_process_api() {
    let (serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let mut conn = client(&http);
    let cases = [
        ("all-fields", "vaccine", SearchMode::AllFields("vaccine".into()), 0),
        ("all-fields", "vaccine", SearchMode::AllFields("vaccine".into()), 1),
        ("tables", "mortality", SearchMode::Tables("mortality".into()), 0),
        (
            "scoped",
            "vaccine",
            SearchMode::TitleAbstractCaption {
                title: "vaccine".into(),
                abstract_q: "vaccine".into(),
                caption: "vaccine".into(),
            },
            0,
        ),
    ];
    for (engine, q, mode, page) in cases {
        let expected = serve.search_direct(&mode, page).to_json().to_json();
        let target = format!("/search/{engine}?q={q}&page={page}");
        let resp = conn.get(&target).unwrap();
        assert_eq!(resp.status, 200, "{target}: {}", resp.text());
        assert_eq!(
            resp.header("content-type"),
            Some("application/json"),
            "{target}"
        );
        assert_eq!(
            resp.body,
            expected.as_bytes(),
            "wire body for {target} differs from in-process JSON"
        );
    }
}

#[test]
fn cache_hits_are_flagged_but_bodies_stay_identical() {
    let (_serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let mut conn = client(&http);
    let target = "/search/all-fields?q=antibody&page=0";
    let first = conn.get(target).unwrap();
    let second = conn.get(target).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.header("x-generation"), second.header("x-generation"));
    assert_eq!(
        first.body, second.body,
        "cache hit must be byte-identical to the miss that filled it"
    );
}

#[test]
fn overloaded_queue_maps_to_503_with_retry_after() {
    // No workers: the first enqueued job sticks, the queue (capacity 1)
    // fills, and subsequent requests must be turned away as 503.
    let (_serve, http) = start_stack(
        ServeConfig {
            workers: 0,
            queue_capacity: 1,
            default_deadline: Duration::from_millis(50),
            ..ServeConfig::default()
        },
        NetConfig::default(),
    );
    let mut statuses = Vec::new();
    for i in 0..4 {
        // Fresh connection per request: a 504 on the first request
        // must not block the rest.
        let mut conn = client(&http);
        let resp = conn
            .get(&format!("/search/all-fields?q=q{i}&page=0"))
            .unwrap();
        if resp.status == 503 {
            assert_eq!(resp.header("retry-after"), Some("1"), "503 carries Retry-After");
        }
        statuses.push(resp.status);
    }
    assert!(
        statuses.contains(&503),
        "expected at least one Overloaded → 503, got {statuses:?}"
    );
    assert!(
        statuses.iter().all(|s| *s == 503 || *s == 504),
        "with no workers every request fails honestly: {statuses:?}"
    );
    let wire = http.wire_stats();
    assert!(wire.responses_by_status.contains_key(&503), "{wire:?}");
}

#[test]
fn kg_stats_and_metrics_endpoints_answer() {
    let (serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let mut conn = client(&http);

    let node = conn.get("/kg/node/0").unwrap();
    assert_eq!(node.status, 200, "{}", node.text());
    let parsed = covidkg_json::parse(&node.text()).unwrap();
    assert_eq!(parsed.get("id").and_then(|v| v.as_f64()), Some(0.0));
    assert!(parsed.get("label").is_some());
    assert!(parsed.get("children").is_some());
    let missing = conn.get("/kg/node/999999").unwrap();
    assert_eq!(missing.status, 404);
    let bad = conn.get("/kg/node/banana").unwrap();
    assert_eq!(bad.status, 400);

    let stats = conn.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let parsed = covidkg_json::parse(&stats.text()).unwrap();
    let docs = parsed.get("documents").and_then(|v| v.as_f64()).unwrap();
    let expected = serve.with_system(|s| s.stats().total_docs());
    assert_eq!(docs as usize, expected);

    conn.get("/search/all-fields?q=vaccine&page=0").unwrap();
    let metrics = conn.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("covidkg_net_connections_accepted"), "{text}");
    assert!(text.contains("covidkg_serve_cache_misses"), "{text}");
    assert!(text.contains("covidkg_net_responses{status=\"200\"}"), "{text}");

    let lost = conn.get("/no/such/path").unwrap();
    assert_eq!(lost.status, 404);
}

#[test]
fn malformed_and_oversized_requests_get_4xx_and_close() {
    let (_serve, http) = start_stack(ServeConfig::default(), NetConfig::default());

    let mut conn = client(&http);
    let resp = conn.send_raw(b"BOGUS LINE EXTRA WORDS HERE\r\n\r\n").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.wants_close(), "parse errors poison the connection");

    let mut conn = client(&http);
    let mut long = Vec::from(&b"GET /"[..]);
    long.resize(10 * 1024, b'a');
    long.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    let resp = conn.send_raw(&long).unwrap();
    assert_eq!(resp.status, 431);

    let wire = http.wire_stats();
    assert!(wire.parse_errors >= 2, "{wire:?}");
}

#[test]
fn keep_alive_pipelining_and_split_writes_work_over_tcp() {
    let (serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let expected = serve
        .search_direct(&SearchMode::AllFields("vaccine".into()), 0)
        .to_json()
        .to_json();
    let mut conn = client(&http);
    // Dribble one request a few bytes at a time; the server must
    // assemble it across reads and answer on the same connection.
    let raw = b"GET /search/all-fields?q=vaccine&page=0 HTTP/1.1\r\nHost: t\r\n\r\n";
    for chunk in raw.chunks(7) {
        use std::io::Write;
        conn.stream().write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let resp = conn.read_response().unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, expected.as_bytes());
    let resp2 = conn.get("/stats").unwrap();
    assert_eq!(resp2.status, 200, "keep-alive connection survives");
}

#[test]
fn slow_loris_trickle_gets_408_despite_constant_progress() {
    let (_serve, http) = start_stack(
        ServeConfig::default(),
        NetConfig {
            read_timeout: Duration::from_millis(300),
            ..NetConfig::default()
        },
    );
    let mut conn = client(&http);
    // A deliberately trickling client: one byte per 40ms keeps the
    // socket "active" on every tick, so an idle-based deadline would
    // never fire. The cumulative per-request deadline must cut it off
    // with an honest 408 regardless of the steady progress.
    let raw = b"GET /search/all-fields?q=loris&page=0 HTTP/1.1\r\nHost: t\r\n\r\n";
    let start = std::time::Instant::now();
    let mut timed_out = None;
    for byte in raw.iter() {
        use std::io::Write;
        if conn.stream().write_all(std::slice::from_ref(byte)).is_err() {
            break; // server already hung up on us — also acceptable
        }
        std::thread::sleep(Duration::from_millis(40));
        if start.elapsed() > Duration::from_secs(3) {
            break;
        }
        // Trickling far past the deadline: the 408 should have landed.
        if start.elapsed() > Duration::from_millis(600) {
            if let Ok(resp) = conn.read_response() {
                timed_out = Some(resp);
            }
            break;
        }
    }
    let resp = timed_out
        .or_else(|| conn.read_response().ok())
        .expect("server must answer the trickler before hanging up");
    assert_eq!(resp.status, 408, "trickling client gets an honest 408");
    assert!(resp.wants_close(), "a timed-out request poisons the connection");
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "the 408 must arrive promptly, not after the full request"
    );
}

#[test]
fn connection_cap_rejects_excess_with_503() {
    let (_serve, http) = start_stack(
        ServeConfig::default(),
        NetConfig {
            max_connections: 2,
            ..NetConfig::default()
        },
    );
    // Two pinned connections fill the cap.
    let mut a = client(&http);
    let mut b = client(&http);
    assert_eq!(a.get("/stats").unwrap().status, 200);
    assert_eq!(b.get("/stats").unwrap().status, 200);
    // The third is turned away at accept time.
    let mut c = client(&http);
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    assert!(resp.wants_close());
}

#[test]
fn idle_connections_are_reaped() {
    let (_serve, http) = start_stack(
        ServeConfig::default(),
        NetConfig {
            idle_timeout: Duration::from_millis(120),
            ..NetConfig::default()
        },
    );
    let mut conn = client(&http);
    assert_eq!(conn.get("/stats").unwrap().status, 200);
    // Go idle past the timeout; the server must close on us.
    std::thread::sleep(Duration::from_millis(400));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let wire = http.wire_stats();
        if wire.connections_reaped >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle connection never reaped: {wire:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (serve, mut http) = start_stack(ServeConfig::default(), NetConfig::default());
    let addr = http.local_addr();
    // Launch clients that keep issuing requests while we shut down.
    let worker = std::thread::spawn(move || {
        let mut ok = 0u32;
        let mut conn = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
        for i in 0..50 {
            match conn.get(&format!("/search/all-fields?q=shutdown{}&page=0", i % 5)) {
                Ok(resp) if resp.status == 200 => ok += 1,
                // Once shutdown starts, refusals/errors are legal; every
                // response actually received must still be well-formed.
                Ok(resp) => assert!(resp.status == 503, "unexpected {}", resp.status),
                Err(_) => break,
            }
        }
        ok
    });
    std::thread::sleep(Duration::from_millis(100));
    http.shutdown();
    let ok = worker.join().unwrap();
    assert!(ok > 0, "some requests completed before shutdown");
    // The serve layer is untouched by the front-end shutdown.
    assert!(serve.worker_count() > 0);
    let direct = serve.search_direct(&SearchMode::AllFields("shutdown0".into()), 0);
    assert_eq!(direct.page, 0);
    // Shutdown is idempotent.
    http.shutdown();
}
