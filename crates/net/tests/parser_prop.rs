//! Property tests for the HTTP/1.1 parser (ISSUE 4 satellite): random
//! well-formed requests must round-trip regardless of how the bytes
//! are split across reads, and random mutations of well-formed
//! requests must produce a clean 4xx `ParseError` — never a panic,
//! never an unbounded buffer, never a parse that disagrees with the
//! whole-buffer parse.

use covidkg_net::http::{Parser, Request, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use covidkg_rand::prop;
use covidkg_rand::{Rng, SmallRng};

/// A random well-formed request and its serialized bytes.
fn gen_request(rng: &mut SmallRng) -> (Vec<u8>, Request) {
    let method = (*prop::pick(rng, &["GET", "POST", "HEAD", "PUT"])).to_string();
    let path_chars: Vec<char> = "abcdefghij0123456789/-_.".chars().collect();
    let mut target = format!("/{}", prop::charset_string(rng, &path_chars, 0, 24));
    if rng.gen_bool(0.5) {
        let key = prop::lowercase_string(rng, 1, 5);
        let value_chars: Vec<char> = "abc123%20+".chars().collect();
        let value = prop::charset_string(rng, &value_chars, 0, 10);
        target.push_str(&format!("?{key}={value}"));
    }
    let mut headers: Vec<(String, String)> = (0..rng.gen_range(0..6))
        .map(|i| {
            let name = format!("X-{}{i}", prop::lowercase_string(rng, 1, 8));
            // Visible ASCII only; no leading/trailing whitespace (the
            // parser trims it, which would break exact round-tripping).
            let value_chars: Vec<char> =
                "abcdefghijklmnopqrstuvwxyz0123456789!#$()<>[]{}".chars().collect();
            let value = prop::charset_string(rng, &value_chars, 1, 16);
            (name, value)
        })
        .collect();
    let body: Vec<u8> = if rng.gen_bool(0.4) {
        (0..rng.gen_range(1..200usize)).map(|_| rng.gen_range(0u8..=255)).collect()
    } else {
        Vec::new()
    };
    if !body.is_empty() {
        headers.push(("Content-Length".to_string(), body.len().to_string()));
    }
    let mut raw = format!("{method} {target} HTTP/1.1\r\n").into_bytes();
    for (n, v) in &headers {
        raw.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    raw.extend_from_slice(b"\r\n");
    raw.extend_from_slice(&body);
    let expected = Request {
        method,
        target,
        http11: true,
        headers,
        body,
    };
    (raw, expected)
}

#[test]
fn well_formed_requests_round_trip() {
    prop::run(300, |rng| {
        let (raw, expected) = gen_request(rng);
        let got = Parser::new()
            .feed(&raw)
            .expect("well-formed request must parse")
            .expect("complete request must pop");
        assert_eq!(got, expected);
    });
}

#[test]
fn split_reads_never_change_the_outcome() {
    // Feed the same request in random fragments — including the fully
    // adversarial one-byte-at-a-time split — and require byte-for-byte
    // the same parse as the whole-buffer feed.
    prop::run(150, |rng| {
        let (raw, expected) = gen_request(rng);
        for split in ["random", "one-byte"] {
            let mut parser = Parser::new();
            let mut got = None;
            let mut pos = 0;
            while pos < raw.len() {
                let take = match split {
                    "one-byte" => 1,
                    _ => rng.gen_range(1..=(raw.len() - pos)),
                };
                let parsed = parser
                    .feed(&raw[pos..pos + take])
                    .expect("well-formed request must parse under any split");
                pos += take;
                if let Some(req) = parsed {
                    assert_eq!(pos, raw.len(), "must complete exactly on the last byte");
                    got = Some(req);
                }
            }
            assert_eq!(got.as_ref(), Some(&expected), "split={split}");
        }
    });
}

#[test]
fn pipelined_streams_pop_every_request_in_order() {
    prop::run(60, |rng| {
        let requests: Vec<(Vec<u8>, Request)> =
            (0..rng.gen_range(2..5)).map(|_| gen_request(rng)).collect();
        let stream: Vec<u8> = requests.iter().flat_map(|(raw, _)| raw.clone()).collect();
        let mut parser = Parser::new();
        let mut got = Vec::new();
        let mut pos = 0;
        // Random splits across request boundaries.
        while pos < stream.len() {
            let take = rng.gen_range(1..=(stream.len() - pos));
            if let Some(req) = parser.feed(&stream[pos..pos + take]).unwrap() {
                got.push(req);
            }
            pos += take;
        }
        // Drain any still-buffered complete requests.
        while let Ok(Some(req)) = parser.feed(&[]) {
            got.push(req);
        }
        let expected: Vec<&Request> = requests.iter().map(|(_, r)| r).collect();
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(expected) {
            assert_eq!(g, e);
        }
    });
}

/// Apply one random byte-level mutation. Returns `None` when the
/// mutation could legally leave the request well-formed or merely
/// incomplete, to keep the property sharp.
fn mutate(rng: &mut SmallRng, raw: &[u8]) -> Vec<u8> {
    let mut out = raw.to_vec();
    match rng.gen_range(0..4u32) {
        // Corrupt one byte of the head with a control character.
        0 => {
            let head_end = out
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .unwrap_or(out.len().saturating_sub(1));
            let i = rng.gen_range(0..head_end.max(1));
            out[i] = *prop::pick(rng, &[0u8, 1, 7, 0x7f, 0xff]);
        }
        // Break the version token.
        1 => {
            if let Some(p) = out.windows(8).position(|w| w == b"HTTP/1.1") {
                out[p + 5] = b'9';
            }
        }
        // Garble Content-Length (or inject a bogus one).
        2 => {
            let line = format!("Content-Length: {}\r\n", prop::lowercase_string(rng, 1, 4));
            let insert = out.windows(2).position(|w| w == b"\r\n").map(|p| p + 2).unwrap_or(0);
            out.splice(insert..insert, line.into_bytes());
        }
        // Declare an unsupported transfer-encoding (plain `chunked` is
        // decoded these days, so use a coding the parser 501s).
        _ => {
            let insert = out.windows(2).position(|w| w == b"\r\n").map(|p| p + 2).unwrap_or(0);
            out.splice(insert..insert, b"Transfer-Encoding: gzip\r\n".to_vec());
        }
    }
    out
}

#[test]
fn mutated_requests_fail_clean_with_4xx_never_panic() {
    // run_shrink: on failure, greedily shrink the mutated byte stream
    // to a minimal counterexample before reporting.
    prop::run_shrink(
        300,
        |rng| {
            let (raw, _) = gen_request(rng);
            mutate(rng, &raw)
        },
        |bytes| prop::shrink_vec(bytes, |_| Vec::new()),
        |bytes| {
            let outcome = std::panic::catch_unwind(|| {
                let mut parser = Parser::new();
                parser.feed(bytes)
            });
            match outcome {
                Err(_) => Err("parser panicked".to_string()),
                Ok(Err(e)) => {
                    let status = e.status();
                    // 4xx for malformed input; 501 is the one deliberate
                    // non-4xx (well-formed Transfer-Encoding we don't
                    // implement).
                    if (400..500).contains(&status) || status == 501 {
                        Ok(())
                    } else {
                        Err(format!("unexpected parse error status {status} for {e:?}"))
                    }
                }
                // Mutations can leave the request well-formed (e.g. the
                // corrupted byte landed in a body) or merely incomplete
                // (injected Content-Length larger than the remaining
                // bytes) — both are legal non-failures.
                Ok(Ok(_)) => Ok(()),
            }
        },
    );
}

#[test]
fn random_garbage_never_panics_and_never_buffers_unbounded() {
    prop::run(400, |rng| {
        let garbage: Vec<u8> =
            (0..rng.gen_range(0..2000usize)).map(|_| rng.gen_range(0u8..=255)).collect();
        let mut parser = Parser::new();
        let mut pos = 0;
        while pos < garbage.len() {
            let take = rng.gen_range(1..=(garbage.len() - pos).min(64));
            match parser.feed(&garbage[pos..pos + take]) {
                Ok(_) => {}
                Err(e) => {
                    assert!(
                        (400..500).contains(&e.status()) || e.status() == 501,
                        "{e:?}"
                    );
                    return; // poisoned: connection would close here
                }
            }
            pos += take;
        }
    });
}

#[test]
fn header_lines_straddling_the_budget_boundary_431_under_any_split() {
    // Header blocks whose size lands exactly on, or within a couple of
    // bytes either side of, MAX_HEADER_BYTES — the offsets that used to
    // underflow the parser's budget arithmetic. Random chunking must
    // never panic, and anything past the cap must be a clean 431.
    prop::run(60, |rng| {
        let over = rng.gen_range(0..5usize); // block size = MAX - 2 + over
        let value_len = MAX_HEADER_BYTES + over - 9;
        let mut raw = Vec::from(&b"GET / HTTP/1.1\r\nX-P: "[..]);
        raw.resize(raw.len() + value_len, b'a');
        raw.extend_from_slice(b"\r\n\r\n");
        let mut parser = Parser::new();
        let mut pos = 0;
        let mut outcome = Ok(None);
        while pos < raw.len() {
            let take = rng.gen_range(1..=(raw.len() - pos).min(1024));
            outcome = parser.feed(&raw[pos..pos + take]);
            if outcome.is_err() {
                break;
            }
            pos += take;
        }
        if over == 0 {
            // Lines + terminator == MAX_HEADER_BYTES: exactly fits.
            assert!(matches!(outcome, Ok(Some(_))), "exact fit must parse: {outcome:?}");
        } else {
            assert_eq!(outcome.unwrap_err().status(), 431, "over={over}");
        }
    });
}

#[test]
fn declared_body_sizes_above_the_cap_always_413() {
    prop::run(50, |rng| {
        let len = MAX_BODY_BYTES + rng.gen_range(1..1_000_000usize);
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {len}\r\n\r\n");
        let err = Parser::new().feed(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
    });
}
