//! Reactor-specific end-to-end tests. The protocol regression suite in
//! `wire_e2e.rs` already runs against the reactor (it is the default
//! [`ConnectionModel`]); this file covers what only the event-driven
//! core makes possible — a four-digit standing connection population on
//! one thread — plus the event-loop observability series and a parity
//! pass over the legacy threaded model so it stays covered too.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_net::{ConnectionModel, HttpClient, HttpServer, NetConfig};
use covidkg_search::SearchMode;
use covidkg_serve::{ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_system() -> CovidKg {
    CovidKg::build(CovidKgConfig {
        corpus_size: 24,
        max_training_rows: 300,
        ..CovidKgConfig::default()
    })
    .unwrap()
}

fn start_stack(serve_config: ServeConfig, net_config: NetConfig) -> (Arc<Server>, HttpServer) {
    let serve = Arc::new(Server::start(build_system(), serve_config));
    let http = HttpServer::start(Arc::clone(&serve), net_config).unwrap();
    (serve, http)
}

fn client(http: &HttpServer) -> HttpClient {
    HttpClient::connect(http.local_addr(), Duration::from_secs(10)).unwrap()
}

/// The headline capability: ~1000 idle keep-alive sockets held open at
/// once — 15x the seed's 64-thread ceiling — while fresh requests on
/// new connections still complete promptly. Under thread-per-connection
/// this population would cost a thousand parked OS threads (or be
/// refused outright); under the reactor it is a thousand fds and a
/// slab.
#[test]
fn a_thousand_idle_connections_do_not_starve_fresh_requests() {
    const HELD: usize = 1000;
    let (_serve, http) = start_stack(
        ServeConfig::default(),
        NetConfig {
            // Idle long enough that the held population survives the
            // whole test without the reaper thinning it out.
            idle_timeout: Duration::from_secs(120),
            ..NetConfig::default()
        },
    );
    let addr = http.local_addr();
    let mut held = Vec::with_capacity(HELD);
    for i in 0..HELD {
        match HttpClient::connect(addr, Duration::from_secs(10)) {
            Ok(conn) => held.push(conn),
            Err(e) => panic!("connection {i} of {HELD} refused: {e}"),
        }
    }
    // Give the reactor a beat to finish registering the tail.
    std::thread::sleep(Duration::from_millis(50));
    let wire = http.wire_stats();
    assert!(
        wire.connections_active >= HELD as u64,
        "all held connections stay open: {wire:?}"
    );

    // Fresh requests — some on brand-new connections, some on held
    // ones — must still be served well inside the read deadline.
    let budget = Duration::from_secs(2);
    for i in 0..10 {
        let mut fresh = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
        let t0 = Instant::now();
        let resp = fresh
            .get(&format!("/search/all-fields?q=crowd{i}&page=0"))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(
            t0.elapsed() < budget,
            "request {i} took {:?} with {HELD} idle connections held",
            t0.elapsed()
        );
    }
    let sample = held.len() / 2;
    let resp = held[sample].get("/stats").unwrap();
    assert_eq!(resp.status, 200, "held connections are still serviceable");

    // The open-connections gauge sees the whole population.
    let mut probe = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
    let metrics = probe.get("/metrics").unwrap().text();
    let open = metrics
        .lines()
        .find_map(|l| l.strip_prefix("covidkg_net_open_connections "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .expect("open-connections gauge present");
    assert!(open >= HELD as u64, "gauge {open} < {HELD}\n{metrics}");
    drop(held);
}

/// The `/metrics` page carries the event-loop series: wakeups, the
/// ready-events histogram, dispatch queue depth and the open gauge.
#[test]
fn metrics_expose_epoll_and_dispatch_series() {
    let (_serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let mut conn = client(&http);
    for i in 0..5 {
        conn.get(&format!("/search/all-fields?q=loop{i}&page=0"))
            .unwrap();
    }
    let text = conn.get("/metrics").unwrap().text();
    let series_value = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("{name} missing from\n{text}"))
    };
    assert!(series_value("covidkg_net_epoll_wakeups") > 0);
    // Every request above produced at least one readiness event.
    assert!(series_value("covidkg_net_ready_events_per_wakeup_count") > 0);
    assert!(series_value("covidkg_net_ready_events_per_wakeup_sum") > 0);
    assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"1\"}"), "{text}");
    assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"+Inf\"}"), "{text}");
    assert_eq!(series_value("covidkg_net_open_connections"), 1);
    // Quiet wire: nothing should be sitting in the dispatch queue.
    assert_eq!(series_value("covidkg_net_dispatch_queue_depth"), 0);
    // Histogram buckets are cumulative: +Inf equals the count.
    let inf = text
        .lines()
        .find_map(|l| l.strip_prefix("covidkg_net_ready_events_per_wakeup_bucket{le=\"+Inf\"} "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap();
    assert_eq!(inf, series_value("covidkg_net_ready_events_per_wakeup_count"));
}

/// A burst of pipelined requests written in one packet comes back as
/// complete responses in request order, even though each request is
/// dispatched to the worker pool individually.
#[test]
fn pipelined_burst_returns_ordered_responses() {
    let (serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    let mut conn = client(&http);
    let queries = ["alpha", "beta", "gamma", "delta"];
    let mut burst = Vec::new();
    for q in queries {
        burst.extend_from_slice(
            format!("GET /search/all-fields?q={q}&page=0 HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes(),
        );
    }
    {
        use std::io::Write;
        conn.stream().write_all(&burst).unwrap();
    }
    for q in queries {
        let expected = serve
            .search_direct(&SearchMode::AllFields(q.into()), 0)
            .to_json()
            .to_json();
        let resp = conn.read_response().unwrap();
        assert_eq!(resp.status, 200, "{q}: {}", resp.text());
        assert_eq!(
            resp.body,
            expected.as_bytes(),
            "response for {q} out of order or corrupted"
        );
    }
}

/// Rapid connect → one request → disconnect churn must not leak slab
/// slots or fds: the active gauge returns to zero.
#[test]
fn connection_churn_returns_every_slot() {
    let (_serve, http) = start_stack(ServeConfig::default(), NetConfig::default());
    for i in 0..200 {
        let mut conn = client(&http);
        let resp = conn.get("/stats").unwrap();
        assert_eq!(resp.status, 200, "churn iteration {i}");
        drop(conn);
    }
    // Closes race the gauge: wait for the reactor to observe them all.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let wire = http.wire_stats();
        if wire.connections_active == 0 {
            assert!(wire.connections_accepted >= 200, "{wire:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connection slots leaked: {wire:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The legacy thread-per-connection model stays selectable and keeps
/// its protocol semantics (it is the A/B baseline in net-bench): cap
/// enforcement, keep-alive, and graceful drain.
#[test]
fn threaded_model_keeps_protocol_parity() {
    let (_serve, mut http) = start_stack(
        ServeConfig::default(),
        NetConfig {
            model: ConnectionModel::Threaded,
            max_connections: 2,
            ..NetConfig::default()
        },
    );
    let mut a = client(&http);
    let mut b = client(&http);
    assert_eq!(a.get("/stats").unwrap().status, 200);
    assert_eq!(b.get("/stats").unwrap().status, 200);
    // Over the cap: honest 503 at accept time.
    let mut c = client(&http);
    let resp = c.read_response().unwrap();
    assert_eq!(resp.status, 503);
    assert_eq!(resp.header("retry-after"), Some("1"));
    // Keep-alive still works on the survivors.
    assert_eq!(a.get("/stats").unwrap().status, 200);
    // No epoll under the threaded model: the wakeup counter stays 0.
    assert_eq!(http.wire_stats().epoll_wakeups, 0);
    http.shutdown();
    http.shutdown(); // idempotent
}
