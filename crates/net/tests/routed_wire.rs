//! Replication-aware wire serving: a primary system behind a
//! [`ReplListener`], a full [`ReplicaNode`], and an [`HttpServer`]
//! started with a [`ReadContext`] — reads route lag-aware over HTTP,
//! read-your-writes rides the `X-Min-Seq` header (or `min_seq` query
//! parameter), and `/metrics` carries the replication series.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_net::{HttpClient, HttpServer, NetConfig, ReadContext};
use covidkg_repl::{
    ReadRouter, ReplConfig, ReplListener, ReplicaNode, ReplicaNodeConfig, ReplicaTarget,
};
use covidkg_search::SearchMode;
use covidkg_serve::{ServeConfig, Server};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("covidkg-net-routed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_string_lossy().into_owned()
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn routed_reads_replica_headers_and_metrics_over_the_wire() {
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 24,
        max_training_rows: 300,
        data_dir: Some(scratch("primary")),
        ..CovidKgConfig::default()
    })
    .unwrap();
    let primary_server = Arc::new(Server::start(system, ServeConfig::default()));
    let sources = primary_server.with_system(|s| {
        let db = s.database();
        db.collection_names()
            .into_iter()
            .map(|name| {
                let coll = db.collection(&name).unwrap();
                (name, coll)
            })
            .collect::<Vec<_>>()
    });
    let listener = ReplListener::start(sources.clone(), ReplConfig::default()).unwrap();

    let node = ReplicaNode::start(ReplicaNodeConfig::new(
        listener.local_addr(),
        "replica-w",
        scratch("replica"),
    ))
    .unwrap();

    let pubs = sources
        .iter()
        .find(|(n, _)| n == "publications")
        .map(|(_, c)| Arc::clone(c))
        .unwrap();
    let mark = pubs.repl_watermark();
    assert!(mark > 0, "primary must have a publications watermark");
    assert!(
        wait_until(Duration::from_secs(10), || node.applied() >= mark),
        "replica never caught up before wire serving"
    );

    let watermark_pubs = Arc::clone(&pubs);
    let router = Arc::new(ReadRouter::new(
        Some(Arc::clone(&primary_server)),
        vec![ReplicaTarget::tracking(
            "replica-w",
            node.server(),
            &node.publications_state(),
        )],
        Arc::new(move || watermark_pubs.repl_watermark()),
        8,
    ));
    let http = HttpServer::start_routed(
        Arc::clone(&primary_server),
        Some(ReadContext::new(Arc::clone(&router), Some(listener.metrics()))),
        NetConfig::default(),
    )
    .unwrap();
    let mut client = HttpClient::connect(http.local_addr(), Duration::from_secs(5)).unwrap();

    // Read-your-writes at the current watermark: 200, routing headers
    // present, body byte-identical to the in-process page.
    let expected = primary_server
        .search(&SearchMode::AllFields("covid".into()), 0)
        .unwrap()
        .page
        .to_json()
        .to_json();
    let raw = format!(
        "GET /search/all-fields?q=covid HTTP/1.1\r\nHost: covidkg\r\nX-Min-Seq: {mark}\r\n\r\n"
    );
    let resp = client.send_raw(raw.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.text(), expected, "wire body must be byte-identical");
    let served_by = resp.header("X-Served-By").expect("routed header").to_string();
    assert!(served_by == "replica-w" || served_by == "primary");
    let applied: u64 = resp.header("X-Applied-Seq").unwrap().parse().unwrap();
    assert!(applied >= mark);
    resp.header("X-Replica-Lag").expect("lag header");
    // Routed 200s set the ambient read-your-writes session cookie.
    let cookie = resp.header("Set-Cookie").expect("session cookie").to_string();
    assert!(
        cookie.starts_with(&format!("covidkg-session={applied}.")),
        "cookie carries the applied sequence: {cookie}"
    );
    assert!(cookie.ends_with("; Path=/"), "{cookie}");

    // Replaying that cookie is an ambient min-seq floor: the read must
    // again be served at (or past) the sequence it encodes.
    let cookie_value = cookie.trim_end_matches("; Path=/");
    let with_cookie = format!(
        "GET /search/all-fields?q=covid HTTP/1.1\r\nHost: covidkg\r\nCookie: {cookie_value}\r\n\r\n"
    );
    let replay = client.send_raw(with_cookie.as_bytes()).unwrap();
    assert_eq!(replay.status, 200, "{}", replay.text());
    let replay_applied: u64 = replay.header("X-Applied-Seq").unwrap().parse().unwrap();
    assert!(replay_applied >= applied, "cookie floor honored");

    // The caught-up replica takes reads once its gauge mirror ticks.
    assert!(
        wait_until(Duration::from_secs(5), || {
            let r = client.send_raw(raw.as_bytes()).unwrap();
            r.status == 200 && r.header("X-Served-By") == Some("replica-w")
        }),
        "caught-up replica never served a routed read"
    );

    // `/metrics` exposes the replication series.
    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains(&format!("covidkg_repl_watermark {mark}\n")), "{text}");
    assert!(text.contains("covidkg_repl_replicas 1\n"), "{text}");
    assert!(
        text.contains("covidkg_repl_replica_applied{replica=\"replica-w\"}"),
        "{text}"
    );
    assert!(text.contains("covidkg_repl_bytes_shipped "), "{text}");
    assert!(text.contains("covidkg_repl_epoch "), "{text}");
    assert!(text.contains("covidkg_repl_batches_shipped "), "{text}");
    assert!(text.contains("covidkg_repl_bytes_saved "), "{text}");
    assert!(text.contains("covidkg_repl_fenced_sessions 0\n"), "{text}");

    drop(http);
    drop(node);
}

#[test]
fn unsatisfiable_min_seq_on_a_pure_replica_pool_is_503() {
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 12,
        max_training_rows: 200,
        data_dir: Some(scratch("pure-pool")),
        ..CovidKgConfig::default()
    })
    .unwrap();
    let server = Arc::new(Server::start(system, ServeConfig::default()));

    // A pool with no primary fallback and one permanently stale target:
    // read-your-writes past its applied sequence must fail honestly.
    let router = Arc::new(ReadRouter::new(
        None,
        vec![ReplicaTarget {
            name: "stale".into(),
            server: Arc::clone(&server),
            applied: Arc::new(AtomicU64::new(3)),
            health: Arc::new(std::sync::atomic::AtomicU8::new(0)),
        }],
        Arc::new(|| 3),
        8,
    ));
    let http = HttpServer::start_routed(
        Arc::clone(&server),
        Some(ReadContext {
            router,
            metrics: None,
            epoch: None,
            ryw_deadline: Duration::from_millis(100),
        }),
        NetConfig::default(),
    )
    .unwrap();
    let mut client = HttpClient::connect(http.local_addr(), Duration::from_secs(5)).unwrap();

    // Satisfiable token (query-parameter form): the stale-but-adequate
    // replica serves it.
    let ok = client.get("/search/all-fields?q=covid&min_seq=3").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    assert_eq!(ok.header("X-Served-By"), Some("stale"));

    // Unsatisfiable token: 503 with Retry-After and the best applied.
    let miss = client.get("/search/all-fields?q=covid&min_seq=999").unwrap();
    assert_eq!(miss.status, 503, "{}", miss.text());
    assert_eq!(miss.header("Retry-After"), Some("1"));
    assert_eq!(miss.header("X-Applied-Seq"), Some("3"));

    // Malformed token: 400, not a routed read.
    let bad = client.send_raw(
        b"GET /search/all-fields?q=covid HTTP/1.1\r\nHost: covidkg\r\nX-Min-Seq: nope\r\n\r\n",
    );
    assert_eq!(bad.unwrap().status, 400);

    drop(http);
}
