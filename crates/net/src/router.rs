//! Request routing: maps parsed HTTP requests onto the serving stack.
//!
//! Byte-correctness contract: the body of a 200 search response is
//! exactly `SearchPage::to_json().to_json()` — the same canonical JSON
//! an in-process caller gets — for cached, fresh and stale pages alike.
//! Cache/degradation metadata rides in response *headers* (`X-Cache`,
//! `X-Generation`) so the body never varies with cache state.

use crate::http::{Request, Response};
use crate::metrics::{render_metrics, AnnExposition, ReplExposition, WireStats};
use covidkg_json::{obj, Value};
use covidkg_repl::{ReadRouter, ReplMetrics, RouteError};
use covidkg_search::{DenseMode, SearchMode};
use covidkg_serve::{ServeError, Server};
use std::sync::Arc;
use std::time::Duration;

/// Replication-aware read context for a front-end that routes search
/// traffic across a replica pool instead of a single local server.
pub struct ReadContext {
    /// The lag-aware router (replicas + optional primary fallback).
    pub router: Arc<ReadRouter>,
    /// Primary-side shipping counters for `/metrics`, when this node
    /// is the primary (`None` on a replica-only front-end).
    pub metrics: Option<Arc<ReplMetrics>>,
    /// How long a read-your-writes request (`X-Min-Seq`) may wait for a
    /// caught-up target before 503ing.
    pub ryw_deadline: Duration,
}

impl ReadContext {
    /// Context with the default 2-second read-your-writes wait.
    pub fn new(router: Arc<ReadRouter>, metrics: Option<Arc<ReplMetrics>>) -> ReadContext {
        ReadContext {
            router,
            metrics,
            ryw_deadline: Duration::from_secs(2),
        }
    }

    fn exposition(&self) -> ReplExposition {
        ReplExposition {
            watermark: self.router.watermark(),
            replicas: self.router.targets(),
            shipping: self.metrics.as_ref().map(|m| {
                let s = m.snapshot();
                (s.bytes_shipped, s.frames_shipped, s.snapshot_bootstraps, s.reconnects)
            }),
        }
    }
}

/// Resolve one request to a response. Never panics; unknown paths 404,
/// wrong methods 405, bad parameters 400. With a [`ReadContext`],
/// `/search/*` is routed lag-aware across the replica pool and
/// `/metrics` carries the replication series.
pub fn handle(server: &Server, wire: &WireStats, repl: Option<&ReadContext>, req: &Request) -> Response {
    if req.method != "GET" {
        return error_response(405, "only GET is supported");
    }
    let path = req.path();
    if let Some(engine) = path.strip_prefix("/search/") {
        return search(server, engine, repl, req);
    }
    if let Some(id) = path.strip_prefix("/kg/node/") {
        return kg_node(server, id);
    }
    match path {
        "/stats" => stats(server),
        "/metrics" => {
            let ann = server.with_system(|system| {
                let ann = system.ann();
                let s = ann.stats();
                AnnExposition {
                    nodes: ann.len() as u64,
                    tombstones: ann.tombstones() as u64,
                    max_level: ann.max_level() as u64,
                    searches: s.searches,
                    distance_evals: s.distance_evals,
                    hops: s.hops,
                    candidates: s.candidates,
                    inserts: s.inserts,
                }
            });
            Response::text(
                200,
                render_metrics(
                    wire,
                    &server.stats(),
                    repl.map(|r| r.exposition()).as_ref(),
                    Some(&ann),
                ),
            )
        }
        "/" => Response::json(
            200,
            obj! {
                "service" => "covidkg",
                "endpoints" => Value::Array(vec![
                    Value::from("/search/{all-fields|tables|scoped}?q=&page="),
                    Value::from("/search/{semantic|hybrid}?q=&page="),
                    Value::from("/kg/node/{id}"),
                    Value::from("/stats"),
                    Value::from("/metrics"),
                ]),
            }
            .to_json(),
        ),
        _ => error_response(404, "no such resource"),
    }
}

/// `GET /search/{engine}?q=&page=` — `scoped` also accepts the
/// per-field `title`/`abstract`/`caption` parameters, defaulting each
/// to `q` when absent. `semantic` and `hybrid` engage the dense
/// retrieval tier and always execute locally. Under a [`ReadContext`], `X-Min-Seq` (header) or
/// `min_seq` (query parameter) demands read-your-writes: the response
/// comes from a target that has applied at least that sequence, or 503.
fn search(server: &Server, engine: &str, repl: Option<&ReadContext>, req: &Request) -> Response {
    let q = req.query_param("q").unwrap_or_default();
    let page = match req.query_param("page").as_deref() {
        None => 0,
        Some(p) => match p.parse::<usize>() {
            Ok(p) => p,
            Err(_) => return error_response(400, "page must be a non-negative integer"),
        },
    };
    // Dense engines are served by the local HNSW tier: the replica
    // router only speaks the lexical modes, and the ANN search is
    // sub-millisecond, so there is nothing to route.
    let dense = match engine {
        "semantic" => Some(DenseMode::Semantic(q.clone())),
        "hybrid" => Some(DenseMode::Hybrid(q.clone())),
        _ => None,
    };
    if let Some(mode) = dense {
        return match server.search_dense(&mode, page) {
            Ok(resp) => page_response(&resp),
            Err(e) => serve_error_response(e),
        };
    }
    let mode = match engine {
        "all-fields" => SearchMode::AllFields(q),
        "tables" => SearchMode::Tables(q),
        "scoped" => SearchMode::TitleAbstractCaption {
            title: req.query_param("title").unwrap_or_else(|| q.clone()),
            abstract_q: req.query_param("abstract").unwrap_or_else(|| q.clone()),
            caption: req.query_param("caption").unwrap_or_else(|| q.clone()),
        },
        other => {
            return error_response(
                404,
                &format!(
                    "unknown engine {other:?}: expected all-fields, tables, scoped, semantic or hybrid"
                ),
            )
        }
    };
    let Some(ctx) = repl else {
        return match server.search(&mode, page) {
            Ok(resp) => page_response(&resp),
            Err(e) => serve_error_response(e),
        };
    };
    // Routed read: the sequence token rides the `X-Min-Seq` header (or
    // the `min_seq` query parameter for header-less clients).
    let min_seq_raw = req
        .header("x-min-seq")
        .map(|v| v.to_string())
        .or_else(|| req.query_param("min_seq"));
    let min_seq = match min_seq_raw.as_deref() {
        None => 0,
        Some(v) => match v.trim().parse::<u64>() {
            Ok(s) => s,
            Err(_) => return error_response(400, "X-Min-Seq must be a non-negative integer"),
        },
    };
    match ctx.router.search(&mode, page, min_seq, ctx.ryw_deadline) {
        Ok((resp, info)) => page_response(&resp)
            .with_header("X-Served-By", info.replica)
            .with_header("X-Replica-Lag", info.lag.to_string())
            .with_header("X-Applied-Seq", info.applied.to_string()),
        Err(RouteError::NotCaughtUp { wanted, best }) => error_response(
            503,
            &format!("no replica caught up to sequence {wanted} (best applied: {best})"),
        )
        .with_header("Retry-After", "1")
        .with_header("X-Applied-Seq", best.to_string()),
        Err(RouteError::Serve(e)) => serve_error_response(e),
    }
}

/// The canonical 200 search response: byte-identical body, cache
/// metadata in headers.
fn page_response(resp: &covidkg_serve::ServeResponse) -> Response {
    Response::json(200, resp.page.to_json().to_json())
        .with_header(
            "X-Cache",
            if resp.stale {
                "stale"
            } else if resp.cached {
                "hit"
            } else {
                "miss"
            },
        )
        .with_header("X-Generation", resp.generation.to_string())
}

/// Map the scheduler's typed backpressure errors onto wire statuses.
pub fn serve_error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded => error_response(503, "server overloaded: request queue full")
            .with_header("Retry-After", "1"),
        ServeError::DeadlineExceeded => error_response(504, "search missed its deadline"),
        ServeError::Degraded => {
            error_response(503, "engine degraded and no cached page available")
                .with_header("Retry-After", "1")
        }
        ServeError::Closed => error_response(503, "server is shutting down"),
    }
}

/// `GET /kg/node/{id}` — one knowledge-graph node with its topology.
fn kg_node(server: &Server, id: &str) -> Response {
    let Ok(id) = id.parse::<usize>() else {
        return error_response(400, "node id must be a non-negative integer");
    };
    server.with_system(|system| {
        let kg = system.kg();
        if id >= kg.len() {
            return error_response(404, &format!("no node {id} (graph has {})", kg.len()));
        }
        let node = kg.node(id);
        let ids =
            |v: &[usize]| Value::Array(v.iter().map(|&n| Value::from(n)).collect());
        Response::json(
            200,
            obj! {
                "id" => node.id,
                "label" => node.label.as_str(),
                "kind" => node.kind.as_str(),
                "parents" => ids(&node.parents),
                "children" => ids(&node.children),
                "provenance" => Value::Array(
                    node.provenance.iter().map(|p| Value::from(p.as_str())).collect()
                ),
                "confidence" => node.confidence,
            }
            .to_json(),
        )
    })
}

/// `GET /stats` — storage + KG + serving summary as JSON.
fn stats(server: &Server) -> Response {
    let (db, kg_nodes) = server.with_system(|system| (system.stats(), system.kg().len()));
    let serve = server.stats();
    let collections = Value::Array(
        db.collections
            .iter()
            .map(|c| {
                obj! {
                    "name" => c.name.as_str(),
                    "docs" => c.docs,
                    "bytes" => c.bytes,
                    "indexed_terms" => c.indexed_terms,
                    "shards" => c.shards.len(),
                }
            })
            .collect(),
    );
    Response::json(
        200,
        obj! {
            "generation" => server.generation() as i64,
            "documents" => db.total_docs(),
            "dataset_bytes" => db.total_bytes(),
            "collections" => collections,
            "kg_nodes" => kg_nodes,
            "serve" => obj! {
                "requests" => serve.total_requests() as i64,
                "completed" => serve.completed as i64,
                "cache_hits" => serve.cache_hits as i64,
                "cache_misses" => serve.cache_misses as i64,
                "overloaded" => serve.overloaded as i64,
                "degraded" => serve.degraded as i64,
            },
        }
        .to_json(),
    )
}

/// A JSON error body `{"error": ...}` with the given status.
pub fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, obj! { "error" => message }.to_json())
}
