//! Request routing: maps parsed HTTP requests onto the serving stack.
//!
//! Byte-correctness contract: the body of a 200 search response is
//! exactly `SearchPage::to_json().to_json()` — the same canonical JSON
//! an in-process caller gets — for cached, fresh and stale pages alike;
//! likewise a 200 `/kg/*` body is the server's pre-serialized
//! [`covidkg_serve::KgResponse`] bytes, identical to in-process
//! serialization. Cache/degradation metadata rides in response
//! *headers* (`X-Cache`, `X-Generation`) so the body never varies with
//! cache state.

use crate::http::{percent_decode, Request, Response};
use crate::metrics::{
    render_metrics, AnnExposition, KgExposition, ReplExposition, TrustExposition, WireStats,
};
use covidkg_json::{obj, Value};
use covidkg_repl::{Epoch, ReadRouter, ReplMetrics, RouteError};
use covidkg_search::{DenseMode, SearchMode, SearchPage};
use covidkg_core::QueryPlan;
use covidkg_serve::{KgResponse, ServeError, Server};
use std::sync::Arc;
use std::time::Duration;

/// Replication-aware read context for a front-end that routes search
/// traffic across a replica pool instead of a single local server.
pub struct ReadContext {
    /// The lag-aware router (replicas + optional primary fallback).
    pub router: Arc<ReadRouter>,
    /// Primary-side shipping counters for `/metrics`, when this node
    /// is the primary (`None` on a replica-only front-end).
    pub metrics: Option<Arc<ReplMetrics>>,
    /// This node's fencing epoch, stamped into session cookies and the
    /// `/metrics` page (`None` when the node runs without failover).
    pub epoch: Option<Epoch>,
    /// How long a read-your-writes request (`X-Min-Seq`) may wait for a
    /// caught-up target before 503ing.
    pub ryw_deadline: Duration,
}

impl ReadContext {
    /// Context with the default 2-second read-your-writes wait.
    pub fn new(router: Arc<ReadRouter>, metrics: Option<Arc<ReplMetrics>>) -> ReadContext {
        ReadContext {
            router,
            metrics,
            epoch: None,
            ryw_deadline: Duration::from_secs(2),
        }
    }

    /// Attach the node's fencing-epoch handle (enables the epoch half
    /// of session cookies and the `covidkg_repl_epoch` series).
    pub fn with_epoch(mut self, epoch: Epoch) -> ReadContext {
        self.epoch = Some(epoch);
        self
    }

    /// Current fencing epoch: the explicit handle when attached, else
    /// the highest epoch the shipping metrics have witnessed.
    fn current_epoch(&self) -> u64 {
        self.epoch
            .as_ref()
            .map(|e| e.get())
            .or_else(|| self.metrics.as_ref().map(|m| m.snapshot().epoch))
            .unwrap_or(0)
    }

    fn exposition(&self) -> ReplExposition {
        ReplExposition {
            watermark: self.router.watermark(),
            epoch: self.current_epoch(),
            replicas: self.router.targets(),
            shipping: self.metrics.as_ref().map(|m| m.snapshot()),
        }
    }
}

/// The ambient read-your-writes cookie. A routed 200 sets
/// `covidkg-session=<applied>.<epoch>`; a browser (or any cookie-jar
/// client) then floats every later read to at least the sequence it
/// last saw, without managing `X-Min-Seq` by hand.
const SESSION_COOKIE: &str = "covidkg-session";

/// Extract the applied-sequence half of the session cookie from a
/// `Cookie:` header, leniently: absent, malformed or foreign cookies
/// read as no floor at all (`None`) — an old or corrupt cookie must
/// never break a read.
fn cookie_min_seq(header: &str) -> Option<u64> {
    header.split(';').find_map(|part| {
        let (name, value) = part.split_once('=')?;
        if name.trim() != SESSION_COOKIE {
            return None;
        }
        // Value shape: `<applied>.<epoch>` (epoch informational).
        let applied = value.trim().split('.').next()?;
        applied.parse::<u64>().ok()
    })
}

/// Resolve one request to a response. Never panics; unknown paths 404,
/// wrong methods 405, bad parameters 400. With a [`ReadContext`],
/// `/search/*` is routed lag-aware across the replica pool and
/// `/metrics` carries the replication series.
pub fn handle(server: &Server, wire: &WireStats, repl: Option<&ReadContext>, req: &Request) -> Response {
    if req.method != "GET" {
        return error_response(405, "only GET is supported");
    }
    let path = req.path();
    if let Some(engine) = path.strip_prefix("/search/") {
        return search(server, engine, repl, req);
    }
    if let Some(id) = path.strip_prefix("/kg/node/") {
        return kg_node(server, id);
    }
    if let Some(vaccine) = path.strip_prefix("/kg/profile/") {
        return kg_profile(server, vaccine);
    }
    if path == "/kg/query" {
        return kg_query(server, req);
    }
    if let Some(id) = path.strip_prefix("/trust/node/") {
        return trust_node(server, id);
    }
    if let Some(venue) = path.strip_prefix("/trust/source/") {
        return trust_source(server, venue);
    }
    if path == "/bias/report" {
        return bias_report(server);
    }
    match path {
        "/stats" => stats(server),
        "/metrics" => {
            let (ann, kg, trust) = server.with_system(|system| {
                let ann = system.ann();
                let s = ann.stats();
                let ann = AnnExposition {
                    nodes: ann.len() as u64,
                    tombstones: ann.tombstones() as u64,
                    max_level: ann.max_level() as u64,
                    searches: s.searches,
                    distance_evals: s.distance_evals,
                    hops: s.hops,
                    candidates: s.candidates,
                    inserts: s.inserts,
                };
                let p = system.profile_store().stats();
                let kg = KgExposition {
                    nodes: system.kg().len() as u64,
                    profiles: p.profiles as u64,
                    profile_papers: p.papers as u64,
                    profile_observations: p.observations as u64,
                    profile_incremental_refreshes: p.incremental_refreshes,
                    profile_full_rebuilds: p.full_rebuilds,
                    profile_vaccines_rebuilt: p.vaccines_rebuilt,
                    profile_epoch: p.epoch,
                };
                let t = system.trust_store().stats();
                let trust = TrustExposition {
                    papers: t.papers as u64,
                    venues: t.venues as u64,
                    claims: t.claims as u64,
                    nodes: t.nodes as u64,
                    incremental_refreshes: t.incremental_refreshes,
                    full_rebuilds: t.full_rebuilds,
                    nodes_repropagated: t.nodes_repropagated,
                    epoch: t.epoch,
                    generation: t.generation,
                };
                (ann, kg, trust)
            });
            Response::text(
                200,
                render_metrics(
                    wire,
                    &server.stats(),
                    repl.map(|r| r.exposition()).as_ref(),
                    Some(&ann),
                    Some(&kg),
                    Some(&trust),
                ),
            )
        }
        "/" => Response::json(
            200,
            obj! {
                "service" => "covidkg",
                "endpoints" => Value::Array(vec![
                    Value::from("/search/{all-fields|tables|scoped}?q=&page=&trust="),
                    Value::from("/search/{semantic|hybrid}?q=&page=&trust="),
                    Value::from("/kg/query?start=&steps=&fanout=&k=&trust="),
                    Value::from("/kg/profile/{vaccine}"),
                    Value::from("/kg/node/{id}"),
                    Value::from("/trust/node/{id}"),
                    Value::from("/trust/source/{venue}"),
                    Value::from("/bias/report"),
                    Value::from("/stats"),
                    Value::from("/metrics"),
                ]),
            }
            .to_json(),
        ),
        _ => error_response(404, "no such resource"),
    }
}

/// `GET /search/{engine}?q=&page=` — `scoped` also accepts the
/// per-field `title`/`abstract`/`caption` parameters, defaulting each
/// to `q` when absent. `semantic` and `hybrid` engage the dense
/// retrieval tier and always execute locally. Under a [`ReadContext`], `X-Min-Seq` (header) or
/// `min_seq` (query parameter) demands read-your-writes: the response
/// comes from a target that has applied at least that sequence, or 503.
fn search(server: &Server, engine: &str, repl: Option<&ReadContext>, req: &Request) -> Response {
    let q = req.query_param("q").unwrap_or_default();
    let page = match req.query_param("page").as_deref() {
        None => 0,
        Some(p) => match p.parse::<usize>() {
            Ok(p) => p,
            Err(_) => return error_response(400, "page must be a non-negative integer"),
        },
    };
    let trust = match trust_knob(req) {
        Ok(trust) => trust,
        Err(resp) => return resp,
    };
    // Dense engines are served by the local HNSW tier: the replica
    // router only speaks the lexical modes, and the ANN search is
    // sub-millisecond, so there is nothing to route.
    let dense = match engine {
        "semantic" => Some(DenseMode::Semantic(q.clone())),
        "hybrid" => Some(DenseMode::Hybrid(q.clone())),
        _ => None,
    };
    if let Some(mode) = dense {
        return match server.search_dense(&mode, page) {
            Ok(resp) if trust => trusted_page_response(server, &resp),
            Ok(resp) => page_response(&resp),
            Err(e) => serve_error_response(e),
        };
    }
    let mode = match engine {
        "all-fields" => SearchMode::AllFields(q),
        "tables" => SearchMode::Tables(q),
        "scoped" => SearchMode::TitleAbstractCaption {
            title: req.query_param("title").unwrap_or_else(|| q.clone()),
            abstract_q: req.query_param("abstract").unwrap_or_else(|| q.clone()),
            caption: req.query_param("caption").unwrap_or_else(|| q.clone()),
        },
        other => {
            return error_response(
                404,
                &format!(
                    "unknown engine {other:?}: expected all-fields, tables, scoped, semantic or hybrid"
                ),
            )
        }
    };
    let Some(ctx) = repl else {
        return match server.search(&mode, page) {
            Ok(resp) if trust => trusted_page_response(server, &resp),
            Ok(resp) => page_response(&resp),
            Err(e) => serve_error_response(e),
        };
    };
    // Routed read: the sequence token rides the `X-Min-Seq` header (or
    // the `min_seq` query parameter for header-less clients).
    let min_seq_raw = req
        .header("x-min-seq")
        .map(|v| v.to_string())
        .or_else(|| req.query_param("min_seq"));
    let explicit_min_seq = match min_seq_raw.as_deref() {
        None => 0,
        Some(v) => match v.trim().parse::<u64>() {
            Ok(s) => s,
            Err(_) => return error_response(400, "X-Min-Seq must be a non-negative integer"),
        },
    };
    // The session cookie carries the client's ambient high-water mark;
    // the effective floor is the max of both tokens, so an explicit
    // X-Min-Seq still wins when it demands more.
    let cookie_floor = req.header("cookie").and_then(cookie_min_seq).unwrap_or(0);
    let min_seq = explicit_min_seq.max(cookie_floor);
    match ctx.router.search(&mode, page, min_seq, ctx.ryw_deadline) {
        // Trust re-rank is page-local, so it composes with routed reads:
        // the weights come from the local trust store.
        Ok((resp, info)) => if trust {
            trusted_page_response(server, &resp)
        } else {
            page_response(&resp)
        }
            .with_header("X-Served-By", info.replica)
            .with_header("X-Replica-Lag", info.lag.to_string())
            .with_header("X-Applied-Seq", info.applied.to_string())
            .with_header(
                "Set-Cookie",
                format!(
                    "{SESSION_COOKIE}={}.{}; Path=/",
                    info.applied,
                    ctx.current_epoch()
                ),
            ),
        Err(RouteError::NotCaughtUp { wanted, best }) => error_response(
            503,
            &format!("no replica caught up to sequence {wanted} (best applied: {best})"),
        )
        .with_header("Retry-After", "1")
        .with_header("X-Applied-Seq", best.to_string()),
        Err(RouteError::Serve(e)) => serve_error_response(e),
    }
}

/// The canonical 200 search response: byte-identical body, cache
/// metadata in headers.
fn page_response(resp: &covidkg_serve::ServeResponse) -> Response {
    page_response_with(&resp.page, resp)
}

/// Serialize `page` with `resp`'s cache metadata — shared by the
/// default path (`page` is `resp.page` itself, byte-identical to
/// in-process serialization) and the trust re-rank path (`page` is the
/// re-ranked copy).
fn page_response_with(page: &SearchPage, resp: &covidkg_serve::ServeResponse) -> Response {
    Response::json(200, page.to_json().to_json())
        .with_header(
            "X-Cache",
            if resp.stale {
                "stale"
            } else if resp.cached {
                "hit"
            } else {
                "miss"
            },
        )
        .with_header("X-Generation", resp.generation.to_string())
}

/// Parse the `trust=` re-rank knob, shared by `/search/*` and
/// `/kg/query`. Off by default: absent or `0` leaves the default
/// ranking (and its byte-identical wire contract) untouched.
fn trust_knob(req: &Request) -> Result<bool, Response> {
    match req.query_param("trust").as_deref() {
        None | Some("") | Some("0") => Ok(false),
        Some("1") => Ok(true),
        Some(_) => Err(error_response(400, "trust must be 0 or 1")),
    }
}

/// `trust=1` on `/search/*`: re-rank the served page by provenance
/// trust. Page-local by design — each result's lexical/dense score is
/// scaled by `0.5 + 0.5 * trust(source)` and the page re-sorted (score
/// desc, id asc on ties), so the knob reads the incrementally
/// maintained trust store without re-running the search. The re-ranked
/// body is flagged with `X-Trust: re-ranked`.
fn trusted_page_response(server: &Server, resp: &covidkg_serve::ServeResponse) -> Response {
    let mut page = resp.page.clone();
    let weights: Vec<f64> = server.with_system(|system| {
        page.results
            .iter()
            .map(|r| system.trust_paper_weight(&r.id))
            .collect()
    });
    for (result, weight) in page.results.iter_mut().zip(&weights) {
        result.score *= 0.5 + 0.5 * weight;
    }
    page.results
        .sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
    page_response_with(&page, resp).with_header("X-Trust", "re-ranked")
}

/// Map the scheduler's typed backpressure errors onto wire statuses.
pub fn serve_error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded => error_response(503, "server overloaded: request queue full")
            .with_header("Retry-After", "1"),
        ServeError::DeadlineExceeded => error_response(504, "search missed its deadline"),
        ServeError::Degraded => {
            error_response(503, "engine degraded and no cached page available")
                .with_header("Retry-After", "1")
        }
        ServeError::Closed => error_response(503, "server is shutting down"),
    }
}

/// The canonical 200 KG response: the server's pre-serialized body
/// verbatim, cache metadata in headers — same contract as search pages.
/// KG responses are never served stale, so `X-Cache` is only ever
/// `hit` or `miss`.
fn kg_response(resp: &KgResponse) -> Response {
    Response::json(200, resp.body.clone())
        .with_header("X-Cache", if resp.cached { "hit" } else { "miss" })
        .with_header("X-Generation", resp.generation.to_string())
}

/// `GET /kg/query?start=&steps=[&fanout=][&k=]` — bounded multi-hop
/// traversal returning top-k ranked paths. `start` is `term:<text>`,
/// `kind:<root|category|entity>` or `node:<id>`; `steps` is a
/// comma-separated hop list `<child|parent|any|co>[:<kind>[:<paper>]]`.
fn kg_query(server: &Server, req: &Request) -> Response {
    let start = req.query_param("start").unwrap_or_default();
    let steps = req.query_param("steps").unwrap_or_default();
    let fanout = match req.query_param("fanout").as_deref() {
        None => 16,
        Some(v) => match v.parse::<usize>() {
            Ok(v) => v,
            Err(_) => return error_response(400, "fanout must be a non-negative integer"),
        },
    };
    let k = match req.query_param("k").as_deref() {
        None => 10,
        Some(v) => match v.parse::<usize>() {
            Ok(v) => v,
            Err(_) => return error_response(400, "k must be a non-negative integer"),
        },
    };
    let plan = match QueryPlan::parse(&start, &steps, fanout, k) {
        Ok(plan) => plan,
        Err(e) => return error_response(400, &e),
    };
    let trust = match trust_knob(req) {
        Ok(trust) => trust,
        Err(resp) => return resp,
    };
    // `trust=1` swaps in the trust-re-ranked traversal; the default
    // ranking (and its cache entries) stays untouched when off.
    let served = if trust {
        server.kg_query_trusted(&plan)
    } else {
        server.kg_query(&plan)
    };
    match served {
        Ok(resp) if trust => kg_response(&resp).with_header("X-Trust", "re-ranked"),
        Ok(resp) => kg_response(&resp),
        Err(e) => serve_error_response(e),
    }
}

/// `GET /trust/node/{id}` — one KG node's provenance-trust document
/// (score, base prior, supporting sources). The fourth traffic class:
/// cache-fronted, queue-admitted, `trust`-breaker-guarded, never
/// served stale.
fn trust_node(server: &Server, id: &str) -> Response {
    let Ok(id) = id.parse::<usize>() else {
        return error_response(400, "node id must be a non-negative integer");
    };
    match server.trust_node(id) {
        Ok(Some(resp)) => kg_response(&resp),
        Ok(None) => {
            let len = server.with_system(|system| system.kg().len());
            error_response(404, &format!("no node {id} (graph has {len})"))
        }
        Err(e) => serve_error_response(e),
    }
}

/// `GET /trust/source/{venue}` — one source venue's credibility
/// document (prior, corroboration, contributing papers). The venue
/// segment is percent-decoded, so multi-word venues work.
fn trust_source(server: &Server, venue: &str) -> Response {
    let venue = percent_decode(venue);
    match server.trust_source(&venue) {
        Ok(Some(resp)) => kg_response(&resp),
        Ok(None) => error_response(404, &format!("no source venue {venue:?}")),
        Err(e) => serve_error_response(e),
    }
}

/// `GET /bias/report` — the trust-weighted bias interrogation report,
/// memoized against the trust-store epoch and served through the same
/// cache/admission/breaker stack as the other trust bodies.
fn bias_report(server: &Server) -> Response {
    match server.bias_report() {
        Ok(resp) => kg_response(&resp),
        Err(e) => serve_error_response(e),
    }
}

/// `GET /kg/profile/{vaccine}` — the vaccine's incrementally
/// materialized, epoch-stamped meta-profile document.
fn kg_profile(server: &Server, vaccine: &str) -> Response {
    match server.kg_profile(vaccine) {
        Ok(Some(resp)) => kg_response(&resp),
        Ok(None) => error_response(404, &format!("no profile for vaccine {vaccine:?}")),
        Err(e) => serve_error_response(e),
    }
}

/// `GET /kg/node/{id}` — one knowledge-graph node with its topology.
/// Flows through the serve-layer result cache like the search routes
/// (cache metadata in `X-Cache`/`X-Generation` headers).
fn kg_node(server: &Server, id: &str) -> Response {
    let Ok(id) = id.parse::<usize>() else {
        return error_response(400, "node id must be a non-negative integer");
    };
    match server.kg_node(id) {
        Ok(Some(resp)) => kg_response(&resp),
        Ok(None) => {
            let len = server.with_system(|system| system.kg().len());
            error_response(404, &format!("no node {id} (graph has {len})"))
        }
        Err(e) => serve_error_response(e),
    }
}

/// `GET /stats` — storage + KG + serving summary as JSON.
fn stats(server: &Server) -> Response {
    let (db, kg_nodes) = server.with_system(|system| (system.stats(), system.kg().len()));
    let serve = server.stats();
    let collections = Value::Array(
        db.collections
            .iter()
            .map(|c| {
                obj! {
                    "name" => c.name.as_str(),
                    "docs" => c.docs,
                    "bytes" => c.bytes,
                    "indexed_terms" => c.indexed_terms,
                    "shards" => c.shards.len(),
                }
            })
            .collect(),
    );
    Response::json(
        200,
        obj! {
            "generation" => server.generation() as i64,
            "documents" => db.total_docs(),
            "dataset_bytes" => db.total_bytes(),
            "collections" => collections,
            "kg_nodes" => kg_nodes,
            "serve" => obj! {
                "requests" => serve.total_requests() as i64,
                "completed" => serve.completed as i64,
                "cache_hits" => serve.cache_hits as i64,
                "cache_misses" => serve.cache_misses as i64,
                "overloaded" => serve.overloaded as i64,
                "degraded" => serve.degraded as i64,
            },
        }
        .to_json(),
    )
}

/// A JSON error body `{"error": ...}` with the given status.
pub fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, obj! { "error" => message }.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_cookie_parses_leniently() {
        assert_eq!(cookie_min_seq("covidkg-session=42.3"), Some(42));
        assert_eq!(
            cookie_min_seq("theme=dark; covidkg-session=17.0; lang=en"),
            Some(17),
            "finds the session cookie among others"
        );
        assert_eq!(
            cookie_min_seq(" covidkg-session = 9.1 "),
            Some(9),
            "whitespace around name and value is tolerated"
        );
        assert_eq!(cookie_min_seq("covidkg-session=garbage.2"), None);
        assert_eq!(cookie_min_seq("covidkg-session="), None);
        assert_eq!(cookie_min_seq("other=1.2"), None);
        assert_eq!(cookie_min_seq(""), None);
    }
}
