//! Wire-level load generation: closed- and open-loop clients driving a
//! running [`crate::HttpServer`] over real TCP sockets.
//!
//! Mirrors `covidkg_serve::loadgen` (same engine-rotation workload,
//! same coordinated-omission discipline: open-loop latency is measured
//! from each request's *scheduled* arrival, not from when a slow
//! dispatcher got around to sending it) so serve-layer and wire-layer
//! numbers are directly comparable — the difference is the HTTP tax.

use crate::client::HttpClient;
use covidkg_corpus::query_workload;
use covidkg_serve::LatencyHistogram;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Percent-encode a query for use inside `?q=`.
pub fn encode_query(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    for b in q.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Request target for workload item `i` — the same engine rotation as
/// the serve-layer loadgen (scoped every 7th, tables every 4th, the
/// rest all-fields) with pagination exercised via `i % 2`.
pub fn target_for(i: usize, query: &str) -> String {
    let q = encode_query(query);
    let page = i % 2;
    if i % 7 == 3 {
        format!("/search/scoped?title={q}&page={page}")
    } else if i % 4 == 1 {
        format!("/search/tables?q={q}&page={page}")
    } else {
        format!("/search/all-fields?q={q}&page={page}")
    }
}

/// Shared tallies for one bench phase.
#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok: AtomicU64,
    cache_hits: AtomicU64,
    errors: AtomicU64,
    statuses: Mutex<BTreeMap<u16, u64>>,
    latency: LatencyHistogram,
}

impl Tally {
    fn record(&self, status: u16, cached: bool, latency: Duration) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        if status == 200 {
            self.ok.fetch_add(1, Ordering::Relaxed);
            if cached {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        *self
            .statuses
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(status)
            .or_insert(0) += 1;
        self.latency.record(latency);
    }

    fn io_error(&self) {
        self.sent.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn into_report(self, mode: &str, offered_rate: f64, wall: Duration) -> NetBenchReport {
        NetBenchReport {
            mode: mode.to_string(),
            offered_rate,
            held_connections: 0,
            sent: self.sent.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            io_errors: self.errors.load(Ordering::Relaxed),
            statuses: self
                .statuses
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            wall,
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
        }
    }
}

/// Results of one bench phase (closed loop or one open-loop rate).
#[derive(Debug, Clone)]
pub struct NetBenchReport {
    /// `"closed"`, `"open"` or `"held"` (open loop with a standing
    /// population of idle keep-alive connections).
    pub mode: String,
    /// Offered request rate (req/s; 0 for closed loop).
    pub offered_rate: f64,
    /// Idle keep-alive connections held open for the whole phase
    /// (connection-concurrency sweeps; 0 otherwise).
    pub held_connections: u64,
    /// Requests sent (including ones that failed at the socket level).
    pub sent: u64,
    /// 200 responses.
    pub ok: u64,
    /// 200 responses served from the result cache (`X-Cache: hit`).
    pub cache_hits: u64,
    /// Requests that died to connect/read/write errors.
    pub io_errors: u64,
    /// Response counts by HTTP status.
    pub statuses: BTreeMap<u16, u64>,
    /// Wall-clock for the phase.
    pub wall: Duration,
    /// Median end-to-end latency (open loop: from scheduled arrival).
    pub p50: Option<Duration>,
    /// 99th-percentile latency.
    pub p99: Option<Duration>,
}

impl NetBenchReport {
    /// Completed-OK requests per second.
    pub fn goodput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// One-line summary for sweep tables.
    pub fn render(&self) -> String {
        fn dur(d: Option<Duration>) -> String {
            match d {
                None => "-".into(),
                Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.2} s", d.as_secs_f64()),
                Some(d) if d.as_micros() >= 1000 => format!("{:.2} ms", d.as_secs_f64() * 1e3),
                Some(d) => format!("{} µs", d.as_micros()),
            }
        }
        let statuses = self
            .statuses
            .iter()
            .map(|(s, c)| format!("{s}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        let held = if self.held_connections > 0 {
            format!(" holding {} idle conns,", self.held_connections)
        } else {
            String::new()
        };
        format!(
            "net-bench[{}] offered {:.0} req/s:{} {} sent, {} ok ({} cached), {} io-errors, \
             statuses [{}], p50 {} p99 {}, {:.1} ok/s over {:.2} s",
            self.mode,
            self.offered_rate,
            held,
            self.sent,
            self.ok,
            self.cache_hits,
            self.io_errors,
            statuses,
            dur(self.p50),
            dur(self.p99),
            self.goodput(),
            self.wall.as_secs_f64(),
        )
    }

    /// JSON object for BENCH_net.json.
    pub fn to_json(&self) -> covidkg_json::Value {
        use covidkg_json::Value;
        let statuses = covidkg_json::Value::Object(
            self.statuses
                .iter()
                .map(|(s, c)| (s.to_string(), Value::from(*c as i64)))
                .collect(),
        );
        covidkg_json::obj! {
            "mode" => self.mode.as_str(),
            "offered_rate" => self.offered_rate,
            "held_connections" => self.held_connections as i64,
            "sent" => self.sent as i64,
            "ok" => self.ok as i64,
            "cache_hits" => self.cache_hits as i64,
            "io_errors" => self.io_errors as i64,
            "statuses" => statuses,
            "wall_secs" => self.wall.as_secs_f64(),
            "goodput_rps" => self.goodput(),
            "p50_us" => self.p50.map(|d| d.as_micros() as f64).unwrap_or(-1.0),
            "p99_us" => self.p99.map(|d| d.as_micros() as f64).unwrap_or(-1.0),
        }
    }
}

/// Closed-loop phase: `clients` keep-alive connections, each sending
/// `requests_per_client` back-to-back requests from a deterministic
/// per-client query stream.
pub fn run_closed_loop(
    addr: SocketAddr,
    clients: usize,
    requests_per_client: usize,
    timeout: Duration,
) -> NetBenchReport {
    let tally = Tally::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let tally = &tally;
            scope.spawn(move || {
                let Ok(mut conn) = HttpClient::connect(addr, timeout) else {
                    for _ in 0..requests_per_client {
                        tally.io_error();
                    }
                    return;
                };
                let queries = query_workload(requests_per_client, client as u64);
                for (i, query) in queries.iter().enumerate() {
                    let target = target_for(i, query);
                    let sent_at = Instant::now();
                    match conn.get(&target) {
                        Ok(resp) => tally.record(
                            resp.status,
                            resp.header("x-cache") == Some("hit"),
                            sent_at.elapsed(),
                        ),
                        Err(_) => tally.io_error(),
                    }
                }
            });
        }
    });
    tally.into_report("closed", 0.0, start.elapsed())
}

/// Open-loop phase: `rate` req/s offered for `duration`, arrivals
/// striped over `dispatchers` connections. Latency is measured from
/// each arrival's scheduled instant, so queueing delay a slow server
/// induces shows up in the percentiles instead of being silently
/// omitted.
pub fn run_open_loop(
    addr: SocketAddr,
    rate: f64,
    duration: Duration,
    dispatchers: usize,
    timeout: Duration,
) -> NetBenchReport {
    let rate = rate.max(1e-3);
    let dispatchers = dispatchers.max(1);
    let arrivals = ((rate * duration.as_secs_f64()).ceil() as u64).max(1);
    let tally = Tally::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for d in 0..dispatchers {
            let tally = &tally;
            scope.spawn(move || {
                let mut conn = HttpClient::connect(addr, timeout).ok();
                let queries =
                    query_workload((arrivals as usize).div_ceil(dispatchers), d as u64);
                for (j, i) in (d as u64..arrivals).step_by(dispatchers).enumerate() {
                    let scheduled = start + Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let query = &queries[j % queries.len()];
                    let target = target_for(i as usize, query);
                    if conn.is_none() {
                        conn = HttpClient::connect(addr, timeout).ok();
                    }
                    let Some(c) = conn.as_mut() else {
                        tally.io_error();
                        continue;
                    };
                    match c.get(&target) {
                        Ok(resp) => tally.record(
                            resp.status,
                            resp.header("x-cache") == Some("hit"),
                            scheduled.elapsed(),
                        ),
                        Err(_) => {
                            tally.io_error();
                            conn = None;
                        }
                    }
                }
            });
        }
    });
    tally.into_report("open", rate, start.elapsed())
}

/// Connection-concurrency phase: hold `held` *idle* keep-alive
/// connections open for the whole phase while an open-loop load at
/// `rate` req/s runs beside them. Under thread-per-connection each held
/// socket costs a parked OS thread (and past the cap, admission fails);
/// under the reactor it costs one fd plus ~1 KiB of state — this phase
/// makes that difference measurable as goodput/latency at equal load.
pub fn run_held_connections(
    addr: SocketAddr,
    held: usize,
    rate: f64,
    duration: Duration,
    dispatchers: usize,
    timeout: Duration,
) -> NetBenchReport {
    let mut idle = Vec::with_capacity(held);
    for _ in 0..held {
        match HttpClient::connect(addr, timeout) {
            Ok(conn) => idle.push(conn),
            Err(_) => break,
        }
    }
    let mut report = run_open_loop(addr, rate, duration, dispatchers, timeout);
    report.mode = "held".into();
    // The server reaps idle sockets after its idle timeout, so a phase
    // that outlasts it (custom --duration-ms, low rates) loses held
    // connections mid-flight. Count only sockets still open at phase
    // end — `held_connections` reports what was actually sustained.
    let mut survivors = 0u64;
    for conn in &mut idle {
        if still_open(conn) {
            survivors += 1;
        }
    }
    report.held_connections = survivors;
    drop(idle);
    report
}

/// Whether an idle keep-alive connection is still open, without
/// sending a request: a non-blocking read on a healthy idle socket
/// returns `WouldBlock`; a reaped one yields EOF or an error.
fn still_open(conn: &mut HttpClient) -> bool {
    let stream = conn.stream();
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let open = match std::io::Read::read(stream, &mut probe) {
        Ok(0) => false,
        Ok(_) => true, // stray bytes: unexpected on an idle socket, but open
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
        Err(_) => false,
    };
    let _ = stream.set_nonblocking(false);
    open
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn still_open_distinguishes_live_from_closed_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut conn = HttpClient::connect(addr, Duration::from_secs(1)).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        assert!(still_open(&mut conn), "freshly accepted socket is open");
        drop(server_side);
        // Loopback FIN delivery is immediate, but give it a moment.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!still_open(&mut conn), "probe must see the server's close");
    }

    #[test]
    fn query_encoding_is_url_safe() {
        assert_eq!(encode_query("mask mandates"), "mask+mandates");
        assert_eq!(encode_query("covid-19"), "covid-19");
        assert_eq!(encode_query("R0>1 & \"spread\""), "R0%3E1+%26+%22spread%22");
    }

    #[test]
    fn target_rotation_covers_all_three_engines() {
        let targets: Vec<String> = (0..8).map(|i| target_for(i, "x")).collect();
        assert!(targets.iter().any(|t| t.starts_with("/search/scoped?")));
        assert!(targets.iter().any(|t| t.starts_with("/search/tables?")));
        assert!(targets.iter().any(|t| t.starts_with("/search/all-fields?")));
        assert!(targets.iter().any(|t| t.ends_with("page=0")));
        assert!(targets.iter().any(|t| t.ends_with("page=1")));
    }

    #[test]
    fn report_renders_and_serializes() {
        let tally = Tally::default();
        tally.record(200, true, Duration::from_millis(2));
        tally.record(200, false, Duration::from_millis(4));
        tally.record(503, false, Duration::from_millis(1));
        tally.io_error();
        let report = tally.into_report("open", 100.0, Duration::from_secs(1));
        assert_eq!(report.sent, 4);
        assert_eq!(report.ok, 2);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.io_errors, 1);
        assert_eq!(report.statuses.get(&503), Some(&1));
        assert!((report.goodput() - 2.0).abs() < 1e-9);
        let line = report.render();
        assert!(line.contains("503:1"), "{line}");
        let json = report.to_json().to_json();
        assert!(json.contains("\"offered_rate\":100"), "{json}");
        assert!(json.contains("\"ok\":2"), "{json}");
    }
}
