//! covidkg-net — a std-only HTTP/1.1 front-end for the serving stack.
//!
//! COVIDKG.ORG is, above all, a *web site*: §1 describes "a Web-scale
//! … interactive" system whose search engines and knowledge graph are
//! interrogated through a browser. Until this crate, the repo's
//! serving stack ([`covidkg_serve::Server`]) was only reachable
//! in-process. `covidkg-net` puts it on the wire with nothing beyond
//! `std::net`:
//!
//! - [`http`] — an incremental, bounds-checked HTTP/1.1 parser
//!   (431/413/400 on hostile input) and response writer with
//!   keep-alive semantics;
//! - [`server`] — the connection supervisor: bounded accept (503 +
//!   `Retry-After` past the cap), read/write deadlines, idle-connection
//!   reaping and graceful drain of in-flight requests on shutdown.
//!   Two [`ConnectionModel`]s share those semantics: the default epoll
//!   `reactor` (one event-loop thread + a fixed dispatch pool, tens of
//!   thousands of connections) and the legacy thread-per-connection
//!   baseline (64 threads, kept for A/B benching);
//! - [`router`] — `GET /search/{engine}`, `/kg/node/{id}`, `/stats`,
//!   `/metrics`, mapping the scheduler's typed backpressure errors
//!   (`Overloaded`, `DeadlineExceeded`, …) onto honest wire statuses;
//! - [`client`] + [`bench`] — an in-repo blocking client and closed/
//!   open-loop load generators, so the wire path is testable and
//!   benchmarkable without any external tool.
//!
//! The load-bearing guarantee: a TCP client receives **byte-identical**
//! JSON search pages to an in-process `SearchPage::to_json()` caller
//! for the same (engine, query, page) — cached, fresh or stale.

pub mod bench;
pub mod client;
pub mod http;
pub mod metrics;
mod reactor;
pub mod router;
pub mod server;

pub use bench::{run_closed_loop, run_held_connections, run_open_loop, NetBenchReport};
pub use client::{ClientResponse, HttpClient};
pub use http::{ParseError, Parser, Request, Response};
pub use metrics::{ReplExposition, WireMetrics, WireStats};
pub use router::ReadContext;
pub use server::{ConnectionModel, HttpServer, NetConfig};
