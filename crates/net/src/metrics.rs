//! Wire-level counters and the `/metrics` text exposition.
//!
//! The serve layer already tracks scheduler-side metrics (queue depth,
//! cache hit rate, latency percentiles). This registry adds the
//! network-only dimensions the scheduler cannot see — connections,
//! bytes on the wire, parse failures, and the per-status-code response
//! mix — and renders both layers as one flat `name value` text page in
//! the Prometheus exposition style (no external client required).

use covidkg_serve::ServeStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds of the ready-events-per-wakeup histogram buckets (the
/// last bucket is +Inf).
pub const READY_EVENT_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Lock-free wire counters shared by the accept loop (or reactor) and
/// every connection thread (or dispatch worker).
#[derive(Debug, Default)]
pub struct WireMetrics {
    accepted: AtomicU64,
    active: AtomicU64,
    reaped: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    parse_errors: AtomicU64,
    requests: AtomicU64,
    /// `epoll_wait` returns (reactor model only).
    epoll_wakeups: AtomicU64,
    /// Ready-events-per-wakeup histogram: one counter per bucket of
    /// [`READY_EVENT_BUCKETS`] plus a final +Inf bucket.
    ready_buckets: [AtomicU64; READY_EVENT_BUCKETS.len() + 1],
    /// Total ready events observed (histogram sum).
    ready_events: AtomicU64,
    /// Requests sitting in the reactor's dispatch queue right now.
    dispatch_depth: AtomicU64,
    /// Response counts keyed by status code. A mutex is fine here: the
    /// map is touched once per response, after the search completed.
    statuses: Mutex<BTreeMap<u16, u64>>,
}

impl WireMetrics {
    pub(crate) fn connection_opened(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.active.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_reaped(&self) {
        self.reaped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn read(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn wrote(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn responded(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut statuses = self.statuses.lock().unwrap_or_else(|e| e.into_inner());
        *statuses.entry(status).or_insert(0) += 1;
    }

    /// One `epoll_wait` return delivering `ready` events (0 = timer
    /// tick; counted as a wakeup, excluded from the histogram).
    pub(crate) fn epoll_wakeup(&self, ready: usize) {
        self.epoll_wakeups.fetch_add(1, Ordering::Relaxed);
        if ready == 0 {
            return;
        }
        self.ready_events.fetch_add(ready as u64, Ordering::Relaxed);
        let idx = READY_EVENT_BUCKETS
            .iter()
            .position(|&le| ready as u64 <= le)
            .unwrap_or(READY_EVENT_BUCKETS.len());
        self.ready_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Dispatch-queue depth transitions (reactor worker pool).
    pub(crate) fn dispatch_enqueued(&self) {
        self.dispatch_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dispatch_dequeued(&self) {
        self.dispatch_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> WireStats {
        WireStats {
            connections_accepted: self.accepted.load(Ordering::Relaxed),
            connections_active: self.active.load(Ordering::Relaxed),
            connections_reaped: self.reaped.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            epoll_wakeups: self.epoll_wakeups.load(Ordering::Relaxed),
            ready_event_buckets: std::array::from_fn(|i| self.ready_buckets[i].load(Ordering::Relaxed)),
            ready_events: self.ready_events.load(Ordering::Relaxed),
            dispatch_queue_depth: self.dispatch_depth.load(Ordering::Relaxed),
            responses_by_status: self
                .statuses
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        }
    }
}

/// Snapshot of [`WireMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections the supervisor accepted (including over-capacity ones
    /// turned away with 503).
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Idle connections closed by the reaper.
    pub connections_reaped: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Requests rejected by the HTTP parser.
    pub parse_errors: u64,
    /// Responses written (any status).
    pub requests: u64,
    /// `epoll_wait` returns (reactor model only; 0 under the legacy
    /// thread-per-connection model).
    pub epoll_wakeups: u64,
    /// Non-cumulative ready-events-per-wakeup histogram counts, one per
    /// bucket of [`READY_EVENT_BUCKETS`] plus +Inf.
    pub ready_event_buckets: [u64; READY_EVENT_BUCKETS.len() + 1],
    /// Total ready events across all wakeups (histogram sum).
    pub ready_events: u64,
    /// Requests queued for the reactor's dispatch workers right now.
    pub dispatch_queue_depth: u64,
    /// Responses by status code.
    pub responses_by_status: BTreeMap<u16, u64>,
}

/// Replication series for the exposition, gathered from the routing
/// layer when the front-end runs with one (primary- and replica-side).
#[derive(Debug, Clone, Default)]
pub struct ReplExposition {
    /// The primary's durable publications watermark (sequence clock).
    pub watermark: u64,
    /// This node's fencing epoch (leadership generation; bumps on
    /// every failover promotion).
    pub epoch: u64,
    /// `(name, applied, lag)` per routable replica.
    pub replicas: Vec<(String, u64, u64)>,
    /// Primary-side shipping counters, when this node is the primary.
    pub shipping: Option<covidkg_repl::ReplStats>,
}

/// Dense-tier series for the exposition, gathered from the HNSW index
/// behind the `semantic`/`hybrid` engines.
#[derive(Debug, Clone, Default)]
pub struct AnnExposition {
    /// Live vectors in the index.
    pub nodes: u64,
    /// Tombstoned slots awaiting the next rebuild.
    pub tombstones: u64,
    /// Top layer of the HNSW graph.
    pub max_level: u64,
    /// Queries answered since build.
    pub searches: u64,
    /// Dot products evaluated across all queries.
    pub distance_evals: u64,
    /// Greedy-descent hops across all queries.
    pub hops: u64,
    /// Beam candidates expanded across all queries.
    pub candidates: u64,
    /// Incremental inserts applied since build.
    pub inserts: u64,
}

/// Knowledge-graph series for the exposition, gathered from the graph
/// and the incrementally-materialized profile store behind the
/// `/kg/*` routes.
#[derive(Debug, Clone, Default)]
pub struct KgExposition {
    /// Nodes in the knowledge graph.
    pub nodes: u64,
    /// Materialized meta-profiles (distinct vaccines).
    pub profiles: u64,
    /// Papers contributing side-effect observations.
    pub profile_papers: u64,
    /// Side-effect observations across all profiles.
    pub profile_observations: u64,
    /// Incremental (mutation-log driven) profile refreshes.
    pub profile_incremental_refreshes: u64,
    /// Full profile rebuilds (initial build or log overflow).
    pub profile_full_rebuilds: u64,
    /// Vaccine profiles rebuilt across all refreshes.
    pub profile_vaccines_rebuilt: u64,
    /// Collection mutation epoch the profile store replayed up to.
    pub profile_epoch: u64,
}

/// Trust-tier series for the exposition, gathered from the
/// provenance-weighted trust store behind the `/trust/*` and
/// `/bias/report` routes (the fourth traffic class).
#[derive(Debug, Clone, Default)]
pub struct TrustExposition {
    /// Papers contributing provenance to the trust store.
    pub papers: u64,
    /// Distinct source venues with credibility priors.
    pub venues: u64,
    /// Extracted claims backing venue corroboration.
    pub claims: u64,
    /// KG nodes carrying a propagated trust score.
    pub nodes: u64,
    /// Incremental (mutation-log driven) trust refreshes.
    pub incremental_refreshes: u64,
    /// Full trust rebuilds (initial build or log overflow).
    pub full_rebuilds: u64,
    /// Nodes re-propagated across all incremental refreshes.
    pub nodes_repropagated: u64,
    /// Collection mutation epoch the trust store replayed up to.
    pub epoch: u64,
    /// Data generation stamped into trust documents.
    pub generation: u64,
}

/// Render wire + serve stats as a text metrics page, one
/// `covidkg_<name> <value>` per line, statuses as labelled series.
pub fn render_metrics(
    wire: &WireStats,
    serve: &ServeStats,
    repl: Option<&ReplExposition>,
    ann: Option<&AnnExposition>,
    kg: Option<&KgExposition>,
    trust: Option<&TrustExposition>,
) -> String {
    fn secs(d: Option<Duration>) -> f64 {
        d.map(|d| d.as_secs_f64()).unwrap_or(0.0)
    }
    let mut out = String::new();
    let mut line = |name: &str, v: String| {
        out.push_str("covidkg_");
        out.push_str(name);
        out.push(' ');
        out.push_str(&v);
        out.push('\n');
    };
    line("net_connections_accepted", wire.connections_accepted.to_string());
    line("net_connections_active", wire.connections_active.to_string());
    line("net_connections_reaped", wire.connections_reaped.to_string());
    line("net_bytes_in", wire.bytes_in.to_string());
    line("net_bytes_out", wire.bytes_out.to_string());
    line("net_parse_errors", wire.parse_errors.to_string());
    line("net_requests", wire.requests.to_string());
    line("net_open_connections", wire.connections_active.to_string());
    line("net_epoll_wakeups", wire.epoll_wakeups.to_string());
    // Cumulative buckets, Prometheus histogram style. Labels contain no
    // spaces, keeping the strict `name value` line shape.
    let mut cumulative = 0;
    for (i, count) in wire.ready_event_buckets.iter().enumerate() {
        cumulative += count;
        let le = READY_EVENT_BUCKETS
            .get(i)
            .map(|b| b.to_string())
            .unwrap_or_else(|| "+Inf".to_string());
        line(
            &format!("net_ready_events_per_wakeup_bucket{{le=\"{le}\"}}"),
            cumulative.to_string(),
        );
    }
    line("net_ready_events_per_wakeup_count", cumulative.to_string());
    line("net_ready_events_per_wakeup_sum", wire.ready_events.to_string());
    line("net_dispatch_queue_depth", wire.dispatch_queue_depth.to_string());
    for (status, count) in &wire.responses_by_status {
        line(
            &format!("net_responses{{status=\"{status}\"}}"),
            count.to_string(),
        );
    }
    line("serve_requests_all_fields", serve.requests_all_fields.to_string());
    line("serve_requests_tables", serve.requests_tables.to_string());
    line("serve_requests_scoped", serve.requests_scoped.to_string());
    line("serve_requests_kg", serve.requests_kg.to_string());
    line("serve_requests_trust", serve.requests_trust.to_string());
    line("serve_requests_semantic", serve.requests_semantic.to_string());
    line("serve_requests_hybrid", serve.requests_hybrid.to_string());
    line("serve_cache_hits", serve.cache_hits.to_string());
    line("serve_cache_misses", serve.cache_misses.to_string());
    line("serve_overloaded", serve.overloaded.to_string());
    line("serve_deadline_exceeded", serve.deadline_exceeded.to_string());
    line("serve_completed", serve.completed.to_string());
    line("serve_worker_panics", serve.worker_panics.to_string());
    line("serve_worker_respawns", serve.worker_respawns.to_string());
    line("serve_degraded", serve.degraded.to_string());
    line("serve_stale_served", serve.stale_served.to_string());
    line("serve_breaker_opens", serve.breaker_opens.to_string());
    line("serve_io_retries", serve.io_retries.to_string());
    line("serve_queue_depth", serve.queue_depth.to_string());
    line("serve_max_queue_depth", serve.max_queue_depth.to_string());
    line("serve_latency_p50_seconds", format!("{:.6}", secs(serve.p50)));
    line("serve_latency_p95_seconds", format!("{:.6}", secs(serve.p95)));
    line("serve_latency_p99_seconds", format!("{:.6}", secs(serve.p99)));
    if let Some(repl) = repl {
        // Replica names are operator-chosen: squash anything that would
        // break the strict `name value` line shape.
        let label = |name: &str| -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
                .collect()
        };
        line("repl_watermark", repl.watermark.to_string());
        line("repl_epoch", repl.epoch.to_string());
        line("repl_replicas", repl.replicas.len().to_string());
        for (name, applied, lag) in &repl.replicas {
            let name = label(name);
            line(&format!("repl_replica_applied{{replica=\"{name}\"}}"), applied.to_string());
            line(&format!("repl_replica_lag{{replica=\"{name}\"}}"), lag.to_string());
        }
        if let Some(s) = &repl.shipping {
            line("repl_bytes_shipped", s.bytes_shipped.to_string());
            line("repl_frames_shipped", s.frames_shipped.to_string());
            line("repl_batches_shipped", s.batches_shipped.to_string());
            line("repl_bytes_saved", s.bytes_saved.to_string());
            line("repl_snapshot_bootstraps", s.snapshot_bootstraps.to_string());
            line("repl_reconnects", s.reconnects.to_string());
            line("repl_fenced_sessions", s.fenced_sessions.to_string());
        }
    }
    if let Some(ann) = ann {
        line("ann_nodes", ann.nodes.to_string());
        line("ann_tombstones", ann.tombstones.to_string());
        line("ann_max_level", ann.max_level.to_string());
        line("ann_searches", ann.searches.to_string());
        line("ann_distance_evals", ann.distance_evals.to_string());
        line("ann_hops", ann.hops.to_string());
        line("ann_candidates", ann.candidates.to_string());
        line("ann_inserts", ann.inserts.to_string());
    }
    if let Some(kg) = kg {
        line("kg_nodes", kg.nodes.to_string());
        line("kg_queries", serve.requests_kg.to_string());
        line("kg_traversal_hops", serve.kg_traversal_hops.to_string());
        line("kg_nodes_visited", serve.kg_nodes_visited.to_string());
        line("kg_profiles", kg.profiles.to_string());
        line("kg_profile_papers", kg.profile_papers.to_string());
        line("kg_profile_observations", kg.profile_observations.to_string());
        line(
            "kg_profile_incremental_refreshes",
            kg.profile_incremental_refreshes.to_string(),
        );
        line("kg_profile_full_rebuilds", kg.profile_full_rebuilds.to_string());
        line(
            "kg_profile_vaccines_rebuilt",
            kg.profile_vaccines_rebuilt.to_string(),
        );
        line("kg_profile_epoch", kg.profile_epoch.to_string());
    }
    if let Some(trust) = trust {
        line("trust_papers", trust.papers.to_string());
        line("trust_venues", trust.venues.to_string());
        line("trust_claims", trust.claims.to_string());
        line("trust_nodes", trust.nodes.to_string());
        line("trust_queries", serve.requests_trust.to_string());
        line(
            "trust_incremental_refreshes",
            trust.incremental_refreshes.to_string(),
        );
        line("trust_full_rebuilds", trust.full_rebuilds.to_string());
        line("trust_nodes_repropagated", trust.nodes_repropagated.to_string());
        line("trust_epoch", trust.epoch.to_string());
        line("trust_generation", trust.generation.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_round_trip_through_snapshot() {
        let m = WireMetrics::default();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.connection_reaped();
        m.read(100);
        m.wrote(250);
        m.parse_error();
        m.responded(200);
        m.responded(200);
        m.responded(503);
        let s = m.snapshot();
        assert_eq!(s.connections_accepted, 2);
        assert_eq!(s.connections_active, 1);
        assert_eq!(s.connections_reaped, 1);
        assert_eq!(s.bytes_in, 100);
        assert_eq!(s.bytes_out, 250);
        assert_eq!(s.parse_errors, 1);
        assert_eq!(s.requests, 3);
        assert_eq!(s.responses_by_status.get(&200), Some(&2));
        assert_eq!(s.responses_by_status.get(&503), Some(&1));
    }

    #[test]
    fn ready_event_histogram_buckets_by_count() {
        let m = WireMetrics::default();
        m.epoll_wakeup(0); // timer tick: wakeup counted, no histogram sample
        m.epoll_wakeup(1);
        m.epoll_wakeup(2);
        m.epoll_wakeup(5);
        m.epoll_wakeup(500); // past the largest bound -> +Inf
        m.dispatch_enqueued();
        m.dispatch_enqueued();
        m.dispatch_dequeued();
        let s = m.snapshot();
        assert_eq!(s.epoll_wakeups, 5);
        assert_eq!(s.ready_events, 1 + 2 + 5 + 500);
        assert_eq!(s.ready_event_buckets[0], 1); // le=1
        assert_eq!(s.ready_event_buckets[1], 1); // le=2
        assert_eq!(s.ready_event_buckets[3], 1); // le=8 holds the 5
        assert_eq!(s.ready_event_buckets[READY_EVENT_BUCKETS.len()], 1); // +Inf
        assert_eq!(s.dispatch_queue_depth, 1);
        let serve = covidkg_serve::ServeStats {
            requests_all_fields: 0,
            requests_tables: 0,
            requests_scoped: 0,
            requests_kg: 0,
            requests_trust: 0,
            requests_semantic: 0,
            requests_hybrid: 0,
            cache_hits: 0,
            cache_misses: 0,
            overloaded: 0,
            deadline_exceeded: 0,
            completed: 0,
            worker_panics: 0,
            worker_respawns: 0,
            degraded: 0,
            stale_served: 0,
            breaker_opens: 0,
            kg_traversal_hops: 0,
            kg_nodes_visited: 0,
            io_retries: 0,
            cache: Default::default(),
            queue_depth: 0,
            max_queue_depth: 0,
            p50: None,
            p95: None,
            p99: None,
        };
        let text = render_metrics(&s, &serve, None, None, None, None);
        assert!(text.contains("covidkg_net_epoll_wakeups 5\n"), "{text}");
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"8\"} 3\n"));
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_count 4\n"));
        assert!(text.contains("covidkg_net_ready_events_per_wakeup_sum 508\n"));
        assert!(text.contains("covidkg_net_dispatch_queue_depth 1\n"));
        assert!(text.contains("covidkg_net_open_connections 0\n"));
    }

    #[test]
    fn exposition_lists_every_series() {
        let m = WireMetrics::default();
        m.connection_opened();
        m.responded(200);
        m.responded(404);
        let serve = covidkg_serve::ServeStats {
            requests_all_fields: 7,
            requests_tables: 0,
            requests_scoped: 0,
            requests_kg: 3,
            requests_trust: 6,
            requests_semantic: 2,
            requests_hybrid: 5,
            cache_hits: 3,
            cache_misses: 4,
            overloaded: 1,
            deadline_exceeded: 0,
            completed: 4,
            worker_panics: 0,
            worker_respawns: 0,
            degraded: 0,
            stale_served: 0,
            breaker_opens: 0,
            kg_traversal_hops: 44,
            kg_nodes_visited: 19,
            io_retries: 0,
            cache: Default::default(),
            queue_depth: 0,
            max_queue_depth: 2,
            p50: Some(Duration::from_micros(1500)),
            p95: None,
            p99: None,
        };
        let repl = ReplExposition {
            watermark: 42,
            epoch: 2,
            replicas: vec![
                ("replica-1".into(), 42, 0),
                ("weird name!".into(), 40, 2),
            ],
            shipping: Some(covidkg_repl::ReplStats {
                bytes_shipped: 1024,
                frames_shipped: 17,
                batches_shipped: 4,
                bytes_saved: 900,
                snapshot_bootstraps: 1,
                reconnects: 3,
                fenced_sessions: 1,
                epoch: 2,
                replicas: Vec::new(),
            }),
        };
        let ann = AnnExposition {
            nodes: 36,
            tombstones: 2,
            max_level: 3,
            searches: 9,
            distance_evals: 510,
            hops: 21,
            candidates: 90,
            inserts: 4,
        };
        let kg = KgExposition {
            nodes: 18,
            profiles: 4,
            profile_papers: 11,
            profile_observations: 57,
            profile_incremental_refreshes: 6,
            profile_full_rebuilds: 1,
            profile_vaccines_rebuilt: 9,
            profile_epoch: 3,
        };
        let trust = TrustExposition {
            papers: 13,
            venues: 5,
            claims: 29,
            nodes: 18,
            incremental_refreshes: 2,
            full_rebuilds: 1,
            nodes_repropagated: 12,
            epoch: 3,
            generation: 2,
        };
        let text = render_metrics(
            &m.snapshot(),
            &serve,
            Some(&repl),
            Some(&ann),
            Some(&kg),
            Some(&trust),
        );
        assert!(text.contains("covidkg_net_connections_accepted 1\n"), "{text}");
        assert!(text.contains("covidkg_net_responses{status=\"200\"} 1\n"));
        assert!(text.contains("covidkg_net_responses{status=\"404\"} 1\n"));
        assert!(text.contains("covidkg_serve_requests_all_fields 7\n"));
        assert!(text.contains("covidkg_serve_latency_p50_seconds 0.001500\n"));
        assert!(text.contains("covidkg_serve_latency_p95_seconds 0.000000\n"));
        assert!(text.contains("covidkg_repl_watermark 42\n"));
        assert!(text.contains("covidkg_repl_epoch 2\n"));
        assert!(text.contains("covidkg_repl_replicas 2\n"));
        assert!(text.contains("covidkg_repl_replica_applied{replica=\"replica-1\"} 42\n"));
        assert!(text.contains("covidkg_repl_replica_lag{replica=\"weird-name-\"} 2\n"));
        assert!(text.contains("covidkg_repl_bytes_shipped 1024\n"));
        assert!(text.contains("covidkg_repl_frames_shipped 17\n"));
        assert!(text.contains("covidkg_repl_batches_shipped 4\n"));
        assert!(text.contains("covidkg_repl_bytes_saved 900\n"));
        assert!(text.contains("covidkg_repl_snapshot_bootstraps 1\n"));
        assert!(text.contains("covidkg_repl_reconnects 3\n"));
        assert!(text.contains("covidkg_repl_fenced_sessions 1\n"));
        assert!(text.contains("covidkg_serve_requests_semantic 2\n"));
        assert!(text.contains("covidkg_serve_requests_hybrid 5\n"));
        assert!(text.contains("covidkg_ann_nodes 36\n"));
        assert!(text.contains("covidkg_ann_tombstones 2\n"));
        assert!(text.contains("covidkg_ann_max_level 3\n"));
        assert!(text.contains("covidkg_ann_searches 9\n"));
        assert!(text.contains("covidkg_ann_distance_evals 510\n"));
        assert!(text.contains("covidkg_ann_hops 21\n"));
        assert!(text.contains("covidkg_ann_candidates 90\n"));
        assert!(text.contains("covidkg_ann_inserts 4\n"));
        assert!(text.contains("covidkg_serve_requests_kg 3\n"));
        assert!(text.contains("covidkg_kg_nodes 18\n"));
        assert!(text.contains("covidkg_kg_queries 3\n"));
        assert!(text.contains("covidkg_kg_traversal_hops 44\n"));
        assert!(text.contains("covidkg_kg_nodes_visited 19\n"));
        assert!(text.contains("covidkg_kg_profiles 4\n"));
        assert!(text.contains("covidkg_kg_profile_papers 11\n"));
        assert!(text.contains("covidkg_kg_profile_observations 57\n"));
        assert!(text.contains("covidkg_kg_profile_incremental_refreshes 6\n"));
        assert!(text.contains("covidkg_kg_profile_full_rebuilds 1\n"));
        assert!(text.contains("covidkg_kg_profile_vaccines_rebuilt 9\n"));
        assert!(text.contains("covidkg_kg_profile_epoch 3\n"));
        assert!(text.contains("covidkg_serve_requests_trust 6\n"));
        assert!(text.contains("covidkg_trust_papers 13\n"));
        assert!(text.contains("covidkg_trust_venues 5\n"));
        assert!(text.contains("covidkg_trust_claims 29\n"));
        assert!(text.contains("covidkg_trust_nodes 18\n"));
        assert!(text.contains("covidkg_trust_queries 6\n"));
        assert!(text.contains("covidkg_trust_incremental_refreshes 2\n"));
        assert!(text.contains("covidkg_trust_full_rebuilds 1\n"));
        assert!(text.contains("covidkg_trust_nodes_repropagated 12\n"));
        assert!(text.contains("covidkg_trust_epoch 3\n"));
        assert!(text.contains("covidkg_trust_generation 2\n"));
        // Every line is `name value`.
        for l in text.lines() {
            assert_eq!(l.split(' ').count(), 2, "{l}");
            assert!(l.starts_with("covidkg_"), "{l}");
        }
        // Without a routing layer / dense tier / kg the optional series
        // are absent entirely.
        let text = render_metrics(&m.snapshot(), &serve, None, None, None, None);
        assert!(!text.contains("repl_"), "{text}");
        assert!(!text.contains("ann_"), "{text}");
        assert!(!text.contains("covidkg_kg_"), "{text}");
        assert!(!text.contains("covidkg_trust_"), "{text}");
    }
}
