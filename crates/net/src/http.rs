//! Incremental, bounds-checked HTTP/1.1 message handling.
//!
//! The parser is a byte-at-a-time-safe state machine: callers feed it
//! whatever the socket produced (one byte or sixty kilobytes) and it
//! returns a complete [`Request`] as soon as one is buffered, keeping
//! any pipelined surplus for the next call. Every phase is bounded —
//! an over-long request line or header block fails with 431, an
//! oversized declared body with 413, and anything structurally invalid
//! with 400 — so no peer can make the server buffer without limit.

use std::io::Write;

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Cap on the total header block (all lines + terminator).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Cap on individual header count.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted body, whether declared via `Content-Length` or
/// accumulated across `Transfer-Encoding: chunked` chunks.
pub const MAX_BODY_BYTES: usize = 64 * 1024;
/// Longest accepted chunk-size line (hex size + optional extensions).
pub const MAX_CHUNK_LINE: usize = 64;

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, e.g. `GET`.
    pub method: String,
    /// Origin-form target as sent: path plus optional `?query`.
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header `(name, value)` pairs in arrival order; names unchanged.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length` body (empty when none was declared).
    pub body: Vec<u8>,
}

impl Request {
    /// Path component of the target (before any `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// Raw query string (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// First header with this name, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection must close after this request: explicit
    /// `Connection: close`, or HTTP/1.0 without `keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }

    /// Decoded `key=value` pairs of the query string. Plus signs and
    /// `%XX` escapes are decoded; malformed escapes pass through as-is.
    pub fn query_params(&self) -> Vec<(String, String)> {
        let Some(q) = self.query() else {
            return Vec::new();
        };
        q.split('&')
            .filter(|kv| !kv.is_empty())
            .map(|kv| {
                let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                (percent_decode(k), percent_decode(v))
            })
            .collect()
    }

    /// Value of the query parameter `name`, decoded.
    pub fn query_param(&self, name: &str) -> Option<String> {
        self.query_params()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

/// Decode `+` and `%XX` sequences (the browser/query-string convention).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // `bytes.get` bounds-checks: a '%' within two bytes of
                // the end has no full escape and passes through as-is.
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Typed parse failures, each carrying its HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Request line exceeded [`MAX_REQUEST_LINE`] → 431.
    RequestLineTooLong,
    /// Header block exceeded [`MAX_HEADER_BYTES`] / [`MAX_HEADERS`] → 431.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Structurally invalid request line → 400.
    BadRequestLine(String),
    /// Structurally invalid header line → 400.
    BadHeader(String),
    /// Unparseable or conflicting `Content-Length` → 400.
    BadContentLength,
    /// Malformed chunked framing (bad size line, missing CRLF after
    /// chunk data, over-long size line) → 400.
    BadChunk,
    /// A `Transfer-Encoding` other than plain `chunked` is recognized
    /// but not implemented → 501. Distinct from malformed input: the
    /// request is well-formed HTTP, this server just doesn't decode
    /// such bodies.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::RequestLineTooLong | ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::BadRequestLine(_)
            | ParseError::BadHeader(_)
            | ParseError::BadContentLength
            | ParseError::BadChunk => 400,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::RequestLineTooLong => write!(f, "request line too long"),
            ParseError::HeadersTooLarge => write!(f, "header block too large"),
            ParseError::BodyTooLarge => write!(f, "declared body too large"),
            ParseError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            ParseError::BadHeader(l) => write!(f, "malformed header: {l:?}"),
            ParseError::BadContentLength => write!(f, "bad content-length"),
            ParseError::BadChunk => write!(f, "malformed chunked framing"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Everything parsed before the body: request line + header block.
#[derive(Debug, Default)]
struct Head {
    method: String,
    target: String,
    http11: bool,
    headers: Vec<(String, String)>,
}

impl Head {
    fn into_request(self, body: Vec<u8>) -> Request {
        Request {
            method: self.method,
            target: self.target,
            http11: self.http11,
            headers: self.headers,
            body,
        }
    }
}

#[derive(Debug)]
enum Phase {
    /// Waiting for the CRLF ending the request line.
    Line,
    /// Request line parsed; collecting header lines.
    Headers {
        head: Head,
        /// Bytes of header block consumed so far (for the 431 bound).
        header_bytes: usize,
    },
    /// Headers done; waiting for `needed` `Content-Length` body bytes.
    Body { head: Head, needed: usize },
    /// Chunked body: waiting for the CRLF-terminated hex size line.
    ChunkSize { head: Head, body: Vec<u8> },
    /// Chunked body: waiting for `needed` data bytes plus their CRLF.
    ChunkData {
        head: Head,
        body: Vec<u8>,
        needed: usize,
    },
    /// Terminal chunk seen; discarding trailer lines until the blank.
    ChunkTrailer {
        head: Head,
        body: Vec<u8>,
        /// Bytes of trailer block consumed so far (431 bound, same
        /// budget as the header block).
        trailer_bytes: usize,
    },
    /// A previous feed errored; the connection is poisoned.
    Failed,
}

/// Incremental request parser. Feed arbitrary byte chunks; complete
/// requests pop out in order, surplus bytes carry over.
#[derive(Debug)]
pub struct Parser {
    buf: Vec<u8>,
    phase: Phase,
}

impl Default for Parser {
    fn default() -> Parser {
        Parser::new()
    }
}

impl Parser {
    /// A parser at the start of a request.
    pub fn new() -> Parser {
        Parser {
            buf: Vec::new(),
            phase: Phase::Line,
        }
    }

    /// True when no partial request is buffered (safe to idle-reap the
    /// connection without losing anything).
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Line) && self.buf.is_empty()
    }

    /// Feed `bytes`; returns a complete request as soon as one is
    /// buffered (`Ok(None)` = need more input). After an `Err` the
    /// parser is poisoned — the connection must be closed, since byte
    /// framing can no longer be trusted.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        if matches!(self.phase, Phase::Failed) {
            return Err(ParseError::BadRequestLine("parser poisoned".into()));
        }
        self.buf.extend_from_slice(bytes);
        match self.drive() {
            Ok(out) => Ok(out),
            Err(e) => {
                self.phase = Phase::Failed;
                self.buf.clear();
                Err(e)
            }
        }
    }

    fn drive(&mut self) -> Result<Option<Request>, ParseError> {
        loop {
            match &mut self.phase {
                Phase::Failed => unreachable!("checked in feed"),
                Phase::Line => {
                    let Some(line_end) = find_crlf(&self.buf, MAX_REQUEST_LINE) else {
                        if self.buf.len() > MAX_REQUEST_LINE {
                            return Err(ParseError::RequestLineTooLong);
                        }
                        return Ok(None);
                    };
                    let line = self.buf.drain(..line_end + 2).collect::<Vec<u8>>();
                    let line = &line[..line_end];
                    // Be lenient to one stray CRLF between pipelined
                    // requests (RFC 9112 §2.2 allows ignoring it).
                    if line.is_empty() {
                        continue;
                    }
                    let (method, target, http11) = parse_request_line(line)?;
                    self.phase = Phase::Headers {
                        head: Head {
                            method,
                            target,
                            http11,
                            headers: Vec::new(),
                        },
                        header_bytes: 0,
                    };
                }
                Phase::Headers { head, header_bytes } => {
                    let budget = MAX_HEADER_BYTES
                        .checked_sub(*header_bytes)
                        .ok_or(ParseError::HeadersTooLarge)?;
                    let Some(line_end) = find_crlf(&self.buf, budget) else {
                        if self.buf.len() > budget {
                            return Err(ParseError::HeadersTooLarge);
                        }
                        return Ok(None);
                    };
                    // Reject a line that would push the block past the
                    // cap *before* consuming it, so `header_bytes` can
                    // never exceed `MAX_HEADER_BYTES` (`find_crlf`'s
                    // horizon extends 2 bytes past the budget, which
                    // would otherwise let `header_bytes` overshoot and
                    // underflow the subtraction above).
                    if line_end + 2 > budget {
                        return Err(ParseError::HeadersTooLarge);
                    }
                    let line = self.buf.drain(..line_end + 2).collect::<Vec<u8>>();
                    let line = &line[..line_end];
                    *header_bytes += line_end + 2;
                    if line.is_empty() {
                        // End of headers: figure out the body framing.
                        let head = std::mem::take(head);
                        self.phase = match body_framing(&head.headers)? {
                            Framing::Sized(needed) => {
                                if needed > MAX_BODY_BYTES {
                                    return Err(ParseError::BodyTooLarge);
                                }
                                Phase::Body { head, needed }
                            }
                            Framing::Chunked => Phase::ChunkSize {
                                head,
                                body: Vec::new(),
                            },
                        };
                        continue;
                    }
                    if head.headers.len() >= MAX_HEADERS {
                        return Err(ParseError::HeadersTooLarge);
                    }
                    head.headers.push(parse_header_line(line)?);
                }
                Phase::Body { head, needed } => {
                    if self.buf.len() < *needed {
                        return Ok(None);
                    }
                    let body = self.buf.drain(..*needed).collect();
                    let request = std::mem::take(head).into_request(body);
                    self.phase = Phase::Line;
                    return Ok(Some(request));
                }
                Phase::ChunkSize { head, body } => {
                    let Some(line_end) = find_crlf(&self.buf, MAX_CHUNK_LINE) else {
                        if self.buf.len() > MAX_CHUNK_LINE {
                            return Err(ParseError::BadChunk);
                        }
                        return Ok(None);
                    };
                    let line = self.buf.drain(..line_end + 2).collect::<Vec<u8>>();
                    let size = parse_chunk_size(&line[..line_end])?;
                    if size > MAX_BODY_BYTES as u64
                        || body.len() + size as usize > MAX_BODY_BYTES
                    {
                        return Err(ParseError::BodyTooLarge);
                    }
                    let head = std::mem::take(head);
                    let body = std::mem::take(body);
                    self.phase = if size == 0 {
                        Phase::ChunkTrailer {
                            head,
                            body,
                            trailer_bytes: 0,
                        }
                    } else {
                        Phase::ChunkData {
                            head,
                            body,
                            needed: size as usize,
                        }
                    };
                }
                Phase::ChunkData { head, body, needed } => {
                    // The chunk's data bytes plus the CRLF that must
                    // immediately follow them.
                    if self.buf.len() < *needed + 2 {
                        return Ok(None);
                    }
                    let mut chunk = self.buf.drain(..*needed + 2).collect::<Vec<u8>>();
                    if chunk[*needed..] != *b"\r\n" {
                        return Err(ParseError::BadChunk);
                    }
                    chunk.truncate(*needed);
                    body.extend_from_slice(&chunk);
                    self.phase = Phase::ChunkSize {
                        head: std::mem::take(head),
                        body: std::mem::take(body),
                    };
                }
                Phase::ChunkTrailer {
                    head,
                    body,
                    trailer_bytes,
                } => {
                    let budget = MAX_HEADER_BYTES
                        .checked_sub(*trailer_bytes)
                        .ok_or(ParseError::HeadersTooLarge)?;
                    let Some(line_end) = find_crlf(&self.buf, budget) else {
                        if self.buf.len() > budget {
                            return Err(ParseError::HeadersTooLarge);
                        }
                        return Ok(None);
                    };
                    if line_end + 2 > budget {
                        return Err(ParseError::HeadersTooLarge);
                    }
                    let line = self.buf.drain(..line_end + 2).collect::<Vec<u8>>();
                    let line = &line[..line_end];
                    *trailer_bytes += line_end + 2;
                    if line.is_empty() {
                        let request =
                            std::mem::take(head).into_request(std::mem::take(body));
                        self.phase = Phase::Line;
                        return Ok(Some(request));
                    }
                    // Trailer fields must be well-formed headers, but the
                    // router never consults them: validate and discard.
                    parse_header_line(line)?;
                }
            }
        }
    }
}

/// Hex chunk size with optional `;ext=...` extensions (ignored).
fn parse_chunk_size(line: &[u8]) -> Result<u64, ParseError> {
    let text = std::str::from_utf8(line).map_err(|_| ParseError::BadChunk)?;
    let size = text.split(';').next().unwrap_or("").trim_matches([' ', '\t']);
    if size.is_empty() || !size.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ParseError::BadChunk);
    }
    u64::from_str_radix(size, 16).map_err(|_| ParseError::BadChunk)
}

/// Position of the first CRLF within the first `max + 2` bytes.
fn find_crlf(buf: &[u8], max: usize) -> Option<usize> {
    let horizon = buf.len().min(max.saturating_add(2));
    buf[..horizon].windows(2).position(|w| w == b"\r\n")
}

fn is_token_byte(b: u8) -> bool {
    // RFC 9110 token characters.
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn parse_request_line(line: &[u8]) -> Result<(String, String, bool), ParseError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ParseError::BadRequestLine(String::from_utf8_lossy(line).into_owned()))?;
    let bad = || ParseError::BadRequestLine(text.to_string());
    let mut parts = text.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(bad()),
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(bad());
    }
    // Origin-form targets only (no authority/absolute forms): visible
    // ASCII starting with '/', or the literal '*' for OPTIONS.
    let target_ok = (target.starts_with('/') || target == "*")
        && target.bytes().all(|b| (0x21..=0x7e).contains(&b));
    if !target_ok {
        return Err(bad());
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(bad()),
    };
    Ok((method.to_string(), target.to_string(), http11))
}

fn parse_header_line(line: &[u8]) -> Result<(String, String), ParseError> {
    let text = std::str::from_utf8(line)
        .map_err(|_| ParseError::BadHeader(String::from_utf8_lossy(line).into_owned()))?;
    let bad = || ParseError::BadHeader(text.to_string());
    let (name, value) = text.split_once(':').ok_or_else(bad)?;
    // No whitespace is allowed between field name and colon (RFC 9112
    // §5.1 — it has been used for request smuggling).
    if name.is_empty() || !name.bytes().all(is_token_byte) {
        return Err(bad());
    }
    let value = value.trim_matches([' ', '\t']);
    // Field values: visible ASCII plus SP/HTAB (obs-text rejected).
    if !value.bytes().all(|b| b == b' ' || b == b'\t' || (0x21..=0x7e).contains(&b)) {
        return Err(bad());
    }
    Ok((name.to_string(), value.to_string()))
}

/// How the body is delimited on the wire.
#[derive(Debug, PartialEq, Eq)]
enum Framing {
    /// A `Content-Length` body of exactly this many bytes (0 when the
    /// header is absent).
    Sized(usize),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Body framing from the header block. Plain `chunked` is decoded; any
/// other coding (or a chain like `gzip, chunked`) is 501. A request
/// carrying both `Transfer-Encoding` and `Content-Length` is rejected
/// outright — the ambiguity is the classic smuggling vector (RFC 9112
/// §6.1).
fn body_framing(headers: &[(String, String)]) -> Result<Framing, ParseError> {
    let codings: Vec<String> = headers
        .iter()
        .filter(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
        .flat_map(|(_, v)| v.split(','))
        .map(|c| c.trim_matches([' ', '\t']).to_ascii_lowercase())
        .filter(|c| !c.is_empty())
        .collect();
    let has_length = headers
        .iter()
        .any(|(n, _)| n.eq_ignore_ascii_case("content-length"));
    if !codings.is_empty() {
        if has_length {
            return Err(ParseError::BadContentLength);
        }
        if codings != ["chunked"] {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        return Ok(Framing::Chunked);
    }
    let mut declared: Option<usize> = None;
    for (n, v) in headers {
        if n.eq_ignore_ascii_case("content-length") {
            let len: usize = v.parse().map_err(|_| ParseError::BadContentLength)?;
            if declared.is_some_and(|d| d != len) {
                return Err(ParseError::BadContentLength);
            }
            declared = Some(len);
        }
    }
    Ok(Framing::Sized(declared.unwrap_or(0)))
}

/// Standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added by
    /// [`Response::write_to`]).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty-bodied response.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: String) -> Response {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// Builder: add one header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Builder: set the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Serialize onto `w` (HTTP/1.1, explicit `Content-Length`, and a
    /// `Connection` header matching `close`). Returns bytes written.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> std::io::Result<u64> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            reason_phrase(self.status)
        );
        for (n, v) in &self.headers {
            head.push_str(n);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if close {
            "Connection: close\r\n"
        } else {
            "Connection: keep-alive\r\n"
        });
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok((head.len() + self.body.len()) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(raw: &[u8]) -> Result<Option<Request>, ParseError> {
        Parser::new().feed(raw)
    }

    #[test]
    fn parses_simple_get() {
        let req = parse_one(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/stats");
        assert_eq!(req.query(), None);
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(!req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_string_with_escapes() {
        let req = parse_one(b"GET /search/all-fields?q=mask+mandates%21&page=2 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/search/all-fields");
        assert_eq!(req.query_param("q").as_deref(), Some("mask mandates!"));
        assert_eq!(req.query_param("page").as_deref(), Some("2"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn one_byte_at_a_time_yields_the_same_request() {
        let raw = b"POST /ingest?n=3 HTTP/1.1\r\nContent-Length: 5\r\nX-A: b\r\n\r\nhello";
        let whole = parse_one(raw).unwrap().unwrap();
        let mut p = Parser::new();
        let mut split = None;
        for (i, b) in raw.iter().enumerate() {
            match p.feed(std::slice::from_ref(b)).unwrap() {
                Some(req) => {
                    assert_eq!(i, raw.len() - 1, "completes exactly on the last byte");
                    split = Some(req);
                }
                None => assert!(i < raw.len() - 1),
            }
        }
        assert_eq!(split.unwrap(), whole);
        assert_eq!(whole.body, b"hello");
    }

    #[test]
    fn pipelined_requests_pop_in_order() {
        let mut p = Parser::new();
        let first = p
            .feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(first.target, "/a");
        let second = p.feed(b"").unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert!(p.feed(b"").unwrap().is_none());
        assert!(p.is_idle());
    }

    #[test]
    fn connection_close_semantics() {
        let close = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(close.wants_close());
        let http10 = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(http10.wants_close(), "HTTP/1.0 defaults to close");
        let http10_ka = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!http10_ka.wants_close());
    }

    #[test]
    fn oversized_inputs_map_to_431_and_413() {
        let mut long_line = Vec::from(&b"GET /"[..]);
        long_line.resize(MAX_REQUEST_LINE + 10, b'a');
        let err = parse_one(&long_line).unwrap_err();
        assert_eq!(err, ParseError::RequestLineTooLong);
        assert_eq!(err.status(), 431);

        let mut many_headers = Vec::from(&b"GET / HTTP/1.1\r\n"[..]);
        for i in 0..(MAX_HEADERS + 1) {
            many_headers.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        many_headers.extend_from_slice(b"\r\n");
        let err = parse_one(&many_headers).unwrap_err();
        assert_eq!(err, ParseError::HeadersTooLarge);
        assert_eq!(err.status(), 431);

        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_one(big.as_bytes()).unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge);
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn header_budget_boundary_fails_clean_with_431() {
        // A header line consuming exactly the remaining budget (or one
        // or two bytes past it — `find_crlf`'s horizon allows the CRLF
        // to land there) used to underflow the budget subtraction on
        // the next iteration. All three offsets must be a clean 431.
        for over in 0..=2usize {
            // "X-P: " (5) + value + CRLF (2) consumes MAX_HEADER_BYTES + over.
            let value_len = MAX_HEADER_BYTES + over - 7;
            let mut raw = Vec::from(&b"GET / HTTP/1.1\r\nX-P: "[..]);
            raw.resize(raw.len() + value_len, b'a');
            raw.extend_from_slice(b"\r\n\r\n");
            let err = parse_one(&raw).expect_err(&format!("over={over}"));
            assert_eq!(err, ParseError::HeadersTooLarge, "over={over}");
            assert_eq!(err.status(), 431);
        }
        // A block that fits exactly (header lines + terminator ==
        // MAX_HEADER_BYTES) still parses.
        let value_len = MAX_HEADER_BYTES - 9;
        let mut raw = Vec::from(&b"GET / HTTP/1.1\r\nX-P: "[..]);
        raw.resize(raw.len() + value_len, b'a');
        raw.extend_from_slice(b"\r\n\r\n");
        let req = parse_one(&raw).unwrap().expect("complete");
        assert_eq!(req.header("X-P").map(str::len), Some(value_len));
    }

    #[test]
    fn malformed_inputs_map_to_400() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET /a b HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
        ] {
            let err = parse_one(raw).expect_err(&format!("{:?}", String::from_utf8_lossy(raw)));
            assert_eq!(err.status(), 400, "{err:?}");
        }
    }

    #[test]
    fn chunked_bodies_decode() {
        let raw = b"POST /ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let req = parse_one(raw).unwrap().expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"Wikipedia");

        // Empty chunked body, uppercase hex, and chunk extensions.
        let req = parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n")
            .unwrap()
            .expect("complete");
        assert!(req.body.is_empty());
        let req = parse_one(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nA;name=v\r\n0123456789\r\n0\r\n\r\n",
        )
        .unwrap()
        .expect("complete");
        assert_eq!(req.body, b"0123456789");
    }

    #[test]
    fn chunked_body_one_byte_at_a_time() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let whole = parse_one(raw).unwrap().unwrap();
        let mut p = Parser::new();
        let mut split = None;
        for (i, b) in raw.iter().enumerate() {
            if let Some(req) = p.feed(std::slice::from_ref(b)).unwrap() {
                assert_eq!(i, raw.len() - 1, "completes exactly on the last byte");
                split = Some(req);
            }
        }
        assert_eq!(split.unwrap(), whole);
        assert_eq!(whole.body, b"abcde");
    }

    #[test]
    fn chunked_trailers_are_validated_and_discarded() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    5\r\nhello\r\n0\r\nX-Checksum: abc\r\nX-Other: y\r\n\r\n";
        let req = parse_one(raw).unwrap().expect("complete");
        assert_eq!(req.body, b"hello");
        assert_eq!(req.header("X-Checksum"), None, "trailers are not promoted");

        // A malformed trailer line poisons the connection like any
        // malformed header.
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                    0\r\nNoColonHere\r\n\r\n";
        assert_eq!(parse_one(raw).unwrap_err().status(), 400);
    }

    #[test]
    fn keep_alive_continues_after_a_chunked_request() {
        let mut p = Parser::new();
        let first = p
            .feed(
                b"POST /a HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                  2\r\nhi\r\n0\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
            )
            .unwrap()
            .unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(first.body, b"hi");
        assert!(!first.wants_close());
        let second = p.feed(b"").unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert!(p.is_idle());
    }

    #[test]
    fn chunked_bodies_are_size_capped_with_413() {
        // One chunk over the cap.
        let raw = format!(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = parse_one(raw.as_bytes()).unwrap_err();
        assert_eq!(err, ParseError::BodyTooLarge);
        assert_eq!(err.status(), 413);

        // Many small chunks accumulating past the cap fail as soon as
        // the size lines alone reveal the overflow.
        let mut p = Parser::new();
        p.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap();
        let chunk = format!("{:x}\r\n{}\r\n", 1024, "a".repeat(1024));
        let mut err = None;
        for _ in 0..=(MAX_BODY_BYTES / 1024) {
            match p.feed(chunk.as_bytes()) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(ParseError::BodyTooLarge));
    }

    #[test]
    fn malformed_chunked_framing_maps_to_400() {
        for raw in [
            // Non-hex size line.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n"[..],
            // Empty size line.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\n\r\n",
            // Chunk data not followed by CRLF.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabXX0\r\n\r\n",
            // Both framings at once: the smuggling vector.
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n",
        ] {
            let err = parse_one(raw).expect_err(&format!("{:?}", String::from_utf8_lossy(raw)));
            assert_eq!(err.status(), 400, "{err:?}");
        }

        // A size line that never terminates is bounded by MAX_CHUNK_LINE.
        let mut raw = Vec::from(&b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..]);
        raw.resize(raw.len() + MAX_CHUNK_LINE + 8, b'1');
        let err = parse_one(&raw).unwrap_err();
        assert_eq!(err, ParseError::BadChunk);
    }

    #[test]
    fn other_transfer_encodings_still_map_to_501() {
        // Well-formed HTTP we deliberately don't implement: only plain
        // `chunked` is decoded; anything else (including a chain that
        // ends in chunked) stays 501.
        for raw in [
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"[..],
            b"POST / HTTP/1.1\r\ntransfer-encoding: gzip, chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let err = parse_one(raw).expect_err(&format!("{:?}", String::from_utf8_lossy(raw)));
            assert_eq!(err, ParseError::UnsupportedTransferEncoding);
            assert_eq!(err.status(), 501, "{err:?}");
        }
        assert_eq!(reason_phrase(501), "Not Implemented");
    }

    #[test]
    fn poisoned_parser_stays_failed() {
        let mut p = Parser::new();
        assert!(p.feed(b"BAD LINE\r\n\r\n").is_err());
        assert!(p.feed(b"GET / HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        let n = Response::json(200, "{\"x\":1}".into())
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"));
        assert_eq!(n, text.len() as u64);

        let mut out = Vec::new();
        Response::new(503)
            .with_header("Retry-After", "1")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    #[test]
    fn percent_decode_handles_edges() {
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("%41%62"), "Ab");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode(""), "");
    }
}
