//! Minimal blocking HTTP/1.1 client over `std::net::TcpStream`.
//!
//! Exists so the repo can test and load-drive its own wire protocol
//! end-to-end with no external tooling (`curl`, `ab`, …). Supports
//! exactly what the server speaks: GET over keep-alive connections,
//! `Content-Length` bodies, `Connection: close` teardown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as seen on the wire.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header with this name, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Whether the server asked to close the connection.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// Connect with `timeout` applied to connect, reads and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            addr,
            timeout,
        })
    }

    /// The server this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Send `GET target` and read the full response. Reconnects once
    /// transparently if the server closed the keep-alive connection
    /// under us (legal at any time per HTTP/1.1).
    pub fn get(&mut self, target: &str) -> std::io::Result<ClientResponse> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: covidkg\r\n\r\n");
        match self.round_trip(request.as_bytes()) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                *self = HttpClient::connect(self.addr, self.timeout)?;
                self.round_trip(request.as_bytes())
            }
        }
    }

    /// Write raw request bytes and read one response — for tests that
    /// need byte-level control (split writes, malformed input).
    pub fn send_raw(&mut self, raw: &[u8]) -> std::io::Result<ClientResponse> {
        self.round_trip(raw)
    }

    /// The raw stream, for tests that write a request in fragments.
    pub fn stream(&mut self) -> &mut TcpStream {
        self.reader.get_mut()
    }

    /// Read one response off the connection (pair with [`Self::stream`]
    /// writes).
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        read_response(&mut self.reader)
    }

    fn round_trip(&mut self, raw: &[u8]) -> std::io::Result<ClientResponse> {
        self.reader.get_mut().write_all(raw)?;
        self.reader.get_mut().flush()?;
        read_response(&mut self.reader)
    }
}

/// Parse one HTTP/1.1 response off `reader`.
pub fn read_response(reader: &mut impl BufRead) -> std::io::Result<ClientResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(bad("connection closed before status line"));
    }
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("bad status line: {line:?}")))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (n, v) = line
            .split_once(':')
            .ok_or_else(|| bad(&format!("bad header: {line:?}")))?;
        headers.push((n.trim().to_string(), v.trim().to_string()));
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}
