//! Connection supervisor: bounded accept, deadlines, idle reaping and
//! graceful drain over plain `std::net`.
//!
//! Two connection models share this front door, selected by
//! [`NetConfig::model`]:
//!
//! * [`ConnectionModel::Reactor`] (default) — the epoll event loop in
//!   [`crate::reactor`]: one reactor thread multiplexes every socket,
//!   a small dispatch pool runs the queries, and the connection
//!   ceiling is the fd budget (tens of thousands), not a thread count.
//! * [`ConnectionModel::Threaded`] — the legacy thread-per-connection
//!   supervisor kept for A/B benchmarking: the accept loop counts live
//!   connections and turns the overflow away immediately with
//!   `503 + Retry-After`; each connection thread reads with a short
//!   socket timeout so it can notice shutdown, idle expiry and
//!   read-deadline expiry between reads.
//!
//! Both models enforce the same protocol semantics: over-capacity
//! accepts get an honest 503 instead of an invisible kernel queue;
//! idle keep-alive connections are reaped; and the read deadline is
//! *cumulative per request* — the clock starts at the request's first
//! byte and is never reset by further arrivals, so a peer trickling
//! one byte per tick cannot hold the connection open. It gets an
//! honest 408 once the whole header+body transfer has taken longer
//! than `read_timeout` (slowloris protection).

use crate::http::{Parser, Response};
use crate::metrics::{WireMetrics, WireStats};
use crate::router::{error_response, handle, ReadContext};
use covidkg_serve::Server;
use std::io::{ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the front-end maps connections onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionModel {
    /// One epoll reactor thread multiplexing every socket plus a fixed
    /// dispatch pool — the connection ceiling is the fd budget.
    Reactor,
    /// Legacy thread-per-connection supervisor — the ceiling is
    /// `max_connections` OS threads. Kept for A/B comparison.
    Threaded,
}

/// Network front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind (use port 0 for an OS-assigned port).
    pub addr: SocketAddr,
    /// Maximum simultaneously open connections; excess accepts are
    /// answered `503 Retry-After: 1` and closed.
    pub max_connections: usize,
    /// Cumulative per-request read deadline: a request whose bytes
    /// (header + body) have not all arrived within this long of its
    /// first byte is answered 408 — trickling progress does not extend
    /// it (slowloris protection).
    pub read_timeout: Duration,
    /// Socket-level bound on blocking writes.
    pub write_timeout: Duration,
    /// A keep-alive connection idle (no partial request buffered)
    /// longer than this is reaped.
    pub idle_timeout: Duration,
    /// Connection-to-thread mapping (reactor by default).
    pub model: ConnectionModel,
    /// Dispatch workers for the reactor model (0 = size to cores,
    /// minimum 4). Ignored by the threaded model.
    pub dispatch_workers: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            // Under the reactor a connection is ~1 KiB of state, not a
            // thread: the default cap is an fd budget, not a thread
            // count (the threaded seed shipped 64 here).
            max_connections: 10_000,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            model: ConnectionModel::Reactor,
            dispatch_workers: 0,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) serve: Arc<Server>,
    pub(crate) config: NetConfig,
    pub(crate) wire: WireMetrics,
    /// Lag-aware read routing across a replica pool, when configured.
    pub(crate) repl: Option<ReadContext>,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) active: AtomicU64,
}

/// A running HTTP front-end. Dropping it (or calling
/// [`HttpServer::shutdown`]) drains in-flight requests and joins every
/// thread.
pub struct HttpServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    backend: Backend,
}

/// Per-model supervisor handle, joined on shutdown.
enum Backend {
    Threaded { accept_handle: Option<JoinHandle<()>> },
    Reactor { handle: crate::reactor::ReactorHandle },
}

impl HttpServer {
    /// Bind `config.addr` and start accepting.
    pub fn start(serve: Arc<Server>, config: NetConfig) -> std::io::Result<HttpServer> {
        HttpServer::start_routed(serve, None, config)
    }

    /// Like [`HttpServer::start`], but `/search/*` reads are routed
    /// lag-aware through a replica pool and `/metrics` carries the
    /// replication series. `serve` remains the node's local server for
    /// `/kg/node`, `/stats` and the serve-layer metrics.
    pub fn start_routed(
        serve: Arc<Server>,
        repl: Option<ReadContext>,
        config: NetConfig,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let model = config.model;
        let shared = Arc::new(Shared {
            serve,
            config,
            wire: WireMetrics::default(),
            repl,
            shutting_down: AtomicBool::new(false),
            active: AtomicU64::new(0),
        });
        let backend = match model {
            ConnectionModel::Reactor => Backend::Reactor {
                handle: crate::reactor::spawn(listener, Arc::clone(&shared))?,
            },
            ConnectionModel::Threaded => {
                let accept_shared = Arc::clone(&shared);
                let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> =
                    Arc::new(Mutex::new(Vec::new()));
                let accept_handle = std::thread::Builder::new()
                    .name("covidkg-net-accept".into())
                    .spawn(move || accept_loop(listener, accept_shared, conn_threads))
                    .expect("spawn accept thread");
                Backend::Threaded {
                    accept_handle: Some(accept_handle),
                }
            }
        };
        Ok(HttpServer {
            shared,
            local_addr,
            backend,
        })
    }

    /// The bound address (with the OS-assigned port when 0 was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wire-level counters.
    pub fn wire_stats(&self) -> WireStats {
        self.shared.wire.snapshot()
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    /// Idempotent. The serve-layer [`Server`] is left running — it is
    /// owned by the caller.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        match &mut self.backend {
            Backend::Reactor { handle } => handle.shutdown(),
            Backend::Threaded { accept_handle } => {
                // Wake the accept loop: it blocks in accept(), so poke
                // it with one throwaway connection aimed at ourselves.
                let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
                if let Some(h) = accept_handle.take() {
                    let _ = h.join();
                }
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.wire.connection_opened();
        // Over capacity: reject *now* with an honest 503 instead of
        // parking the peer in an invisible queue.
        if shared.active.load(Ordering::Acquire) >= shared.config.max_connections as u64 {
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let resp = error_response(503, "connection limit reached").with_header("Retry-After", "1");
            let mut s = stream;
            if let Ok(n) = resp.write_to(&mut s, true) {
                shared.wire.wrote(n);
            }
            shared.wire.responded(503);
            let _ = s.shutdown(Shutdown::Both);
            shared.wire.connection_closed();
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("covidkg-net-conn".into())
            .spawn(move || {
                // Slot release lives in a drop guard so a panic
                // unwinding out of serve_connection still returns the
                // connection-cap slot instead of leaking it forever.
                let _slot = SlotGuard(Arc::clone(&conn_shared));
                serve_connection(stream, &conn_shared);
            })
            .expect("spawn connection thread");
        let mut threads = conn_threads.lock().unwrap_or_else(|e| e.into_inner());
        threads.push(handle);
        // Opportunistically sweep finished threads so the vec stays
        // proportional to *live* connections, not total accepted.
        threads.retain(|h| !h.is_finished());
    }
    // Drain: every connection thread observes `shutting_down` within
    // one read-timeout tick, finishes its in-flight request, and exits.
    let threads = std::mem::take(&mut *conn_threads.lock().unwrap_or_else(|e| e.into_inner()));
    for h in threads {
        let _ = h.join();
    }
}

/// Releases a connection's slot in the accept cap (and records the
/// close) on every exit path of its thread — including panics, which
/// would otherwise leak the slot until the cap starved out at 503.
struct SlotGuard(Arc<Shared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
        self.0.wire.connection_closed();
    }
}

/// Read-timeout tick: short enough that shutdown and reaping are
/// prompt, long enough to stay off the scheduler's back.
const TICK: Duration = Duration::from_millis(50);

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut parser = Parser::new();
    let mut buf = [0u8; 16 * 1024];
    // `last_activity` tracks the last byte received — the *idle* reap
    // clock. `request_start` pins the first byte of the in-flight
    // request: the cumulative read deadline is measured from there and
    // deliberately never reset by later arrivals, so slow-loris
    // trickling cannot extend it.
    let mut last_activity = Instant::now();
    let mut request_start: Option<Instant> = None;
    loop {
        // Flush any requests already buffered (pipelining) before
        // blocking on the socket again.
        loop {
            match parser.feed(&[]) {
                Ok(Some(req)) => {
                    request_start = None;
                    let close = req.wants_close() || shared.shutting_down.load(Ordering::Acquire);
                    let resp = handle(&shared.serve, &shared.wire.snapshot(), shared.repl.as_ref(), &req);
                    if !respond(&mut stream, shared, resp, close) {
                        return;
                    }
                    if close {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared.wire.parse_error();
                    respond(&mut stream, shared, error_response(e.status(), &e.to_string()), true);
                    return;
                }
            }
        }
        if shared.shutting_down.load(Ordering::Acquire) {
            // Keep-alive connection with nothing in flight: close.
            return;
        }
        if parser.is_idle() {
            request_start = None;
            if last_activity.elapsed() >= shared.config.idle_timeout {
                shared.wire.connection_reaped();
                return;
            }
        } else {
            // A partial request is buffered: its deadline runs from its
            // first byte, regardless of how recently bytes trickled in.
            let started = *request_start.get_or_insert_with(Instant::now);
            if started.elapsed() >= shared.config.read_timeout {
                respond(&mut stream, shared, error_response(408, "request read timed out"), true);
                return;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                shared.wire.read(n as u64);
                last_activity = Instant::now();
                if request_start.is_none() {
                    request_start = Some(last_activity);
                }
                match parser.feed(&buf[..n]) {
                    Ok(Some(req)) => {
                        request_start = None;
                        let close =
                            req.wants_close() || shared.shutting_down.load(Ordering::Acquire);
                        let resp =
                            handle(&shared.serve, &shared.wire.snapshot(), shared.repl.as_ref(), &req);
                        if !respond(&mut stream, shared, resp, close) {
                            return;
                        }
                        if close {
                            return;
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        shared.wire.parse_error();
                        respond(&mut stream, shared, error_response(e.status(), &e.to_string()), true);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Tick: loop back to the shutdown/idle/deadline checks.
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Write one response, recording bytes and status. Returns `false`
/// when the connection is unusable and must be dropped.
fn respond(stream: &mut TcpStream, shared: &Shared, resp: Response, close: bool) -> bool {
    let status = resp.status;
    match resp.write_to(stream, close) {
        Ok(n) => {
            shared.wire.wrote(n);
            shared.wire.responded(status);
            true
        }
        Err(_) => false,
    }
}
