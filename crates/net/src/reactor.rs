//! Event-driven connection core: one epoll reactor thread multiplexing
//! every socket, plus a small fixed dispatch pool for request handling.
//!
//! The legacy model in [`crate::server`] spends one OS thread per
//! connection, which caps the front-end at `max_connections` threads
//! (the seed shipped 64). This module replaces threads with *readiness*:
//! a single reactor thread parks in `epoll_wait`, and every connection
//! is a small state machine (`Reading → Dispatching → Writing →
//! KeepAlive`) advanced only when its socket is actually ready. The
//! ceiling becomes the process fd budget — tens of thousands of mostly
//! idle keep-alive connections cost a few hundred bytes each, not a
//! stack.
//!
//! Layout:
//!
//! * [`sys`] — raw `epoll_create1`/`epoll_ctl`/`epoll_wait` FFI. The
//!   repo is std-only, so the syscalls are declared directly against
//!   the C ABI rather than through the `libc` crate.
//! * [`TimerWheel`] — a hashed wheel holding every connection deadline
//!   (idle reap, cumulative slow-loris read deadline). Entries are
//!   lazy: firing re-checks the connection's real state and re-arms,
//!   so renewing activity never has to hunt down stale entries.
//! * [`DispatchPool`] — fixed worker threads that parse-complete
//!   requests route through ([`crate::router::handle`]) and serialize.
//!   The reactor thread itself never runs a query, so one slow search
//!   cannot stall accept, timers, or other connections' I/O.
//!
//! Ordering guarantee: responses leave a connection in request order.
//! One request per connection is in flight at a time; further pipelined
//! requests (and pre-serialized error responses, which must not jump
//! the queue) wait in a per-connection FIFO.
//!
//! The wire contract is byte-identical to the threaded model: same
//! router, same serializer, same 503/408/4xx shapes.

use crate::http::{Parser, Request};
use crate::router::{error_response, handle};
use crate::server::Shared;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Raw epoll FFI: the only platform-specific surface in the repo.
/// Declared directly (no `libc` crate) — the workspace is std-only.
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel `struct epoll_event`. Packed on x86-64 (the kernel ABI
    /// packs it there so 32- and 64-bit layouts match); natural
    /// alignment elsewhere.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Owned epoll instance; closed on drop.
    pub struct Epoll {
        fd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data };
            let ptr = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
            if unsafe { epoll_ctl(self.fd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, data)
        }

        pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, data)
        }

        pub fn del(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait for readiness; `Ok(0)` on timeout or signal interrupt.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

/// Timer-wheel granularity — also the `epoll_wait` timeout, so every
/// deadline is noticed within one tick even on a silent wire.
const WHEEL_TICK: Duration = Duration::from_millis(10);
/// Wheel circumference: `WHEEL_SLOTS * WHEEL_TICK` (2.56 s) per
/// revolution; farther deadlines simply re-insert when their slot
/// fires early (lazy hashed wheel).
const WHEEL_SLOTS: usize = 256;
/// Readiness events drained per `epoll_wait` call.
const MAX_EVENTS: usize = 256;
/// Parsed-but-undispatched requests a connection may queue before the
/// reactor stops reading from it (pipelining backpressure).
const PIPELINE_MAX: usize = 32;
/// `epoll_wait` user-data tag for the listening socket.
const LISTENER_DATA: u64 = u64::MAX;
/// `epoll_wait` user-data tag for the wake pipe (completions/shutdown).
const WAKE_DATA: u64 = u64::MAX - 1;

/// A deadline owned by connection `token`. `generation` fences entries
/// from earlier tenants of a reused slot.
struct TimerEntry {
    token: usize,
    generation: u64,
    deadline: Instant,
}

/// Hashed timer wheel. `schedule` is O(1); each tick visits one slot.
/// Entries are *hints*: on fire the reactor re-derives the connection's
/// true next deadline from its state, so stale entries (activity
/// renewed, request completed) are harmless.
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    cursor: usize,
    last_advance: Instant,
}

impl TimerWheel {
    fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            last_advance: now,
        }
    }

    fn schedule(&mut self, now: Instant, entry: TimerEntry) {
        let ahead = entry.deadline.saturating_duration_since(now);
        // Past deadlines land in the next slot (min 1 tick ahead):
        // firing re-evaluates state, so "a bit late" is safe, "never"
        // is not. Beyond one revolution, cap — the early fire re-arms.
        let ticks = ((ahead.as_millis() / WHEEL_TICK.as_millis()) as usize + 1)
            .clamp(1, WHEEL_SLOTS - 1);
        let slot = (self.cursor + ticks) % WHEEL_SLOTS;
        self.slots[slot].push(entry);
    }

    /// Advance the cursor up to `now`, appending entries whose deadline
    /// has passed to `due` and re-inserting early (wrapped) ones.
    fn advance(&mut self, now: Instant, due: &mut Vec<TimerEntry>) {
        while now.saturating_duration_since(self.last_advance) >= WHEEL_TICK {
            self.last_advance += WHEEL_TICK;
            self.cursor = (self.cursor + 1) % WHEEL_SLOTS;
            let slot = std::mem::take(&mut self.slots[self.cursor]);
            for entry in slot {
                if entry.deadline <= now {
                    due.push(entry);
                } else {
                    self.schedule(now, entry);
                }
            }
        }
    }
}

/// A unit of ordered output for one connection.
enum Work {
    /// A parsed request awaiting dispatch to the worker pool.
    Request(Request),
    /// A pre-serialized terminal response (parse error, 408) that must
    /// keep FIFO order behind any requests dispatched before it.
    Immediate { bytes: Vec<u8>, status: u16 },
}

/// A request handed to the dispatch pool.
struct Job {
    token: usize,
    generation: u64,
    request: Request,
    close: bool,
}

/// A serialized response coming back from the pool.
struct Completion {
    token: usize,
    generation: u64,
    bytes: Vec<u8>,
    status: u16,
    close: bool,
}

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    completions: Mutex<Vec<Completion>>,
}

/// Fixed worker threads running parse-complete requests through the
/// router and serializing the response off the reactor thread.
struct DispatchPool {
    state: Arc<PoolState>,
    workers: Vec<JoinHandle<()>>,
}

impl DispatchPool {
    fn new(threads: usize, shared: &Arc<Shared>, wake: &UnixStream) -> DispatchPool {
        let state = Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                let shared = Arc::clone(shared);
                let wake = wake.try_clone().expect("clone wake pipe");
                std::thread::Builder::new()
                    .name(format!("covidkg-net-dispatch-{i}"))
                    .spawn(move || worker_loop(state, shared, wake))
                    .expect("spawn dispatch worker")
            })
            .collect();
        DispatchPool { state, workers }
    }

    fn submit(&self, job: Job) {
        let mut queue = self.state.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(job);
        drop(queue);
        self.state.ready.notify_one();
    }

    fn take_completions(&self, into: &mut Vec<Completion>) {
        let mut done = self.state.completions.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut done);
    }

    fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(state: Arc<PoolState>, shared: Arc<Shared>, mut wake: UnixStream) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = state.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.wire.dispatch_dequeued();
        // A panicking handler must cost the peer one 500, not the pool
        // a worker.
        let resp = catch_unwind(AssertUnwindSafe(|| {
            handle(
                &shared.serve,
                &shared.wire.snapshot(),
                shared.repl.as_ref(),
                &job.request,
            )
        }))
        .unwrap_or_else(|_| error_response(500, "request handler panicked"));
        let status = resp.status;
        let mut bytes = Vec::with_capacity(512);
        resp.write_to(&mut bytes, job.close)
            .expect("serializing to a Vec cannot fail");
        let mut done = state.completions.lock().unwrap_or_else(|e| e.into_inner());
        done.push(Completion {
            token: job.token,
            generation: job.generation,
            bytes,
            status,
            close: job.close,
        });
        drop(done);
        // One byte on the wake pipe pulls the reactor out of
        // epoll_wait. WouldBlock means the pipe is already full of
        // wakeups — the reactor is guaranteed to drain completions on
        // that pending wakeup, so dropping this byte is safe.
        let _ = wake.write(&[1]);
    }
}

/// Per-connection state machine. The phase is implicit in the fields:
/// Reading (parser mid-request), Dispatching (`in_flight`), Writing
/// (`write_buf` non-empty), KeepAlive (all quiet).
struct Conn {
    stream: TcpStream,
    generation: u64,
    parser: Parser,
    /// Parsed requests (and terminal error responses) not yet
    /// dispatched, in arrival order.
    pending: VecDeque<Work>,
    /// One request is at the workers; its completion gates `pending`.
    in_flight: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_flush: bool,
    /// Parser poisoned (or 408 sent): stop reading, flush, close.
    poisoned: bool,
    peer_closed: bool,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Last byte received or written — the idle-reap clock.
    last_activity: Instant,
    /// First byte of the in-flight *partial* request. The cumulative
    /// read deadline runs from here and is never reset by trickling
    /// arrivals (slow-loris protection, PR 7 semantics).
    request_start: Option<Instant>,
    /// Reads suspended for pipeline backpressure (`pending` full). The
    /// stall is the server's doing, so the cumulative read deadline is
    /// held while this is set and re-pinned when reads resume — a
    /// well-behaved pipelining client must not collect a 408 for our
    /// backlog.
    read_paused: bool,
    /// Last write progress while `write_buf` is non-empty (`None` when
    /// flushed). A peer that accepts no response bytes for
    /// `write_timeout` is cut off — the reactor's analog of the
    /// threaded model's per-call socket write deadline.
    write_start: Option<Instant>,
    /// Outstanding wheel entries pointing at this connection.
    timers: u32,
}

impl Conn {
    fn next_deadline(
        &self,
        read_timeout: Duration,
        write_timeout: Duration,
        idle_timeout: Duration,
    ) -> Instant {
        let mut deadline = match self.request_start {
            Some(start) => start + read_timeout,
            None => self.last_activity + idle_timeout,
        };
        if let Some(write_start) = self.write_start {
            deadline = deadline.min(write_start + write_timeout);
        }
        deadline
    }
}

/// Handle held by [`crate::server::HttpServer`]: wake writer + thread.
pub(crate) struct ReactorHandle {
    wake: UnixStream,
    thread: Option<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Wake the reactor (it re-checks `shutting_down`) and join it.
    /// The caller sets the flag first.
    pub(crate) fn shutdown(&mut self) {
        let _ = (&self.wake).write(&[1]);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Spawn the reactor thread and its dispatch pool over an already-bound
/// listener.
pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let epoll = sys::Epoll::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, LISTENER_DATA)?;
    epoll.add(wake_rx.as_raw_fd(), sys::EPOLLIN, WAKE_DATA)?;
    let workers = match shared.config.dispatch_workers {
        0 => std::thread::available_parallelism().map_or(4, |n| n.get()).max(4),
        n => n,
    };
    let pool = DispatchPool::new(workers, &shared, &wake_tx);
    let now = Instant::now();
    let reactor = Reactor {
        epoll,
        listener: Some(listener),
        wake_rx,
        shared,
        conns: Vec::new(),
        free: Vec::new(),
        live: 0,
        next_generation: 0,
        wheel: TimerWheel::new(now),
        pool: Some(pool),
        draining: false,
    };
    let thread = std::thread::Builder::new()
        .name("covidkg-net-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(ReactorHandle {
        wake: wake_tx,
        thread: Some(thread),
    })
}

struct Reactor {
    epoll: sys::Epoll,
    /// Dropped (fd closed, accept queue refused) when drain begins.
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    /// Slab: connection token = slot index; `None` slots are free.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    next_generation: u64,
    wheel: TimerWheel,
    pool: Option<DispatchPool>,
    draining: bool,
}

impl Reactor {
    fn run(mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let mut scratch = vec![0u8; 64 * 1024];
        let mut completions: Vec<Completion> = Vec::new();
        let mut due: Vec<TimerEntry> = Vec::new();
        // Err from wait means the epoll fd is gone; nothing left to
        // supervise.
        while let Ok(n) = self.epoll.wait(&mut events, WHEEL_TICK.as_millis() as i32) {
            self.shared.wire.epoll_wakeup(n);
            let now = Instant::now();
            for ev in &events[..n] {
                // Copy out of the (possibly packed) struct first.
                let data = { ev.data };
                let bits = { ev.events };
                match data {
                    LISTENER_DATA => self.accept_ready(now),
                    WAKE_DATA => self.drain_wake(),
                    token => self.conn_ready(token as usize, bits, now, &mut scratch),
                }
            }
            completions.clear();
            if let Some(pool) = &self.pool {
                pool.take_completions(&mut completions);
            }
            for c in completions.drain(..) {
                self.complete(c, now);
            }
            due.clear();
            self.wheel.advance(now, &mut due);
            for entry in due.drain(..) {
                self.fire_timer(entry, now);
            }
            if self.shared.shutting_down.load(Ordering::Acquire) {
                if !self.draining {
                    self.begin_drain();
                }
                if self.live == 0 {
                    break;
                }
            }
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }

    /// Accept every queued connection: admit into the slab or turn away
    /// with the honest `503 + Retry-After` once past the cap.
    fn accept_ready(&mut self, now: Instant) {
        loop {
            let (stream, _) = match self.listener.as_ref().map(|l| l.accept()) {
                Some(Ok(pair)) => pair,
                Some(Err(e)) if e.kind() == ErrorKind::WouldBlock => return,
                Some(Err(e)) if e.kind() == ErrorKind::Interrupted => continue,
                Some(Err(_)) => continue,
                None => return, // draining: listener already closed
            };
            self.shared.wire.connection_opened();
            if self.live >= self.shared.config.max_connections || self.draining {
                self.reject(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                self.shared.wire.connection_closed();
                continue;
            }
            let _ = stream.set_nodelay(true);
            self.next_generation += 1;
            let conn = Conn {
                stream,
                generation: self.next_generation,
                parser: Parser::new(),
                pending: VecDeque::new(),
                in_flight: false,
                write_buf: Vec::new(),
                write_pos: 0,
                close_after_flush: false,
                poisoned: false,
                peer_closed: false,
                interest: sys::EPOLLIN | sys::EPOLLRDHUP,
                last_activity: now,
                request_start: None,
                read_paused: false,
                write_start: None,
                timers: 0,
            };
            let token = match self.free.pop() {
                Some(t) => {
                    self.conns[t] = Some(conn);
                    t
                }
                None => {
                    self.conns.push(Some(conn));
                    self.conns.len() - 1
                }
            };
            let c = self.conns[token].as_ref().expect("just inserted");
            if self
                .epoll
                .add(c.stream.as_raw_fd(), c.interest, token as u64)
                .is_err()
            {
                self.conns[token] = None;
                self.free.push(token);
                self.shared.wire.connection_closed();
                continue;
            }
            self.live += 1;
            self.shared.active.fetch_add(1, Ordering::AcqRel);
            self.arm_timer(token, now);
        }
    }

    /// Over-capacity accept: answer 503 now instead of parking the peer
    /// in an invisible kernel queue. The freshly accepted socket is
    /// still blocking, so a bounded synchronous write is fine.
    fn reject(&self, stream: TcpStream) {
        let _ = stream.set_write_timeout(Some(self.shared.config.write_timeout));
        let resp = error_response(503, "connection limit reached").with_header("Retry-After", "1");
        let mut s = stream;
        if let Ok(n) = resp.write_to(&mut s, true) {
            self.shared.wire.wrote(n);
        }
        self.shared.wire.responded(503);
        let _ = s.shutdown(Shutdown::Both);
        self.shared.wire.connection_closed();
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Socket readiness for connection `token`.
    fn conn_ready(&mut self, token: usize, bits: u32, now: Instant, scratch: &mut [u8]) {
        if self.conns.get(token).is_none_or(|c| c.is_none()) {
            return; // closed earlier this same wakeup; stale event
        }
        if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(token);
            return;
        }
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !self.read_ready(token, now, scratch) {
            return;
        }
        self.pump(token, now);
    }

    /// Drain the socket into the parser. Returns `false` when the
    /// connection was closed.
    fn read_ready(&mut self, token: usize, now: Instant, scratch: &mut [u8]) -> bool {
        let mut fatal = false;
        let conn = self.conns[token].as_mut().expect("checked by caller");
        while !conn.poisoned && !conn.peer_closed && conn.pending.len() < PIPELINE_MAX {
            match conn.stream.read(scratch) {
                Ok(0) => {
                    conn.peer_closed = true;
                }
                Ok(n) => {
                    self.shared.wire.read(n as u64);
                    conn.last_activity = now;
                    let mut chunk: &[u8] = &scratch[..n];
                    // Feed the chunk, then flush every further request
                    // already buffered (pipelining) with empty feeds.
                    loop {
                        match conn.parser.feed(chunk) {
                            Ok(Some(req)) => {
                                chunk = &[];
                                conn.pending.push_back(Work::Request(req));
                            }
                            Ok(None) => break,
                            Err(e) => {
                                self.shared.wire.parse_error();
                                let resp = error_response(e.status(), &e.to_string());
                                let status = resp.status;
                                let mut bytes = Vec::new();
                                resp.write_to(&mut bytes, true).expect("vec write");
                                conn.pending.push_back(Work::Immediate { bytes, status });
                                conn.poisoned = true;
                                break;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            self.close(token);
            return false;
        }
        let conn = self.conns[token].as_mut().expect("still present");
        if conn.parser.is_idle() {
            conn.request_start = None;
        } else if conn.request_start.is_none() && !conn.poisoned {
            // First byte of a new request: pin the cumulative read
            // deadline here and arm a wheel entry for it — the standing
            // idle entry may be scheduled far later.
            conn.request_start = Some(now);
            self.arm_timer(token, now);
        }
        true
    }

    /// Advance the connection's output side: dispatch the next queued
    /// work, flush, and settle interest/lifecycle.
    fn pump(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
            return;
        };
        while !conn.in_flight && !conn.close_after_flush {
            match conn.pending.pop_front() {
                Some(Work::Request(request)) => {
                    let close = request.wants_close()
                        || self.shared.shutting_down.load(Ordering::Acquire);
                    conn.in_flight = true;
                    self.shared.wire.dispatch_enqueued();
                    self.pool.as_ref().expect("pool lives while conns do").submit(Job {
                        token,
                        generation: conn.generation,
                        request,
                        close,
                    });
                }
                Some(Work::Immediate { bytes, status }) => {
                    conn.write_buf.extend_from_slice(&bytes);
                    self.shared.wire.responded(status);
                    conn.close_after_flush = true;
                }
                None => break,
            }
        }
        if !self.flush(token, now) {
            return;
        }
        let conn = self.conns[token].as_ref().expect("flush keeps it");
        let flushed = conn.write_buf.is_empty();
        let quiet = !conn.in_flight && conn.pending.is_empty();
        if flushed && quiet {
            if conn.close_after_flush || conn.peer_closed {
                self.close(token);
                return;
            }
            // Graceful drain: keep-alive connections with nothing in
            // flight close as soon as the shutdown flag is up.
            if self.shared.shutting_down.load(Ordering::Acquire) && conn.parser.is_idle() {
                self.close(token);
                return;
            }
        }
        self.update_interest(token, now);
    }

    /// Write as much of `write_buf` as the socket accepts. Returns
    /// `false` when the connection was closed.
    fn flush(&mut self, token: usize, now: Instant) -> bool {
        let mut fatal = false;
        let mut progressed = false;
        let conn = self.conns[token].as_mut().expect("checked by caller");
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    fatal = true;
                    break;
                }
                Ok(n) => {
                    self.shared.wire.wrote(n as u64);
                    conn.write_pos += n;
                    conn.last_activity = now;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    fatal = true;
                    break;
                }
            }
        }
        if fatal {
            self.close(token);
            return false;
        }
        let conn = self.conns[token].as_mut().expect("still present");
        let mut arm = false;
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            conn.write_start = None;
        } else if progressed || conn.write_start.is_none() {
            // Bytes are stuck behind a slow reader: (re)start the write
            // deadline at the last byte the peer actually accepted. Arm
            // a wheel entry the first time — the standing entry may be
            // scheduled as far out as the idle timeout.
            arm = conn.write_start.is_none();
            conn.write_start = Some(now);
        }
        if arm {
            self.arm_timer(token, now);
        }
        true
    }

    /// Reconcile the epoll interest mask with the connection's state:
    /// read while we may accept more requests, write while bytes wait.
    fn update_interest(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
            return;
        };
        let want_read = !conn.poisoned && !conn.peer_closed;
        let mut desired = 0;
        if want_read && conn.pending.len() < PIPELINE_MAX {
            desired |= sys::EPOLLIN | sys::EPOLLRDHUP;
            if conn.read_paused {
                // Reads were suspended for backpressure — time the peer
                // spent waiting on *our* backlog must not count against
                // its cumulative read deadline, so re-pin it here.
                conn.read_paused = false;
                if conn.request_start.is_some() {
                    conn.request_start = Some(now);
                }
            }
        } else if want_read {
            conn.read_paused = true;
        }
        if !conn.write_buf.is_empty() {
            desired |= sys::EPOLLOUT;
        }
        if desired != conn.interest {
            conn.interest = desired;
            let _ = self
                .epoll
                .modify(conn.stream.as_raw_fd(), desired, token as u64);
        }
    }

    /// A worker finished a request: append its response (order
    /// preserved — only one request per connection is ever in flight)
    /// and move the machine along.
    fn complete(&mut self, c: Completion, now: Instant) {
        let Some(conn) = self.conns.get_mut(c.token).and_then(|s| s.as_mut()) else {
            return; // connection died while the query ran
        };
        if conn.generation != c.generation {
            return; // slot reused; response belongs to a previous tenant
        }
        conn.in_flight = false;
        conn.write_buf.extend_from_slice(&c.bytes);
        self.shared.wire.responded(c.status);
        if c.close {
            // `Connection: close` (or drain): anything pipelined behind
            // this response is dropped, as in the threaded model.
            conn.close_after_flush = true;
            conn.pending.clear();
        }
        self.pump(c.token, now);
    }

    /// Arm one wheel entry for the connection's current next deadline.
    fn arm_timer(&mut self, token: usize, now: Instant) {
        let config = &self.shared.config;
        let Some(conn) = self.conns.get_mut(token).and_then(|c| c.as_mut()) else {
            return;
        };
        let deadline =
            conn.next_deadline(config.read_timeout, config.write_timeout, config.idle_timeout);
        conn.timers += 1;
        self.wheel.schedule(
            now,
            TimerEntry {
                token,
                generation: conn.generation,
                deadline,
            },
        );
    }

    /// A wheel entry fired: re-check the connection's *actual* state
    /// (entries are lazy hints), act on expired deadlines, re-arm.
    fn fire_timer(&mut self, entry: TimerEntry, now: Instant) {
        let config = self.shared.config.clone();
        let Some(conn) = self.conns.get_mut(entry.token).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.generation != entry.generation {
            return;
        }
        conn.timers -= 1;
        if let Some(write_start) = conn.write_start {
            if now.saturating_duration_since(write_start) >= config.write_timeout {
                // The peer has accepted no response bytes for a full
                // write_timeout: cut it off, matching the threaded
                // model's socket write deadline against slow readers.
                self.close(entry.token);
                return;
            }
        }
        let Some(conn) = self.conns.get_mut(entry.token).and_then(|c| c.as_mut()) else {
            return;
        };
        if let Some(start) = conn.request_start {
            if now.saturating_duration_since(start) >= config.read_timeout
                && !conn.poisoned
                && !conn.read_paused
            {
                // Cumulative read deadline blown: the whole transfer
                // has taken too long, however steadily bytes trickled.
                let resp = error_response(408, "request read timed out");
                let status = resp.status;
                let mut bytes = Vec::new();
                resp.write_to(&mut bytes, true).expect("vec write");
                conn.pending.push_back(Work::Immediate { bytes, status });
                conn.poisoned = true;
                conn.request_start = None;
                self.pump(entry.token, now);
            }
        } else if conn.parser.is_idle()
            && !conn.in_flight
            && conn.pending.is_empty()
            && now.saturating_duration_since(conn.last_activity) >= config.idle_timeout
        {
            self.shared.wire.connection_reaped();
            self.close(entry.token);
            return;
        }
        // Keep exactly one standing entry per live connection.
        if let Some(conn) = self.conns.get_mut(entry.token).and_then(|c| c.as_mut()) {
            if conn.timers == 0 {
                self.arm_timer(entry.token, now);
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.del(listener.as_raw_fd());
            // Dropping closes the fd: new connects are refused rather
            // than parked in a backlog nobody will ever accept.
        }
        // Idle keep-alive connections close immediately; the rest
        // finish their in-flight request (bounded by the read deadline
        // and the serve-layer deadline) and close on flush.
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(t, c)| c.as_ref().map(|c| (t, c)))
            .filter(|(_, c)| {
                c.parser.is_idle()
                    && !c.in_flight
                    && c.pending.is_empty()
                    && c.write_buf.is_empty()
            })
            .map(|(t, _)| t)
            .collect();
        for token in idle {
            self.close(token);
        }
    }

    fn close(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(token).and_then(|c| c.take()) else {
            return;
        };
        let _ = self.epoll.del(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.free.push(token);
        self.live -= 1;
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.shared.wire.connection_closed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_round_trips_readiness() {
        let epoll = sys::Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        epoll.add(a.as_raw_fd(), sys::EPOLLIN, 7).unwrap();
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 8];
        // Nothing readable yet: wait times out empty.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        (&b).write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = { events[0].data };
        assert_eq!(data, 7);
        assert_ne!({ events[0].events } & sys::EPOLLIN, 0);
        // Deregistered fds stop reporting.
        epoll.del(a.as_raw_fd()).unwrap();
        (&b).write_all(b"y").unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn wheel_fires_due_entries_and_reinserts_far_ones() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.schedule(
            t0,
            TimerEntry { token: 1, generation: 1, deadline: t0 + Duration::from_millis(30) },
        );
        // Far beyond one revolution: must survive the wrap.
        let far = t0 + WHEEL_TICK * (WHEEL_SLOTS as u32 * 3);
        wheel.schedule(t0, TimerEntry { token: 2, generation: 1, deadline: far });
        let mut due = Vec::new();
        wheel.advance(t0 + Duration::from_millis(100), &mut due);
        assert_eq!(due.len(), 1, "only the near entry is due");
        assert_eq!(due[0].token, 1);
        due.clear();
        wheel.advance(far + WHEEL_TICK, &mut due);
        assert_eq!(due.len(), 1, "far entry fires after the wrap");
        assert_eq!(due[0].token, 2);
    }

    #[test]
    fn wheel_delivers_past_deadlines_next_tick() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        // A deadline already in the past must still fire (lazily, one
        // tick later) rather than be lost behind the cursor.
        wheel.schedule(t0, TimerEntry { token: 9, generation: 1, deadline: t0 });
        let mut due = Vec::new();
        wheel.advance(t0 + WHEEL_TICK * 2, &mut due);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].token, 9);
    }
}
