//! Property tests for the document store: filter/scan agreement, CRUD
//! accounting, sort totality, and pagination partitioning. Runs on the
//! in-repo `covidkg_rand::prop` harness (offline proptest replacement).

use covidkg_json::{obj, Value};
use covidkg_rand::prop::{self, charset_string, vec_of};
use covidkg_rand::{Rng, SmallRng};
use covidkg_store::pipeline::Pipeline;
use covidkg_store::{Collection, CollectionConfig, Filter};

fn random_doc(rng: &mut SmallRng) -> Value {
    let n = rng.gen_range(0i64..50);
    let s = charset_string(rng, &['a', 'b', 'c', 'd'], 1, 3);
    let tags = vec_of(rng, 0, 2, |r| charset_string(r, &['a', 'b', 'c'], 1, 2));
    let b = rng.gen_bool(0.5);
    obj! {
        "n" => n,
        "s" => s,
        "tags" => Value::Array(tags.into_iter().map(Value::from).collect()),
        "b" => b,
    }
}

#[test]
fn find_agrees_with_manual_scan() {
    prop::run(64, |rng| {
        let docs = vec_of(rng, 0, 29, random_doc);
        let threshold = rng.gen_range(0i64..50);
        let probe = charset_string(rng, &['a', 'b', 'c', 'd'], 1, 3);
        let c = Collection::new(CollectionConfig::new("t").with_shards(3));
        for d in &docs {
            c.insert(d.clone()).unwrap();
        }
        let spec = obj! {
            "$or" => covidkg_json::arr![
                obj! { "n" => obj!{ "$gte" => threshold } },
                obj! { "s" => probe.clone() },
                obj! { "tags" => probe },
            ]
        };
        let filter = Filter::parse(&spec, &[]).unwrap();
        let found = c.find(&filter).len();
        let manual = c.scan_all().iter().filter(|d| filter.matches(d)).count();
        assert_eq!(found, manual);
        assert_eq!(c.count(&filter), manual);
    });
}

#[test]
fn insert_delete_accounting() {
    prop::run(64, |rng| {
        let docs = vec_of(rng, 1, 19, random_doc);
        let c = Collection::new(CollectionConfig::new("t").with_shards(4));
        let ids = c.insert_many(docs.clone()).unwrap();
        assert_eq!(c.len(), docs.len());
        // Delete every other document.
        for id in ids.iter().step_by(2) {
            c.delete(id).unwrap();
        }
        assert_eq!(c.len(), docs.len() - ids.iter().step_by(2).count());
        // Remaining ids still resolve.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(c.get(id).is_some(), i % 2 == 1);
        }
    });
}

#[test]
fn sort_outputs_a_permutation_in_order() {
    prop::run(64, |rng| {
        let docs = vec_of(rng, 0, 24, random_doc);
        let c = Collection::new(CollectionConfig::new("t").with_shards(2));
        c.insert_many(docs.clone()).unwrap();
        let out = c.aggregate(&Pipeline::new().sort_asc("n"));
        assert_eq!(out.len(), docs.len());
        for w in out.windows(2) {
            let a = w[0].path("n").unwrap();
            let b = w[1].path("n").unwrap();
            assert_ne!(a.cmp_total(b), std::cmp::Ordering::Greater);
        }
    });
}

#[test]
fn skip_limit_never_overlap_or_lose() {
    prop::run(64, |rng| {
        let docs = vec_of(rng, 0, 29, random_doc);
        let page_size = rng.gen_range(1usize..7);
        let c = Collection::new(CollectionConfig::new("t").with_shards(2));
        c.insert_many(docs.clone()).unwrap();
        let mut collected = Vec::new();
        let mut page = 0;
        loop {
            let out = c.aggregate(
                &Pipeline::new()
                    .sort_asc("_id")
                    .skip(page * page_size)
                    .limit(page_size),
            );
            if out.is_empty() {
                break;
            }
            collected.extend(
                out.iter()
                    .map(|d| d.get("_id").unwrap().as_str().unwrap().to_string()),
            );
            page += 1;
            assert!(page < 100, "runaway pagination");
        }
        assert_eq!(collected.len(), docs.len());
        let mut dedup = collected.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), collected.len(), "pages overlapped");
    });
}

#[test]
fn filter_parse_never_panics() {
    prop::run(128, |rng| {
        let spec_n = rng.gen_range(0i64..100);
        let field = charset_string(rng, &['a', 'b', 'z', '$', '.'], 0, 8);
        let spec = obj! { field => spec_n };
        let _ = Filter::parse(&spec, &[]);
    });
}
