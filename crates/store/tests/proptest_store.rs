//! Property tests for the document store: filter/scan agreement, CRUD
//! accounting, sort totality, and pipeline-order result equivalence.

use covidkg_json::{obj, Value};
use covidkg_store::pipeline::Pipeline;
use covidkg_store::{Collection, CollectionConfig, Filter};
use proptest::prelude::*;

fn doc_strategy() -> impl Strategy<Value = Value> {
    (
        0i64..50,
        "[a-d]{1,3}",
        prop::collection::vec("[a-c]{1,2}", 0..3),
        any::<bool>(),
    )
        .prop_map(|(n, s, tags, b)| {
            obj! {
                "n" => n,
                "s" => s,
                "tags" => Value::Array(tags.into_iter().map(Value::from).collect()),
                "b" => b,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn find_agrees_with_manual_scan(
        docs in prop::collection::vec(doc_strategy(), 0..30),
        threshold in 0i64..50,
        probe in "[a-d]{1,3}",
    ) {
        let c = Collection::new(CollectionConfig::new("t").with_shards(3));
        for d in &docs {
            c.insert(d.clone()).unwrap();
        }
        let spec = obj! {
            "$or" => covidkg_json::arr![
                obj! { "n" => obj!{ "$gte" => threshold } },
                obj! { "s" => probe.clone() },
                obj! { "tags" => probe.clone() },
            ]
        };
        let filter = Filter::parse(&spec, &[]).unwrap();
        let found = c.find(&filter).len();
        let manual = c.scan_all().iter().filter(|d| filter.matches(d)).count();
        prop_assert_eq!(found, manual);
        prop_assert_eq!(c.count(&filter), manual);
    }

    #[test]
    fn insert_delete_accounting(docs in prop::collection::vec(doc_strategy(), 1..20)) {
        let c = Collection::new(CollectionConfig::new("t").with_shards(4));
        let ids = c.insert_many(docs.clone()).unwrap();
        prop_assert_eq!(c.len(), docs.len());
        // Delete every other document.
        for id in ids.iter().step_by(2) {
            c.delete(id).unwrap();
        }
        prop_assert_eq!(c.len(), docs.len() - ids.iter().step_by(2).count());
        // Remaining ids still resolve.
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(c.get(id).is_some(), i % 2 == 1);
        }
    }

    #[test]
    fn sort_outputs_a_permutation_in_order(
        docs in prop::collection::vec(doc_strategy(), 0..25),
    ) {
        let c = Collection::new(CollectionConfig::new("t").with_shards(2));
        c.insert_many(docs.clone()).unwrap();
        let out = c.aggregate(&Pipeline::new().sort_asc("n"));
        prop_assert_eq!(out.len(), docs.len());
        for w in out.windows(2) {
            let a = w[0].path("n").unwrap();
            let b = w[1].path("n").unwrap();
            prop_assert_ne!(a.cmp_total(b), std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn skip_limit_never_overlap_or_lose(
        docs in prop::collection::vec(doc_strategy(), 0..30),
        page_size in 1usize..7,
    ) {
        let c = Collection::new(CollectionConfig::new("t").with_shards(2));
        c.insert_many(docs.clone()).unwrap();
        let mut collected = Vec::new();
        let mut page = 0;
        loop {
            let out = c.aggregate(
                &Pipeline::new()
                    .sort_asc("_id")
                    .skip(page * page_size)
                    .limit(page_size),
            );
            if out.is_empty() {
                break;
            }
            collected.extend(
                out.iter()
                    .map(|d| d.get("_id").unwrap().as_str().unwrap().to_string()),
            );
            page += 1;
            prop_assert!(page < 100, "runaway pagination");
        }
        prop_assert_eq!(collected.len(), docs.len());
        let mut dedup = collected.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), collected.len(), "pages overlapped");
    }

    #[test]
    fn filter_parse_never_panics(spec_n in 0i64..100, field in "[a-z$.]{0,8}") {
        let spec = obj! { field => spec_n };
        let _ = Filter::parse(&spec, &[]);
    }
}
