//! Torn-write recovery properties for the WAL.
//!
//! Two attack shapes: exhaustive single-byte corruption over every
//! offset of the final frame (checksums must fence off the damage), and
//! a randomized torn-tail property — arbitrary workloads cut at
//! arbitrary byte offsets — with minimal-counterexample shrinking, so a
//! regression reports the smallest workload/cut that breaks
//! prefix-consistent recovery.

use covidkg_json::obj;
use covidkg_rand::prop;
use covidkg_store::wal::{read_wal, WalRecord, WalWriter};
use std::path::{Path, PathBuf};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("covidkg-recov-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `sizes.len()` records whose payloads carry `sizes[i]` bytes of
/// padding, returning the WAL bytes and the records.
fn build_wal(dir: &Path, sizes: &[usize]) -> (Vec<u8>, Vec<WalRecord>) {
    let path = dir.join("prop.wal");
    let _ = std::fs::remove_file(&path);
    let mut w = WalWriter::open(&path).unwrap();
    let records: Vec<WalRecord> = sizes
        .iter()
        .enumerate()
        .map(|(i, &pad)| {
            WalRecord::Insert(obj! {
                "_id" => format!("r{i}"),
                "pad" => "x".repeat(pad)
            })
        })
        .collect();
    for r in &records {
        w.append(r).unwrap();
    }
    w.sync().unwrap();
    (std::fs::read(&path).unwrap(), records)
}

#[test]
fn every_single_byte_corruption_of_the_final_frame_is_fenced() {
    let dir = tmpdir("flip-exhaustive");
    let (pristine, records) = build_wal(&dir, &[4, 9, 17]);
    let path = dir.join("prop.wal");
    // The last frame starts where the first two end; find it by
    // re-framing the first two records through a scratch writer.
    let (two_bytes, _) = build_wal(&tmpdir("flip-prefix"), &[4, 9]);
    let last_start = two_bytes.len();
    assert!(last_start < pristine.len());

    for offset in last_start..pristine.len() {
        let mut damaged = pristine.clone();
        damaged[offset] ^= 0xA5;
        std::fs::write(&path, &damaged).unwrap();
        let (recovered, truncated) =
            read_wal(&path).unwrap_or_else(|e| panic!("offset {offset}: hard error {e}"));
        assert!(truncated, "offset {offset}: corruption went unnoticed");
        assert_eq!(
            recovered,
            records[..2],
            "offset {offset}: clean prefix not preserved"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tails_always_recover_a_record_prefix() {
    let dir = tmpdir("torn-prop");
    prop::run_shrink(
        48,
        |rng| {
            use covidkg_rand::Rng;
            let sizes = prop::vec_of(rng, 0, 8, |r| r.gen_range(0usize..48));
            let cut_back = rng.gen_range(0usize..64);
            (sizes, cut_back)
        },
        |(sizes, cut_back)| {
            // Shrink the workload and the cut independently.
            let mut candidates: Vec<(Vec<usize>, usize)> = prop::shrink_vec(sizes, |&s| {
                prop::shrink_usize(s)
            })
            .into_iter()
            .map(|s| (s, *cut_back))
            .collect();
            candidates.extend(
                prop::shrink_usize(*cut_back)
                    .into_iter()
                    .map(|c| (sizes.clone(), c)),
            );
            candidates
        },
        |(sizes, cut_back)| {
            let (pristine, records) = build_wal(&dir, sizes);
            let keep = pristine.len().saturating_sub(*cut_back);
            let path = dir.join("prop.wal");
            std::fs::write(&path, &pristine[..keep]).unwrap();
            let (recovered, _truncated) =
                read_wal(&path).map_err(|e| format!("hard error on torn tail: {e}"))?;
            if recovered.len() > records.len() || recovered[..] != records[..recovered.len()] {
                return Err(format!(
                    "recovered {} records that are not a prefix of the {} written",
                    recovered.len(),
                    records.len()
                ));
            }
            // A fresh writer over the torn log must repair it: one more
            // append, then a clean (untruncated) read.
            let mut w = WalWriter::open(&path).map_err(|e| format!("reopen failed: {e}"))?;
            w.append(&WalRecord::Delete { id: "tail".into() })
                .map_err(|e| format!("post-crash append failed: {e}"))?;
            let (after, truncated) =
                read_wal(&path).map_err(|e| format!("post-repair read failed: {e}"))?;
            if truncated {
                return Err("tail still torn after reopen+append".into());
            }
            if after.len() != recovered.len() + 1 {
                return Err(format!(
                    "expected {} records after repair, found {}",
                    recovered.len() + 1,
                    after.len()
                ));
            }
            Ok(())
        },
    );
    let _ = std::fs::remove_dir_all(&dir);
}
