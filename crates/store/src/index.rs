//! Secondary indexes: hash indexes on field values and a stemmed inverted
//! text index.
//!
//! The paper's `$match`-first pipeline design (§2.1) "minimizes the amount
//! of data being passed through all the latter stages". The inverted index
//! extends that: a `$text` match resolves to a candidate id set before any
//! document is touched, which the E4 bench compares against a full scan.

use covidkg_json::Value;
use covidkg_text::{stem, tokenize_lower};
use std::sync::RwLock;
use std::collections::{BTreeSet, HashMap};

/// A hash index over one dot path. Values are keyed by their compact JSON
/// encoding so heterogeneous types stay distinct.
#[derive(Debug, Default)]
pub struct HashIndex {
    path: String,
    map: RwLock<HashMap<String, BTreeSet<String>>>,
}

impl HashIndex {
    /// Index over `path`.
    pub fn new(path: impl Into<String>) -> Self {
        HashIndex {
            path: path.into(),
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The indexed path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Index a document (array fields index every element).
    pub fn add(&self, id: &str, doc: &Value) {
        let Some(v) = doc.path(&self.path) else { return };
        let mut map = self.map.write().unwrap();
        match v {
            Value::Array(items) => {
                for item in items {
                    map.entry(item.to_json()).or_default().insert(id.to_string());
                }
            }
            other => {
                map.entry(other.to_json()).or_default().insert(id.to_string());
            }
        }
    }

    /// Remove a document's entries.
    pub fn remove(&self, id: &str, doc: &Value) {
        let Some(v) = doc.path(&self.path) else { return };
        let mut map = self.map.write().unwrap();
        let mut drop_key = |key: String| {
            if let Some(set) = map.get_mut(&key) {
                set.remove(id);
                if set.is_empty() {
                    map.remove(&key);
                }
            }
        };
        match v {
            Value::Array(items) => {
                for item in items {
                    drop_key(item.to_json());
                }
            }
            other => drop_key(other.to_json()),
        }
    }

    /// Ids whose field equals `value`.
    pub fn lookup(&self, value: &Value) -> Vec<String> {
        self.map
            .read().unwrap()
            .get(&value.to_json())
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().unwrap().len()
    }
}

/// Number of lock stripes in the text index. Striping keeps concurrent
/// ingest threads from serializing on one postings lock (the E8 scaling
/// experiment measures this).
const TEXT_STRIPES: usize = 16;

/// Stemmed inverted index over a set of text fields, with postings
/// striped across several locks by stem hash.
#[derive(Debug)]
pub struct TextIndex {
    fields: Vec<String>,
    stripes: Vec<RwLock<HashMap<String, BTreeSet<String>>>>,
}

impl Default for TextIndex {
    fn default() -> Self {
        TextIndex::new(Vec::new())
    }
}

impl TextIndex {
    /// Index over the given dot paths.
    pub fn new(fields: Vec<String>) -> Self {
        TextIndex {
            fields,
            stripes: (0..TEXT_STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// The indexed field paths.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    fn stripe(&self, s: &str) -> &RwLock<HashMap<String, BTreeSet<String>>> {
        &self.stripes[(crate::shard::route_hash(s) % TEXT_STRIPES as u64) as usize]
    }

    fn doc_stems(&self, doc: &Value) -> BTreeSet<String> {
        let mut stems = BTreeSet::new();
        for field in &self.fields {
            collect_text(doc.path(field), &mut |text| {
                for tok in tokenize_lower(text) {
                    stems.insert(stem(&tok));
                }
            });
        }
        stems
    }

    /// Index a document.
    pub fn add(&self, id: &str, doc: &Value) {
        for s in self.doc_stems(doc) {
            self.stripe(&s)
                .write().unwrap()
                .entry(s)
                .or_default()
                .insert(id.to_string());
        }
    }

    /// Remove a document.
    pub fn remove(&self, id: &str, doc: &Value) {
        for s in self.doc_stems(doc) {
            let mut stripe = self.stripe(&s).write().unwrap();
            if let Some(set) = stripe.get_mut(&s) {
                set.remove(id);
                if set.is_empty() {
                    stripe.remove(&s);
                }
            }
        }
    }

    /// Ids containing **any** of the query stems (the `$match` stage still
    /// re-verifies; this is candidate pruning, so OR keeps recall).
    pub fn candidates(&self, stems: &[&str]) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in stems {
            if let Some(ids) = self.stripe(s).read().unwrap().get(*s) {
                out.extend(ids.iter().cloned());
            }
        }
        out
    }

    /// Document frequency of a stem.
    pub fn doc_freq(&self, s: &str) -> usize {
        self.stripe(s).read().unwrap().get(s).map_or(0, BTreeSet::len)
    }

    /// Number of distinct stems.
    pub fn term_count(&self) -> usize {
        self.stripes.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

/// Walk a value collecting every string leaf (arrays/objects recurse).
fn collect_text(v: Option<&Value>, f: &mut impl FnMut(&str)) {
    match v {
        Some(Value::Str(s)) => f(s),
        Some(Value::Array(items)) => {
            for item in items {
                collect_text(Some(item), f);
            }
        }
        Some(Value::Object(members)) => {
            for (_, val) in members {
                collect_text(Some(val), f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{arr, obj};

    #[test]
    fn hash_index_round_trip() {
        let idx = HashIndex::new("year");
        let d1 = obj! { "year" => 2020 };
        let d2 = obj! { "year" => 2021 };
        idx.add("a", &d1);
        idx.add("b", &d2);
        idx.add("c", &d2);
        assert_eq!(idx.lookup(&Value::int(2021)), ["b", "c"]);
        idx.remove("b", &d2);
        assert_eq!(idx.lookup(&Value::int(2021)), ["c"]);
        assert_eq!(idx.key_count(), 2);
        idx.remove("c", &d2);
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn hash_index_arrays_index_elements() {
        let idx = HashIndex::new("tags");
        let d = obj! { "tags" => arr!["masks", "policy"] };
        idx.add("a", &d);
        assert_eq!(idx.lookup(&Value::str("policy")), ["a"]);
        idx.remove("a", &d);
        assert!(idx.lookup(&Value::str("policy")).is_empty());
    }

    #[test]
    fn hash_index_distinguishes_types() {
        let idx = HashIndex::new("v");
        idx.add("s", &obj! { "v" => "1" });
        idx.add("n", &obj! { "v" => 1 });
        assert_eq!(idx.lookup(&Value::str("1")), ["s"]);
        assert_eq!(idx.lookup(&Value::int(1)), ["n"]);
    }

    #[test]
    fn text_index_stems_and_prunes() {
        let idx = TextIndex::new(vec!["title".into(), "abstract".into()]);
        idx.add("a", &obj! { "title" => "Mask mandates work" });
        idx.add("b", &obj! { "abstract" => "Vaccination rates climb" });
        idx.add("c", &obj! { "title" => "Ventilator supply" });

        let hits = idx.candidates(&[&stem("mandate")]);
        assert!(hits.contains("a") && hits.len() == 1);
        // Query stem "vaccin" from "vaccine" reaches "Vaccination".
        let hits = idx.candidates(&[&stem("vaccine")]);
        assert!(hits.contains("b"));
        // OR semantics across stems.
        let hits = idx.candidates(&[&stem("mask"), &stem("ventilators")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn text_index_nested_fields() {
        let idx = TextIndex::new(vec!["tables".into()]);
        idx.add(
            "a",
            &obj! { "tables" => arr![ obj!{ "caption" => "dosage outcomes" } ] },
        );
        assert!(idx.candidates(&[&stem("dosage")]).contains("a"));
    }

    #[test]
    fn text_index_remove() {
        let idx = TextIndex::new(vec!["t".into()]);
        let d = obj! { "t" => "masks" };
        idx.add("a", &d);
        assert_eq!(idx.doc_freq(&stem("masks")), 1);
        idx.remove("a", &d);
        assert_eq!(idx.doc_freq(&stem("masks")), 0);
        assert_eq!(idx.term_count(), 0);
    }

    #[test]
    fn missing_fields_are_ignored() {
        let idx = TextIndex::new(vec!["title".into()]);
        idx.add("a", &obj! { "other" => "text" });
        assert_eq!(idx.term_count(), 0);
    }
}
