//! Secondary indexes: hash indexes on field values and a stemmed inverted
//! text index with full posting lists.
//!
//! The paper's `$match`-first pipeline design (§2.1) "minimizes the amount
//! of data being passed through all the latter stages". The inverted index
//! extends that twice over: a `$text` match resolves to a candidate id set
//! before any document is touched (which the E4 bench compares against a
//! full scan), and each posting carries enough structure — indexed field,
//! string-leaf ordinal, token positions — that the ranker can score a
//! candidate straight from the index without re-tokenizing the document.

use covidkg_json::Value;
use covidkg_text::{stem, tokenize_lower};
use std::sync::RwLock;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A hash index over one dot path. Values are keyed by their compact JSON
/// encoding so heterogeneous types stay distinct.
#[derive(Debug, Default)]
pub struct HashIndex {
    path: String,
    map: RwLock<HashMap<String, BTreeSet<String>>>,
}

impl HashIndex {
    /// Index over `path`.
    pub fn new(path: impl Into<String>) -> Self {
        HashIndex {
            path: path.into(),
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The indexed path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Index a document (array fields index every element).
    pub fn add(&self, id: &str, doc: &Value) {
        let Some(v) = doc.path(&self.path) else { return };
        let mut map = self.map.write().unwrap();
        match v {
            Value::Array(items) => {
                for item in items {
                    map.entry(item.to_json()).or_default().insert(id.to_string());
                }
            }
            other => {
                map.entry(other.to_json()).or_default().insert(id.to_string());
            }
        }
    }

    /// Remove a document's entries.
    pub fn remove(&self, id: &str, doc: &Value) {
        let Some(v) = doc.path(&self.path) else { return };
        let mut map = self.map.write().unwrap();
        let mut drop_key = |key: String| {
            if let Some(set) = map.get_mut(&key) {
                set.remove(id);
                if set.is_empty() {
                    map.remove(&key);
                }
            }
        };
        match v {
            Value::Array(items) => {
                for item in items {
                    drop_key(item.to_json());
                }
            }
            other => drop_key(other.to_json()),
        }
    }

    /// Ids whose field equals `value`.
    pub fn lookup(&self, value: &Value) -> Vec<String> {
        self.map
            .read().unwrap()
            .get(&value.to_json())
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// Drop every entry (used when a checkpoint wholesale-replaces the
    /// collection contents before the index is rebuilt).
    pub fn clear(&self) {
        self.map.write().unwrap().clear();
    }
}

/// Number of lock stripes in the text index. Striping keeps concurrent
/// ingest threads from serializing on one postings lock (the E8 scaling
/// experiment measures this).
const TEXT_STRIPES: usize = 16;

/// One stem's occurrences within one string leaf of one document.
///
/// `field` is the ordinal of the indexed dot path in [`TextIndex::fields`];
/// `leaf` is the ordinal of the string leaf within that field's value, in
/// the same depth-first order the ranker walks strings — so postings can be
/// replayed against the ranker's per-leaf scoring without the raw text.
/// `positions` are the token indices of the stem inside the leaf, ascending;
/// term frequency is `positions.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Ordinal into [`TextIndex::fields`].
    pub field: u16,
    /// String-leaf ordinal within the field value (depth-first order).
    pub leaf: u32,
    /// Ascending token positions of the stem inside the leaf.
    pub positions: Vec<u32>,
}

/// Per-stem map from document id to that document's posting list, sorted
/// by `(field, leaf)` because postings are built in field-then-DFS order.
type PostingMap = BTreeMap<String, Vec<Posting>>;

/// Stemmed inverted index over a set of text fields, with posting lists
/// striped across several locks by stem hash.
#[derive(Debug)]
pub struct TextIndex {
    fields: Vec<String>,
    stripes: Vec<RwLock<HashMap<String, PostingMap>>>,
}

impl Default for TextIndex {
    fn default() -> Self {
        TextIndex::new(Vec::new())
    }
}

impl TextIndex {
    /// Index over the given dot paths.
    pub fn new(fields: Vec<String>) -> Self {
        TextIndex {
            fields,
            stripes: (0..TEXT_STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// The indexed field paths.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Ordinal of an indexed dot path, if indexed.
    pub fn field_id(&self, path: &str) -> Option<u16> {
        self.fields.iter().position(|f| f == path).map(|i| i as u16)
    }

    fn stripe(&self, s: &str) -> &RwLock<HashMap<String, PostingMap>> {
        &self.stripes[(crate::shard::route_hash(s) % TEXT_STRIPES as u64) as usize]
    }

    /// Every stem's postings for one document, built by walking the indexed
    /// fields in order and each field's string leaves depth-first.
    fn doc_postings(&self, doc: &Value) -> HashMap<String, Vec<Posting>> {
        let mut map: HashMap<String, Vec<Posting>> = HashMap::new();
        for (fi, field) in self.fields.iter().enumerate() {
            let mut leaf = 0u32;
            collect_text(doc.path(field), &mut |text| {
                for (pos, tok) in tokenize_lower(text).iter().enumerate() {
                    let postings = map.entry(stem(tok)).or_default();
                    match postings.last_mut() {
                        Some(p) if p.field == fi as u16 && p.leaf == leaf => {
                            p.positions.push(pos as u32)
                        }
                        _ => postings.push(Posting {
                            field: fi as u16,
                            leaf,
                            positions: vec![pos as u32],
                        }),
                    }
                }
                leaf += 1;
            });
        }
        map
    }

    /// Index a document.
    pub fn add(&self, id: &str, doc: &Value) {
        for (s, postings) in self.doc_postings(doc) {
            self.stripe(&s)
                .write().unwrap()
                .entry(s)
                .or_default()
                .insert(id.to_string(), postings);
        }
    }

    /// Remove a document.
    pub fn remove(&self, id: &str, doc: &Value) {
        for s in self.doc_postings(doc).into_keys() {
            let mut stripe = self.stripe(&s).write().unwrap();
            if let Some(docs) = stripe.get_mut(&s) {
                docs.remove(id);
                if docs.is_empty() {
                    stripe.remove(&s);
                }
            }
        }
    }

    /// Ids containing **any** of the query stems (the `$match` stage still
    /// re-verifies; this is candidate pruning, so OR keeps recall).
    pub fn candidates(&self, stems: &[&str]) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in stems {
            if let Some(docs) = self.stripe(s).read().unwrap().get(*s) {
                out.extend(docs.keys().cloned());
            }
        }
        out
    }

    /// Ids containing any of the query stems **within the given fields**.
    /// Unlike [`TextIndex::candidates`], matches in indexed-but-unlisted
    /// fields don't qualify a document, so the set is exact (not merely a
    /// superset) for a `$text` filter scoped to those fields.
    pub fn candidates_in_fields(&self, stems: &[&str], fields: &[u16]) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in stems {
            if let Some(docs) = self.stripe(s).read().unwrap().get(*s) {
                for (id, postings) in docs {
                    if !out.contains(id.as_str())
                        && postings.iter().any(|p| fields.contains(&p.field))
                    {
                        out.insert(id.clone());
                    }
                }
            }
        }
        out
    }

    /// One document's posting list for a stem (sorted by `(field, leaf)`),
    /// cloned out from under the stripe lock.
    pub fn postings(&self, s: &str, id: &str) -> Option<Vec<Posting>> {
        self.stripe(s)
            .read().unwrap()
            .get(s)
            .and_then(|docs| docs.get(id))
            .cloned()
    }

    /// Document frequency of a stem.
    pub fn doc_freq(&self, s: &str) -> usize {
        self.stripe(s).read().unwrap().get(s).map_or(0, BTreeMap::len)
    }

    /// Number of distinct stems.
    pub fn term_count(&self) -> usize {
        self.stripes.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Drop every posting (used when a checkpoint wholesale-replaces
    /// the collection contents before the index is rebuilt).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.write().unwrap().clear();
        }
    }
}

/// Walk a value collecting every string leaf (arrays/objects recurse).
fn collect_text(v: Option<&Value>, f: &mut impl FnMut(&str)) {
    match v {
        Some(Value::Str(s)) => f(s),
        Some(Value::Array(items)) => {
            for item in items {
                collect_text(Some(item), f);
            }
        }
        Some(Value::Object(members)) => {
            for (_, val) in members {
                collect_text(Some(val), f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{arr, obj};

    #[test]
    fn hash_index_round_trip() {
        let idx = HashIndex::new("year");
        let d1 = obj! { "year" => 2020 };
        let d2 = obj! { "year" => 2021 };
        idx.add("a", &d1);
        idx.add("b", &d2);
        idx.add("c", &d2);
        assert_eq!(idx.lookup(&Value::int(2021)), ["b", "c"]);
        idx.remove("b", &d2);
        assert_eq!(idx.lookup(&Value::int(2021)), ["c"]);
        assert_eq!(idx.key_count(), 2);
        idx.remove("c", &d2);
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn hash_index_arrays_index_elements() {
        let idx = HashIndex::new("tags");
        let d = obj! { "tags" => arr!["masks", "policy"] };
        idx.add("a", &d);
        assert_eq!(idx.lookup(&Value::str("policy")), ["a"]);
        idx.remove("a", &d);
        assert!(idx.lookup(&Value::str("policy")).is_empty());
    }

    #[test]
    fn hash_index_distinguishes_types() {
        let idx = HashIndex::new("v");
        idx.add("s", &obj! { "v" => "1" });
        idx.add("n", &obj! { "v" => 1 });
        assert_eq!(idx.lookup(&Value::str("1")), ["s"]);
        assert_eq!(idx.lookup(&Value::int(1)), ["n"]);
    }

    #[test]
    fn text_index_stems_and_prunes() {
        let idx = TextIndex::new(vec!["title".into(), "abstract".into()]);
        idx.add("a", &obj! { "title" => "Mask mandates work" });
        idx.add("b", &obj! { "abstract" => "Vaccination rates climb" });
        idx.add("c", &obj! { "title" => "Ventilator supply" });

        let hits = idx.candidates(&[&stem("mandate")]);
        assert!(hits.contains("a") && hits.len() == 1);
        // Query stem "vaccin" from "vaccine" reaches "Vaccination".
        let hits = idx.candidates(&[&stem("vaccine")]);
        assert!(hits.contains("b"));
        // OR semantics across stems.
        let hits = idx.candidates(&[&stem("mask"), &stem("ventilators")]);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn text_index_nested_fields() {
        let idx = TextIndex::new(vec!["tables".into()]);
        idx.add(
            "a",
            &obj! { "tables" => arr![ obj!{ "caption" => "dosage outcomes" } ] },
        );
        assert!(idx.candidates(&[&stem("dosage")]).contains("a"));
    }

    #[test]
    fn text_index_remove() {
        let idx = TextIndex::new(vec!["t".into()]);
        let d = obj! { "t" => "masks" };
        idx.add("a", &d);
        assert_eq!(idx.doc_freq(&stem("masks")), 1);
        idx.remove("a", &d);
        assert_eq!(idx.doc_freq(&stem("masks")), 0);
        assert_eq!(idx.term_count(), 0);
    }

    #[test]
    fn missing_fields_are_ignored() {
        let idx = TextIndex::new(vec!["title".into()]);
        idx.add("a", &obj! { "other" => "text" });
        assert_eq!(idx.term_count(), 0);
    }

    #[test]
    fn postings_carry_field_leaf_and_positions() {
        let idx = TextIndex::new(vec!["title".into(), "tables".into()]);
        idx.add(
            "a",
            &obj! {
                "title" => "mask mandates mask",
                "tables" => arr![
                    obj!{ "caption" => "no match here" },
                    obj!{ "caption" => "a mask table" },
                ],
            },
        );
        let postings = idx.postings(&stem("mask"), "a").unwrap();
        assert_eq!(
            postings,
            vec![
                Posting { field: 0, leaf: 0, positions: vec![0, 2] },
                // Second caption is the tables field's second string leaf
                // (one leaf per string, DFS through the array of objects).
                Posting { field: 1, leaf: 1, positions: vec![1] },
            ]
        );
        assert!(idx.postings(&stem("mask"), "missing").is_none());
    }

    #[test]
    fn candidates_in_fields_scopes_to_listed_fields() {
        let idx = TextIndex::new(vec!["title".into(), "abstract".into()]);
        idx.add("a", &obj! { "title" => "mask mandates" });
        idx.add("b", &obj! { "abstract" => "mask efficacy" });
        let mask = stem("mask");
        let title_only = idx.candidates_in_fields(&[&mask], &[0]);
        assert!(title_only.contains("a") && !title_only.contains("b"));
        let both = idx.candidates_in_fields(&[&mask], &[0, 1]);
        assert_eq!(both.len(), 2);
        assert_eq!(idx.field_id("abstract"), Some(1));
        assert_eq!(idx.field_id("body"), None);
    }

    #[test]
    fn postings_removed_with_document() {
        let idx = TextIndex::new(vec!["t".into()]);
        let d = obj! { "t" => "masks and masks" };
        idx.add("a", &d);
        idx.add("b", &obj! { "t" => "masks" });
        idx.remove("a", &d);
        assert!(idx.postings(&stem("masks"), "a").is_none());
        assert!(idx.postings(&stem("masks"), "b").is_some());
        assert_eq!(idx.doc_freq(&stem("masks")), 1);
    }
}
