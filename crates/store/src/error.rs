//! Store error type.

use std::fmt;

/// Errors surfaced by the document store.
#[derive(Debug)]
pub enum StoreError {
    /// A document with the same `_id` already exists.
    DuplicateId(String),
    /// No document with the given `_id`.
    NotFound(String),
    /// A malformed query / filter / pipeline specification.
    BadQuery(String),
    /// Underlying I/O failure (WAL, snapshot).
    Io(std::io::Error),
    /// Persistent data failed to parse during recovery.
    Corrupt(String),
    /// The named collection does not exist.
    NoSuchCollection(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateId(id) => write!(f, "duplicate _id {id:?}"),
            StoreError::NotFound(id) => write!(f, "no document with _id {id:?}"),
            StoreError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::NoSuchCollection(name) => write!(f, "no collection {name:?}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StoreError::DuplicateId("x".into()).to_string().contains("x"));
        assert!(StoreError::BadQuery("oops".into()).to_string().contains("oops"));
    }

    #[test]
    fn io_errors_convert() {
        let e: StoreError = std::io::Error::other("disk").into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
