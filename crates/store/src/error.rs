//! Store error type.

use std::fmt;

/// Errors surfaced by the document store.
#[derive(Debug)]
pub enum StoreError {
    /// A document with the same `_id` already exists.
    DuplicateId(String),
    /// No document with the given `_id`.
    NotFound(String),
    /// A malformed query / filter / pipeline specification.
    BadQuery(String),
    /// Underlying I/O failure (WAL, snapshot).
    Io(std::io::Error),
    /// Persistent data failed to parse during recovery.
    Corrupt(String),
    /// The named collection does not exist.
    NoSuchCollection(String),
    /// A transient I/O fault (injected by a [`crate::fault::FaultPlan`]
    /// or an `EINTR`-class kernel error). Safe to retry: the WAL writer
    /// repairs any partially written tail before the next append.
    Transient(String),
}

impl StoreError {
    /// True when retrying the failed operation may succeed (the fault was
    /// injected or the kernel reported an interruption-class error);
    /// permanent errors — corrupt data, bad queries, missing documents —
    /// return false and must surface to the caller.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Transient(_) => true,
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateId(id) => write!(f, "duplicate _id {id:?}"),
            StoreError::NotFound(id) => write!(f, "no document with _id {id:?}"),
            StoreError::BadQuery(msg) => write!(f, "bad query: {msg}"),
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StoreError::NoSuchCollection(name) => write!(f, "no collection {name:?}"),
            StoreError::Transient(msg) => write!(f, "transient fault: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StoreError::DuplicateId("x".into()).to_string().contains("x"));
        assert!(StoreError::BadQuery("oops".into()).to_string().contains("oops"));
    }

    #[test]
    fn io_errors_convert() {
        let e: StoreError = std::io::Error::other("disk").into();
        assert!(matches!(e, StoreError::Io(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(StoreError::Transient("injected".into()).is_transient());
        let eintr: StoreError =
            std::io::Error::from(std::io::ErrorKind::Interrupted).into();
        assert!(eintr.is_transient());
        assert!(!StoreError::Corrupt("x".into()).is_transient());
        assert!(!StoreError::Io(std::io::Error::other("disk gone")).is_transient());
        assert!(!StoreError::DuplicateId("a".into()).is_transient());
    }
}
