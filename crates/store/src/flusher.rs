//! Background durability daemon.
//!
//! The production system's storage runs "non-stop" (§2); this daemon
//! gives a persistent [`crate::Collection`] the equivalent of MongoDB's
//! periodic journal commit: a background thread fsyncs the WAL on an
//! interval (group commit) and optionally compacts it into a snapshot
//! every N syncs. Built on a bounded std `mpsc` channel so shutdown is
//! prompt and loss-free (a final sync runs on stop).

use crate::collection::Collection;
use crate::error::StoreError;
use crate::fault::{Fault, FaultOp, FaultPlan};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running flusher; dropping it stops the daemon after a
/// final sync.
#[derive(Debug)]
pub struct Flusher {
    stop: Option<SyncSender<()>>,
    handle: Option<JoinHandle<Result<FlusherStats, StoreError>>>,
}

/// Counters reported when the daemon stops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlusherStats {
    /// WAL fsyncs performed (including the final one).
    pub syncs: u64,
    /// Snapshot compactions performed.
    pub snapshots: u64,
    /// Ticks skipped because the sync/snapshot failed transiently even
    /// after the collection's bounded retries; the next interval tries
    /// again. Permanent errors still stop the daemon.
    pub transient_skips: u64,
}

impl Flusher {
    /// Start a daemon syncing `collection` every `interval`, compacting
    /// into a snapshot every `snapshot_every` syncs (0 = never compact).
    pub fn start(
        collection: Arc<Collection>,
        interval: Duration,
        snapshot_every: u64,
    ) -> Flusher {
        let (stop_tx, stop_rx) = sync_channel::<()>(1);
        let handle = std::thread::Builder::new()
            .name("covidkg-wal-flusher".into())
            .spawn(move || -> Result<FlusherStats, StoreError> {
                let mut stats = FlusherStats::default();
                loop {
                    // Wait for the interval or a stop signal, whichever
                    // comes first.
                    let stopping = stop_rx.recv_timeout(interval).is_ok();
                    // A transiently failed tick is skipped, not fatal:
                    // the WAL repairs its tail and the next interval (or
                    // the final stop sync) retries the whole operation.
                    match collection.sync() {
                        Ok(()) => {
                            stats.syncs += 1;
                            if snapshot_every > 0 && stats.syncs % snapshot_every == 0 {
                                // The compaction *decision* is itself an
                                // injectable fault point: a failure here
                                // skips this tick's compaction (the WAL
                                // keeps growing, nothing acked is lost).
                                match compaction_decision(collection.fault_plan().as_deref()) {
                                    Ok(()) => match collection.snapshot() {
                                        Ok(_) => stats.snapshots += 1,
                                        Err(e) if e.is_transient() => stats.transient_skips += 1,
                                        Err(e) => return Err(e),
                                    },
                                    Err(e) if e.is_transient() => stats.transient_skips += 1,
                                    Err(e) => return Err(e),
                                }
                            }
                        }
                        Err(e) if e.is_transient() => stats.transient_skips += 1,
                        Err(e) => return Err(e),
                    }
                    if stopping {
                        return Ok(stats);
                    }
                }
            })
            .expect("spawn flusher thread");
        Flusher {
            stop: Some(stop_tx),
            handle: Some(handle),
        }
    }

    /// Stop the daemon, returning its counters. The final sync has
    /// completed when this returns.
    pub fn stop(mut self) -> Result<FlusherStats, StoreError> {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> Result<FlusherStats, StoreError> {
        if let Some(stop) = self.stop.take() {
            let _ = stop.send(());
        }
        match self.handle.take() {
            Some(h) => h.join().expect("flusher thread panicked"),
            None => Ok(FlusherStats::default()),
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let _ = self.stop_inner();
    }
}

/// Consult the fault plan for [`FaultOp::Compaction`]. Short writes
/// make no sense for a decision and degrade to failure; delays sleep
/// then proceed.
fn compaction_decision(plan: Option<&FaultPlan>) -> Result<(), StoreError> {
    let Some(plan) = plan else { return Ok(()) };
    match plan.decide(FaultOp::Compaction) {
        Some(Fault::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::DiskFull) => Err(FaultPlan::disk_full_error(FaultOp::Compaction)),
        Some(Fault::Fail | Fault::ShortWrite(_)) => Err(FaultPlan::error(FaultOp::Compaction)),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::CollectionConfig;
    use covidkg_json::obj;

    fn persistent_collection(tag: &str) -> (Arc<Collection>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("covidkg-flush-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        (Arc::new(c), dir)
    }

    #[test]
    fn flusher_syncs_and_stops_cleanly() {
        let (c, dir) = persistent_collection("basic");
        let flusher = Flusher::start(Arc::clone(&c), Duration::from_millis(5), 0);
        for i in 0..20 {
            c.insert(obj! { "_id" => format!("d{i}") }).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        let stats = flusher.stop().unwrap();
        assert!(stats.syncs >= 2, "expected periodic syncs, got {stats:?}");
        // Everything recovers from disk.
        let re = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        assert_eq!(re.len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compaction_runs() {
        let (c, dir) = persistent_collection("snap");
        c.insert(obj! { "_id" => "a" }).unwrap();
        let flusher = Flusher::start(Arc::clone(&c), Duration::from_millis(3), 2);
        std::thread::sleep(Duration::from_millis(40));
        let stats = flusher.stop().unwrap();
        assert!(stats.snapshots >= 1, "{stats:?}");
        // Snapshot file exists and WAL was truncated by compaction.
        assert!(dir.join("pubs.snapshot").exists());
        let re = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        assert_eq!(re.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_stops_without_hanging() {
        let (c, dir) = persistent_collection("drop");
        {
            let _flusher = Flusher::start(Arc::clone(&c), Duration::from_secs(60), 0);
            // Dropping must not wait for the 60 s interval.
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flusher_skips_transient_faults_instead_of_dying() {
        use crate::fault::{FaultConfig, FaultPlan, RetryPolicy};
        let (c, dir) = persistent_collection("faulty");
        c.insert(obj! { "_id" => "keep" }).unwrap();
        // No retries + a high fault rate: most ticks fail transiently and
        // must be skipped, not kill the daemon.
        c.set_retry_policy(RetryPolicy::none());
        c.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            fail: 0.8,
            short_write: 0.0,
            delay: 0.0,
            ..FaultConfig::default()
        })));
        let flusher = Flusher::start(Arc::clone(&c), Duration::from_millis(2), 0);
        std::thread::sleep(Duration::from_millis(60));
        let stats = flusher.stop().expect("transient faults must not be fatal");
        assert!(stats.transient_skips >= 1, "{stats:?}");
        c.set_fault_plan(None);
        c.sync().unwrap();
        let re = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        assert_eq!(re.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_full_stops_the_flusher_with_a_permanent_error() {
        use crate::fault::{Fault, FaultConfig, FaultOp, FaultPlan};
        let (c, dir) = persistent_collection("enospc");
        c.insert(obj! { "_id" => "keep" }).unwrap();
        c.sync().unwrap();
        let plan = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 0.0,
            delay: 0.0,
            disk_full: 1.0,
            ..FaultConfig::default()
        });
        assert_eq!(plan.decide(FaultOp::WalSync), Some(Fault::DiskFull));
        c.set_fault_plan(Some(Arc::clone(&plan)));
        let flusher = Flusher::start(Arc::clone(&c), Duration::from_millis(2), 0);
        std::thread::sleep(Duration::from_millis(20));
        let err = flusher
            .stop()
            .expect_err("a full disk is fatal to the daemon, not skipped");
        assert!(!err.is_transient(), "{err:?}");
        assert!(
            matches!(&err, StoreError::Io(e) if e.kind() == std::io::ErrorKind::StorageFull),
            "{err:?}"
        );
        assert!(plan.stats().disk_fulls >= 1, "{:?}", plan.stats());
        // The store remains readable throughout.
        assert_eq!(c.len(), 1);
        assert!(c.get("keep").is_some());
        let re = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        assert_eq!(re.len(), 1, "durable state survives the ENOSPC episode");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_decision_faults_skip_not_kill() {
        use crate::fault::FaultConfig;
        // Fail and short-write both surface as transient (skipped tick);
        // ENOSPC stays permanent (kills the daemon).
        let fail = FaultPlan::new(FaultConfig {
            fail: 1.0,
            short_write: 0.0,
            delay: 0.0,
            ..FaultConfig::default()
        });
        let err = compaction_decision(Some(&fail)).unwrap_err();
        assert!(err.is_transient(), "{err:?}");
        let short = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 1.0,
            delay: 0.0,
            ..FaultConfig::default()
        });
        let err = compaction_decision(Some(&short)).unwrap_err();
        assert!(err.is_transient(), "short-write degrades to transient fail");
        let enospc = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 0.0,
            delay: 0.0,
            disk_full: 1.0,
            ..FaultConfig::default()
        });
        let err = compaction_decision(Some(&enospc)).unwrap_err();
        assert!(!err.is_transient(), "{err:?}");
        assert!(compaction_decision(None).is_ok());
    }

    #[test]
    fn in_memory_collections_are_a_no_op() {
        let c = Arc::new(Collection::new(CollectionConfig::new("mem")));
        let flusher = Flusher::start(Arc::clone(&c), Duration::from_millis(2), 1);
        std::thread::sleep(Duration::from_millis(10));
        let stats = flusher.stop().unwrap();
        assert!(stats.syncs >= 1);
    }
}
