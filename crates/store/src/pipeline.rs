//! The aggregation pipeline (§2.1).
//!
//! "The Search Engine receives results from the database by using an
//! aggregation query that passes the data through a series of pipeline
//! stages. The first stage in the pipeline is a `$match` expression …
//! the data is passed through a `$project` stage, which streams only the
//! specified fields … The pipeline also uses a few custom `$function`
//! stages to derive calculations based on the individual documents and
//! the searched query for ranking results."
//!
//! Stages are applied in order to a stream of documents. `$function`
//! stages hold registered Rust closures (the Mongo original embeds
//! JavaScript; the registry in [`FunctionRegistry`] plays that role).

use crate::error::StoreError;
use crate::filter::Filter;
use covidkg_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A scoring/derivation function usable in `$function` stages: document in,
/// computed value out.
pub type DocFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;

/// Named registry of `$function` implementations. The search crate
/// registers its ranking functions here, mirroring the paper's "custom
/// functions … written in JavaScript inside of MongoDB aggregation
/// pipeline query".
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    fns: HashMap<String, DocFn>,
}

impl FunctionRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `name` (replacing any previous binding).
    pub fn register(&mut self, name: impl Into<String>, f: DocFn) {
        self.fns.insert(name.into(), f);
    }

    /// Look up a function.
    pub fn get(&self, name: &str) -> Option<DocFn> {
        self.fns.get(name).cloned()
    }
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FunctionRegistry")
            .field("names", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Smallest first.
    Asc,
    /// Largest first.
    Desc,
}

/// `$group` accumulator operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Accumulator {
    /// `$sum` of a numeric field (missing/non-numeric counts 0).
    Sum(String),
    /// `$avg` of a numeric field.
    Avg(String),
    /// `$min` by total order.
    Min(String),
    /// `$max` by total order.
    Max(String),
    /// `$push` every value of a field into an array.
    Push(String),
    /// `$first` value encountered.
    First(String),
    /// Count of documents in the group.
    Count,
}

/// One pipeline stage.
#[derive(Clone)]
pub enum Stage {
    /// `$match` — filter the stream.
    Match(Filter),
    /// `$project` — keep only the listed dot paths (plus `_id`).
    Project(Vec<String>),
    /// `$unset`-style exclusion — drop the listed dot paths.
    Exclude(Vec<String>),
    /// `$function` — store `f(doc)` under `output` in each document.
    Function {
        /// Display name (for plans and debugging).
        name: String,
        /// The computation.
        f: DocFn,
        /// Output dot path.
        output: String,
    },
    /// `$addFields` with constant values.
    AddFields(Vec<(String, Value)>),
    /// `$sort` by one or more paths.
    Sort(Vec<(String, Order)>),
    /// Explicit bounded top-k under a `$sort` ordering — what the
    /// `$sort`+`$limit` peephole produces, but as a first-class stage so
    /// callers that know their page bound (`search(page=p)` needs only the
    /// top `(p+1)·PAGE_SIZE`) never materialize a full sort.
    TopK {
        /// Sort keys, highest priority first.
        keys: Vec<(String, Order)>,
        /// Number of documents to keep.
        k: usize,
    },
    /// `$skip`.
    Skip(usize),
    /// `$limit`.
    Limit(usize),
    /// `$unwind` an array field into one document per element.
    Unwind(String),
    /// `$group` by a path (`None` groups everything into one bucket).
    Group {
        /// Grouping key path; output docs carry it as `_id`.
        by: Option<String>,
        /// `(output field, accumulator)` pairs.
        accs: Vec<(String, Accumulator)>,
    },
    /// `$count` — collapse the stream to `{<field>: N}`.
    Count(String),
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Match(_) => write!(f, "$match"),
            Stage::Project(p) => write!(f, "$project{p:?}"),
            Stage::Exclude(p) => write!(f, "$exclude{p:?}"),
            Stage::Function { name, output, .. } => write!(f, "$function({name} -> {output})"),
            Stage::AddFields(fs) => write!(f, "$addFields({} fields)", fs.len()),
            Stage::Sort(keys) => write!(f, "$sort{keys:?}"),
            Stage::TopK { keys, k } => write!(f, "$topK(top-{k} by {keys:?})"),
            Stage::Skip(n) => write!(f, "$skip({n})"),
            Stage::Limit(n) => write!(f, "$limit({n})"),
            Stage::Unwind(p) => write!(f, "$unwind({p})"),
            Stage::Group { by, accs } => write!(f, "$group(by {by:?}, {} accs)", accs.len()),
            Stage::Count(field) => write!(f, "$count({field})"),
        }
    }
}

/// An ordered list of stages with a fluent builder.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Empty pipeline (identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// The stages, in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Append a raw stage.
    pub fn stage(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// `$match` from a parsed filter.
    pub fn match_filter(self, filter: Filter) -> Self {
        self.stage(Stage::Match(filter))
    }

    /// `$match` from a JSON query document.
    pub fn match_spec(self, spec: &Value, text_fields: &[String]) -> Result<Self, StoreError> {
        Ok(self.stage(Stage::Match(Filter::parse(spec, text_fields)?)))
    }

    /// `$project` to the listed paths.
    pub fn project<S: Into<String>>(self, fields: impl IntoIterator<Item = S>) -> Self {
        self.stage(Stage::Project(fields.into_iter().map(Into::into).collect()))
    }

    /// Drop the listed paths.
    pub fn exclude<S: Into<String>>(self, fields: impl IntoIterator<Item = S>) -> Self {
        self.stage(Stage::Exclude(fields.into_iter().map(Into::into).collect()))
    }

    /// `$function` computing `output` per document.
    pub fn function(self, name: impl Into<String>, output: impl Into<String>, f: DocFn) -> Self {
        self.stage(Stage::Function {
            name: name.into(),
            f,
            output: output.into(),
        })
    }

    /// `$sort` descending by one path (the common ranking case).
    pub fn sort_desc(self, path: impl Into<String>) -> Self {
        self.stage(Stage::Sort(vec![(path.into(), Order::Desc)]))
    }

    /// `$sort` ascending by one path.
    pub fn sort_asc(self, path: impl Into<String>) -> Self {
        self.stage(Stage::Sort(vec![(path.into(), Order::Asc)]))
    }

    /// Bounded top-k by the given sort keys (see [`Stage::TopK`]).
    pub fn top_k(self, keys: Vec<(String, Order)>, k: usize) -> Self {
        self.stage(Stage::TopK { keys, k })
    }

    /// `$skip`.
    pub fn skip(self, n: usize) -> Self {
        self.stage(Stage::Skip(n))
    }

    /// `$limit`.
    pub fn limit(self, n: usize) -> Self {
        self.stage(Stage::Limit(n))
    }

    /// `$unwind`.
    pub fn unwind(self, path: impl Into<String>) -> Self {
        self.stage(Stage::Unwind(path.into()))
    }

    /// `$group`.
    pub fn group(self, by: Option<String>, accs: Vec<(String, Accumulator)>) -> Self {
        self.stage(Stage::Group { by, accs })
    }

    /// `$count`.
    pub fn count(self, field: impl Into<String>) -> Self {
        self.stage(Stage::Count(field.into()))
    }

    /// If the pipeline starts with `$match`, return that filter — the
    /// collection pushes it down into the shard scan so non-matching
    /// documents are never materialized (the paper's "mindful to use the
    /// $match stage first" optimization).
    pub fn leading_match(&self) -> Option<&Filter> {
        match self.stages.first() {
            Some(Stage::Match(f)) => Some(f),
            _ => None,
        }
    }

    /// Execute against an in-memory document stream.
    pub fn run(&self, docs: Vec<Value>) -> Vec<Value> {
        self.run_stages(docs, 0)
    }

    /// Execute skipping the first `from` stages (used when a leading
    /// `$match` was already pushed down into the scan).
    pub fn run_from(&self, docs: Vec<Value>, from: usize) -> Vec<Value> {
        self.run_stages(docs, from)
    }

    fn run_stages(&self, mut docs: Vec<Value>, from: usize) -> Vec<Value> {
        let stages = &self.stages[from.min(self.stages.len())..];
        let mut i = 0;
        while i < stages.len() {
            // Peephole optimization: `$sort` immediately followed by
            // `$limit n` runs as a heap-based top-k — O(N log n) and only
            // n documents retained, instead of sorting everything. The
            // paper's result pages are exactly this pattern (rank, then
            // keep the page).
            if let (Stage::Sort(keys), Some(Stage::Limit(n))) = (&stages[i], stages.get(i + 1)) {
                docs = top_k(docs, keys, *n);
                i += 2;
                continue;
            }
            docs = apply_stage(&stages[i], docs);
            i += 1;
        }
        docs
    }

    /// Describe the execution plan: one line per physical step, including
    /// pushdown and fusion decisions (the `explain` a Mongo operator
    /// would read before trusting a pipeline).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let mut first = true;
        let mut i = 0;
        while i < self.stages.len() {
            let line = match (&self.stages[i], self.stages.get(i + 1)) {
                (Stage::Match(f), _) if first => {
                    let access = if f.exact_id().is_some() {
                        "single-shard id lookup"
                    } else if f.text_stems().is_some() {
                        "inverted-index candidates + verify"
                    } else {
                        "parallel shard scan"
                    };
                    format!("$match (pushed into scan: {access})")
                }
                (Stage::Sort(keys), Some(Stage::Limit(n))) => {
                    let line = format!("$sort+$limit fused: heap top-{n} by {keys:?}");
                    out.push_str(&line);
                    out.push('\n');
                    i += 2;
                    first = false;
                    continue;
                }
                (Stage::TopK { keys, k }, _) => {
                    format!("$topK: heap top-{k} by {keys:?} (page bound known)")
                }
                (stage, _) => format!("{stage:?}"),
            };
            out.push_str(&line);
            out.push('\n');
            first = false;
            i += 1;
        }
        if out.is_empty() {
            out.push_str("(identity pipeline)\n");
        }
        out
    }
}

/// Heap-based top-k under the `$sort` ordering.
fn top_k(docs: Vec<Value>, keys: &[(String, Order)], k: usize) -> Vec<Value> {
    use std::cmp::Ordering as O;
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &Value, b: &Value| -> O {
        for (path, order) in keys {
            let va = a.path(path).unwrap_or(&Value::Null);
            let vb = b.path(path).unwrap_or(&Value::Null);
            let ord = va.cmp_total(vb);
            let ord = match order {
                Order::Asc => ord,
                Order::Desc => ord.reverse(),
            };
            if ord != O::Equal {
                return ord;
            }
        }
        O::Equal
    };
    if docs.len() <= k {
        let mut docs = docs;
        docs.sort_by(cmp);
        return docs;
    }
    // Keep the k best in a sorted buffer. Insertion goes *after* equal
    // keys (partition_point), so ties resolve by input order — identical
    // to the unfused stable sort + truncate semantics. For page-sized k
    // (tens) the insertion cost is trivial next to the comparisons.
    let mut best: Vec<Value> = Vec::with_capacity(k + 1);
    for doc in docs {
        let pos = best.partition_point(|probe| cmp(probe, &doc) != O::Greater);
        if pos < k {
            best.insert(pos, doc);
            if best.len() > k {
                best.pop();
            }
        }
    }
    best
}

fn apply_stage(stage: &Stage, docs: Vec<Value>) -> Vec<Value> {
    match stage {
        Stage::Match(filter) => docs.into_iter().filter(|d| filter.matches(d)).collect(),
        Stage::Project(fields) => docs.into_iter().map(|d| project(&d, fields)).collect(),
        Stage::Exclude(fields) => docs
            .into_iter()
            .map(|mut d| {
                for f in fields {
                    d.remove_path(f);
                }
                d
            })
            .collect(),
        Stage::Function { f, output, .. } => docs
            .into_iter()
            .map(|mut d| {
                let v = f(&d);
                d.set_path(output, v);
                d
            })
            .collect(),
        Stage::AddFields(fields) => docs
            .into_iter()
            .map(|mut d| {
                for (path, v) in fields {
                    d.set_path(path, v.clone());
                }
                d
            })
            .collect(),
        Stage::Sort(keys) => {
            let mut docs = docs;
            docs.sort_by(|a, b| {
                for (path, order) in keys {
                    let va = a.path(path).unwrap_or(&Value::Null);
                    let vb = b.path(path).unwrap_or(&Value::Null);
                    let ord = va.cmp_total(vb);
                    let ord = match order {
                        Order::Asc => ord,
                        Order::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            docs
        }
        Stage::TopK { keys, k } => top_k(docs, keys, *k),
        Stage::Skip(n) => docs.into_iter().skip(*n).collect(),
        Stage::Limit(n) => docs.into_iter().take(*n).collect(),
        Stage::Unwind(path) => {
            let mut out = Vec::with_capacity(docs.len());
            for doc in docs {
                match doc.path(path) {
                    Some(Value::Array(items)) => {
                        let items = items.clone();
                        for item in items {
                            let mut clone = doc.clone();
                            clone.set_path(path, item);
                            out.push(clone);
                        }
                    }
                    // Mongo drops docs whose unwind path is missing;
                    // scalars pass through unchanged.
                    Some(_) => out.push(doc),
                    None => {}
                }
            }
            out
        }
        Stage::Group { by, accs } => group_stage(by.as_deref(), accs, docs),
        Stage::Count(field) => {
            let mut out = Value::Object(Vec::new());
            out.insert(field.clone(), Value::int(docs.len() as i64));
            vec![out]
        }
    }
}

/// Build a projected document keeping `_id` plus the listed paths — the
/// `$project` stage applied to one document (public so the search engine's
/// top-k fast path can project just the page's documents).
pub fn project(doc: &Value, fields: &[String]) -> Value {
    let mut out = Value::Object(Vec::new());
    if let Some(id) = doc.get("_id") {
        out.insert("_id", id.clone());
    }
    for path in fields {
        if let Some(v) = doc.path(path) {
            out.set_path(path, v.clone());
        }
    }
    out
}

fn group_stage(by: Option<&str>, accs: &[(String, Accumulator)], docs: Vec<Value>) -> Vec<Value> {
    // Keyed by serialized group value for hashability; first-seen order.
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, (Value, Vec<Value>)> = HashMap::new();
    for doc in docs {
        let key_val = match by {
            Some(path) => doc.path(path).cloned().unwrap_or(Value::Null),
            None => Value::Null,
        };
        let key = key_val.to_json();
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                (key_val, Vec::new())
            })
            .1
            .push(doc);
    }
    order
        .into_iter()
        .map(|key| {
            let (key_val, members) = groups.remove(&key).unwrap();
            let mut out = Value::Object(Vec::new());
            out.insert("_id", key_val);
            for (field, acc) in accs {
                out.insert(field.clone(), run_accumulator(acc, &members));
            }
            out
        })
        .collect()
}

fn run_accumulator(acc: &Accumulator, docs: &[Value]) -> Value {
    let nums = |path: &str| -> Vec<f64> {
        docs.iter()
            .filter_map(|d| d.path(path).and_then(Value::as_f64))
            .collect()
    };
    match acc {
        Accumulator::Count => Value::int(docs.len() as i64),
        Accumulator::Sum(path) => {
            let xs = nums(path);
            let total: f64 = xs.iter().sum();
            if total.fract() == 0.0 && total.abs() < 9.0e15 {
                Value::int(total as i64)
            } else {
                Value::float(total)
            }
        }
        Accumulator::Avg(path) => {
            let xs = nums(path);
            if xs.is_empty() {
                Value::Null
            } else {
                Value::float(xs.iter().sum::<f64>() / xs.len() as f64)
            }
        }
        Accumulator::Min(path) => docs
            .iter()
            .filter_map(|d| d.path(path))
            .min_by(|a, b| a.cmp_total(b))
            .cloned()
            .unwrap_or(Value::Null),
        Accumulator::Max(path) => docs
            .iter()
            .filter_map(|d| d.path(path))
            .max_by(|a, b| a.cmp_total(b))
            .cloned()
            .unwrap_or(Value::Null),
        Accumulator::Push(path) => Value::Array(
            docs.iter()
                .filter_map(|d| d.path(path).cloned())
                .collect(),
        ),
        Accumulator::First(path) => docs
            .iter()
            .find_map(|d| d.path(path).cloned())
            .unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{arr, obj};

    fn corpus() -> Vec<Value> {
        vec![
            obj! { "_id" => "a", "topic" => "masks", "year" => 2020, "cites" => 10 },
            obj! { "_id" => "b", "topic" => "masks", "year" => 2021, "cites" => 5 },
            obj! { "_id" => "c", "topic" => "vaccines", "year" => 2021, "cites" => 30 },
            obj! { "_id" => "d", "topic" => "vaccines", "year" => 2022, "cites" => 7 },
        ]
    }

    #[test]
    fn match_project_sort_limit_flow() {
        let out = Pipeline::new()
            .match_spec(&obj! { "year" => obj!{ "$gte" => 2021 } }, &[])
            .unwrap()
            .project(["topic"])
            .sort_asc("_id")
            .limit(2)
            .run(corpus());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("b"));
        // Projection keeps _id + topic only.
        assert!(out[0].get("year").is_none());
        assert!(out[0].get("topic").is_some());
    }

    #[test]
    fn function_stage_computes_scores() {
        let score: DocFn = Arc::new(|d: &Value| {
            Value::float(d.path("cites").and_then(Value::as_f64).unwrap_or(0.0) * 2.0)
        });
        let out = Pipeline::new()
            .function("double_cites", "score", score)
            .sort_desc("score")
            .run(corpus());
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("c"));
        assert_eq!(out[0].path("score").and_then(Value::as_f64), Some(60.0));
    }

    #[test]
    fn group_accumulators() {
        let out = Pipeline::new()
            .group(
                Some("topic".into()),
                vec![
                    ("n".into(), Accumulator::Count),
                    ("total".into(), Accumulator::Sum("cites".into())),
                    ("avg".into(), Accumulator::Avg("cites".into())),
                    ("top".into(), Accumulator::Max("cites".into())),
                    ("years".into(), Accumulator::Push("year".into())),
                    ("first".into(), Accumulator::First("_id".into())),
                ],
            )
            .sort_asc("_id")
            .run(corpus());
        assert_eq!(out.len(), 2);
        let masks = &out[0];
        assert_eq!(masks.get("_id").unwrap().as_str(), Some("masks"));
        assert_eq!(masks.get("n").unwrap().as_i64(), Some(2));
        assert_eq!(masks.get("total").unwrap().as_i64(), Some(15));
        assert_eq!(masks.get("avg").unwrap().as_f64(), Some(7.5));
        assert_eq!(masks.get("top").unwrap().as_i64(), Some(10));
        assert_eq!(masks.get("years").unwrap(), &arr![2020, 2021]);
        assert_eq!(masks.get("first").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn group_all_into_one_bucket() {
        let out = Pipeline::new()
            .group(None, vec![("n".into(), Accumulator::Count)])
            .run(corpus());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(4));
        assert!(out[0].get("_id").unwrap().is_null());
    }

    #[test]
    fn unwind_expands_arrays() {
        let docs = vec![obj! { "_id" => "x", "tags" => arr!["a", "b"] }];
        let out = Pipeline::new().unwind("tags").run(docs);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].path("tags").unwrap().as_str(), Some("a"));
        assert_eq!(out[1].path("tags").unwrap().as_str(), Some("b"));
    }

    #[test]
    fn unwind_drops_missing_and_keeps_scalars() {
        let docs = vec![
            obj! { "_id" => "x", "tags" => "solo" },
            obj! { "_id" => "y" },
        ];
        let out = Pipeline::new().unwind("tags").run(docs);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn count_stage() {
        let out = Pipeline::new()
            .match_spec(&obj! { "topic" => "masks" }, &[])
            .unwrap()
            .count("total")
            .run(corpus());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("total").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn skip_and_limit_paginate() {
        let page2 = Pipeline::new().sort_asc("_id").skip(2).limit(2).run(corpus());
        assert_eq!(page2.len(), 2);
        assert_eq!(page2[0].get("_id").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn exclude_drops_fields() {
        let out = Pipeline::new().exclude(["cites"]).run(corpus());
        assert!(out.iter().all(|d| d.get("cites").is_none()));
        assert!(out.iter().all(|d| d.get("topic").is_some()));
    }

    #[test]
    fn add_fields_constant() {
        let out = Pipeline::new()
            .stage(Stage::AddFields(vec![("source".into(), Value::str("cord19"))]))
            .run(corpus());
        assert!(out
            .iter()
            .all(|d| d.get("source").unwrap().as_str() == Some("cord19")));
    }

    #[test]
    fn sort_with_secondary_key() {
        let out = Pipeline::new()
            .stage(Stage::Sort(vec![
                ("year".into(), Order::Desc),
                ("cites".into(), Order::Asc),
            ]))
            .run(corpus());
        let ids: Vec<&str> = out.iter().map(|d| d.get("_id").unwrap().as_str().unwrap()).collect();
        assert_eq!(ids, ["d", "b", "c", "a"]);
    }

    #[test]
    fn leading_match_is_exposed_for_pushdown() {
        let p = Pipeline::new()
            .match_spec(&obj! { "topic" => "masks" }, &[])
            .unwrap()
            .limit(1);
        assert!(p.leading_match().is_some());
        let p2 = Pipeline::new().limit(1);
        assert!(p2.leading_match().is_none());
    }

    #[test]
    fn nested_projection_paths() {
        let docs = vec![obj! { "_id" => "x", "a" => obj!{ "b" => 1, "c" => 2 } }];
        let out = Pipeline::new().project(["a.b"]).run(docs);
        assert_eq!(out[0].path("a.b").and_then(Value::as_i64), Some(1));
        assert!(out[0].path("a.c").is_none());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let docs = corpus();
        assert_eq!(Pipeline::new().run(docs.clone()), docs);
    }

    /// The fused sort+limit must be indistinguishable from sort-then-limit,
    /// including stable tie ordering.
    #[test]
    fn top_k_fusion_matches_full_sort() {
        let docs: Vec<Value> = (0..200)
            .map(|i| obj! { "_id" => format!("d{i:03}"), "k" => i % 9, "seq" => i })
            .collect();
        for k in [0usize, 1, 5, 9, 50, 199, 200, 500] {
            // Fused path.
            let fused = Pipeline::new().sort_asc("k").limit(k).run(docs.clone());
            // Reference: separate sort, then separate limit (the Limit
            // stage alone is not fused because Sort is split off).
            let mut reference = Pipeline::new().sort_asc("k").run(docs.clone());
            reference.truncate(k);
            assert_eq!(fused, reference, "k = {k}");
        }
        // Descending with secondary key.
        let fused = Pipeline::new()
            .stage(Stage::Sort(vec![
                ("k".into(), Order::Desc),
                ("seq".into(), Order::Asc),
            ]))
            .limit(7)
            .run(docs.clone());
        let mut reference = Pipeline::new()
            .stage(Stage::Sort(vec![
                ("k".into(), Order::Desc),
                ("seq".into(), Order::Asc),
            ]))
            .run(docs);
        reference.truncate(7);
        assert_eq!(fused, reference);
    }

    #[test]
    fn top_k_stage_matches_sort_truncate() {
        let docs: Vec<Value> = (0..40)
            .map(|i| obj! { "k" => (i * 13) % 17, "seq" => i })
            .collect();
        let keys = vec![("k".into(), Order::Desc), ("seq".into(), Order::Asc)];
        for k in [0, 1, 5, 40, 100] {
            let topk = Pipeline::new()
                .top_k(keys.clone(), k)
                .run(docs.clone());
            let mut reference = Pipeline::new()
                .stage(Stage::Sort(keys.clone()))
                .run(docs.clone());
            reference.truncate(k);
            assert_eq!(topk, reference, "k = {k}");
        }
        let plan = Pipeline::new().top_k(keys, 10).explain();
        assert!(plan.contains("$topK: heap top-10"), "{plan}");
    }

    #[test]
    fn explain_describes_pushdown_and_fusion() {
        let p = Pipeline::new()
            .match_spec(&obj! { "_id" => "a" }, &[])
            .unwrap()
            .project(["topic"])
            .sort_desc("cites")
            .limit(10);
        let plan = p.explain();
        assert!(plan.contains("single-shard id lookup"), "{plan}");
        assert!(plan.contains("heap top-10"), "{plan}");

        let p = Pipeline::new()
            .match_spec(&obj! { "$text" => obj!{ "$search" => "mask" } }, &["title".to_string()])
            .unwrap()
            .sort_desc("score");
        let plan = p.explain();
        assert!(plan.contains("inverted-index candidates"), "{plan}");
        assert!(plan.contains("$sort"), "{plan}");
        // Non-leading match is not a pushdown.
        let p = Pipeline::new().limit(1).match_spec(&obj! {}, &[]).unwrap();
        assert!(!p.explain().contains("pushed into scan"));
        assert_eq!(Pipeline::new().explain(), "(identity pipeline)\n");
    }
}
