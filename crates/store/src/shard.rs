//! A single shard: an id → document map behind a `parking_lot` RwLock.
//!
//! COVIDKG's MongoDB cluster is sharded (§2 "scalable sharded MongoDB
//! storage"); [`crate::Collection`] hash-routes documents across a fixed
//! set of these shards so reads of different shards never contend.

use covidkg_json::Value;
use std::sync::RwLock;
use std::collections::BTreeMap;

/// One shard of a collection.
#[derive(Debug, Default)]
pub struct Shard {
    /// `_id` → document. BTreeMap keeps scans deterministic (insertion
    /// order independence matters for reproducible experiment output).
    docs: RwLock<BTreeMap<String, Value>>,
}

impl Shard {
    /// Empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace; returns the previous document if any.
    pub fn put(&self, id: &str, doc: Value) -> Option<Value> {
        self.docs.write().unwrap().insert(id.to_string(), doc)
    }

    /// Insert only if absent; returns false when the id already exists.
    pub fn put_new(&self, id: &str, doc: Value) -> bool {
        let mut guard = self.docs.write().unwrap();
        if guard.contains_key(id) {
            return false;
        }
        guard.insert(id.to_string(), doc);
        true
    }

    /// Fetch a clone of a document.
    pub fn get(&self, id: &str) -> Option<Value> {
        self.docs.read().unwrap().get(id).cloned()
    }

    /// Run `f` against a document under the read lock, without cloning —
    /// the scoring hot path reads thousands of candidates and clones only
    /// the few that enter a top-k heap.
    pub fn with_doc<T>(&self, id: &str, f: impl FnOnce(&Value) -> T) -> Option<T> {
        self.docs.read().unwrap().get(id).map(f)
    }

    /// Remove a document, returning it.
    pub fn remove(&self, id: &str) -> Option<Value> {
        self.docs.write().unwrap().remove(id)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.read().unwrap().len()
    }

    /// True when the shard holds nothing.
    pub fn is_empty(&self) -> bool {
        self.docs.read().unwrap().is_empty()
    }

    /// Approximate resident bytes (document payloads only).
    pub fn approx_bytes(&self) -> usize {
        self.docs
            .read().unwrap()
            .iter()
            .map(|(k, v)| k.len() + v.approx_size())
            .sum()
    }

    /// Run `f` over every document under the read lock, collecting its
    /// non-`None` outputs. Scans clone nothing unless `f` does.
    pub fn scan<T>(&self, mut f: impl FnMut(&str, &Value) -> Option<T>) -> Vec<T> {
        let guard = self.docs.read().unwrap();
        let mut out = Vec::new();
        for (id, doc) in guard.iter() {
            if let Some(t) = f(id, doc) {
                out.push(t);
            }
        }
        out
    }

    /// Visit every document (used by snapshotting and index rebuilds).
    pub fn for_each(&self, mut f: impl FnMut(&str, &Value)) {
        for (id, doc) in self.docs.read().unwrap().iter() {
            f(id, doc);
        }
    }

    /// Apply an in-place mutation to one document. Returns false when the
    /// document does not exist.
    pub fn update(&self, id: &str, f: impl FnOnce(&mut Value)) -> bool {
        let mut guard = self.docs.write().unwrap();
        match guard.get_mut(id) {
            Some(doc) => {
                f(doc);
                true
            }
            None => false,
        }
    }

    /// Drop all documents.
    pub fn clear(&self) {
        self.docs.write().unwrap().clear();
    }
}

/// Stable hash used for shard routing (FNV-1a over the id bytes). A fixed,
/// dependency-free hash keeps routing identical across runs and platforms,
/// which the WAL/snapshot format relies on.
pub fn route_hash(id: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in id.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::obj;

    #[test]
    fn put_get_remove_cycle() {
        let s = Shard::new();
        assert!(s.put_new("a", obj! { "x" => 1 }));
        assert!(!s.put_new("a", obj! { "x" => 2 }), "duplicate must be refused");
        assert_eq!(s.get("a").unwrap().path("x").unwrap().as_i64(), Some(1));
        let old = s.put("a", obj! { "x" => 3 });
        assert!(old.is_some());
        assert_eq!(s.get("a").unwrap().path("x").unwrap().as_i64(), Some(3));
        assert!(s.remove("a").is_some());
        assert!(s.get("a").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn scan_filters_and_orders() {
        let s = Shard::new();
        for i in 0..5 {
            s.put(&format!("id{i}"), obj! { "n" => i });
        }
        let odd: Vec<i64> = s.scan(|_, d| {
            let n = d.path("n").unwrap().as_i64().unwrap();
            (n % 2 == 1).then_some(n)
        });
        assert_eq!(odd, [1, 3]);
    }

    #[test]
    fn update_in_place() {
        let s = Shard::new();
        s.put("a", obj! { "n" => 1 });
        assert!(s.update("a", |d| d.insert("n", 2)));
        assert_eq!(s.get("a").unwrap().path("n").unwrap().as_i64(), Some(2));
        assert!(!s.update("missing", |_| {}));
    }

    #[test]
    fn approx_bytes_tracks_content() {
        let s = Shard::new();
        let empty = s.approx_bytes();
        s.put("a", obj! { "text" => "some body text" });
        assert!(s.approx_bytes() > empty);
    }

    #[test]
    fn route_hash_is_stable_and_spread() {
        // Pinned values guard against accidental algorithm changes that
        // would break persisted shard routing.
        assert_eq!(route_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(route_hash("a"), route_hash("b"));
        // Rough spread check over 1000 ids and 8 shards.
        let mut counts = [0usize; 8];
        for i in 0..1000 {
            counts[(route_hash(&format!("doc{i}")) % 8) as usize] += 1;
        }
        for &c in &counts {
            assert!((60..=200).contains(&c), "unbalanced shard: {counts:?}");
        }
    }

    #[test]
    fn concurrent_readers_and_writers() {
        use std::sync::Arc;
        let s = Arc::new(Shard::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    s.put(&format!("t{t}-{i}"), obj! { "t" => t, "i" => i });
                    let _ = s.len();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 1000);
    }
}
