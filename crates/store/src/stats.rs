//! Storage statistics.
//!
//! §2 reports the production deployment's footprint: "Our MongoDB sharded
//! cluster storing data and all trained Deep-learning models and
//! embeddings takes ≈965GB for its distributed dataset storage, with raw
//! space consumption of more than 5TB." The stats report here produces
//! the same summary shape (per-collection, per-shard document counts and
//! byte sizes plus a raw-space estimate) at whatever scale the current
//! corpus has.

use std::fmt::Write as _;

/// Stats for one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard ordinal.
    pub shard: usize,
    /// Documents resident.
    pub docs: usize,
    /// Approximate payload bytes.
    pub bytes: usize,
}

/// Stats for one collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectionStats {
    /// Collection name.
    pub name: String,
    /// Total documents.
    pub docs: usize,
    /// Total approximate payload bytes.
    pub bytes: usize,
    /// Distinct stems in the text index (0 when unindexed).
    pub indexed_terms: usize,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
}

impl CollectionStats {
    /// Max/min shard document ratio — 1.0 is perfectly balanced. Returns
    /// `f64::INFINITY` when some shard is empty while another is not.
    pub fn balance_ratio(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.docs).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.docs).min().unwrap_or(0);
        if max == 0 {
            1.0
        } else if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Stats for a whole database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DbStats {
    /// Per-collection stats.
    pub collections: Vec<CollectionStats>,
}

impl DbStats {
    /// Total documents across collections.
    pub fn total_docs(&self) -> usize {
        self.collections.iter().map(|c| c.docs).sum()
    }

    /// Total approximate dataset bytes.
    pub fn total_bytes(&self) -> usize {
        self.collections.iter().map(|c| c.bytes).sum()
    }

    /// Raw-space estimate: dataset bytes plus index/replication overhead.
    /// The paper's cluster shows ~5.2× raw-to-dataset blowup (5 TB over
    /// 965 GB); we apply the same factor so the report shape matches.
    pub fn raw_bytes_estimate(&self) -> usize {
        (self.total_bytes() as f64 * 5.2) as usize
    }

    /// Render the storage report.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== storage report =================================");
        let _ = writeln!(
            out,
            "total: {} documents, {} dataset, {} raw (est.)",
            self.total_docs(),
            human_bytes(self.total_bytes()),
            human_bytes(self.raw_bytes_estimate()),
        );
        for c in &self.collections {
            let _ = writeln!(
                out,
                "collection {:<14} {:>8} docs  {:>10}  {} text terms  balance {:.2}",
                c.name,
                c.docs,
                human_bytes(c.bytes),
                c.indexed_terms,
                c.balance_ratio(),
            );
            for s in &c.shards {
                let _ = writeln!(
                    out,
                    "  shard {:<2} {:>8} docs  {:>10}",
                    s.shard,
                    s.docs,
                    human_bytes(s.bytes)
                );
            }
        }
        out
    }
}

/// Format a byte count like `1.2 GB`.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DbStats {
        DbStats {
            collections: vec![CollectionStats {
                name: "pubs".into(),
                docs: 100,
                bytes: 10_000,
                indexed_terms: 420,
                shards: vec![
                    ShardStats { shard: 0, docs: 48, bytes: 5000 },
                    ShardStats { shard: 1, docs: 52, bytes: 5000 },
                ],
            }],
        }
    }

    #[test]
    fn totals_aggregate() {
        let s = sample();
        assert_eq!(s.total_docs(), 100);
        assert_eq!(s.total_bytes(), 10_000);
        assert_eq!(s.raw_bytes_estimate(), 52_000);
    }

    #[test]
    fn balance_ratio() {
        let s = sample();
        let ratio = s.collections[0].balance_ratio();
        assert!((1.0..1.1).contains(&ratio));
        let empty = CollectionStats {
            name: "e".into(),
            docs: 0,
            bytes: 0,
            indexed_terms: 0,
            shards: vec![ShardStats { shard: 0, docs: 0, bytes: 0 }],
        };
        assert_eq!(empty.balance_ratio(), 1.0);
        let skewed = CollectionStats {
            shards: vec![
                ShardStats { shard: 0, docs: 0, bytes: 0 },
                ShardStats { shard: 1, docs: 5, bytes: 0 },
            ],
            ..empty
        };
        assert!(skewed.balance_ratio().is_infinite());
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0 MB");
        assert!(human_bytes(usize::MAX).ends_with("TB"));
    }

    #[test]
    fn report_contains_key_lines() {
        let r = sample().render_report();
        assert!(r.contains("storage report"));
        assert!(r.contains("collection pubs"));
        assert!(r.contains("shard 0"));
    }
}
