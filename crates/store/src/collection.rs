//! A sharded collection of JSON documents.
//!
//! Routing: `shard = fnv1a(_id) % n_shards` (stable across runs).
//! Aggregation pushes a leading `$match` down into the shard scan —
//! exact-`_id` filters route to one shard, `$text` filters consult the
//! inverted index, everything else runs a predicate scan that never
//! materializes non-matching documents (the paper's `$match`-first
//! rationale, §2.1).

use crate::error::StoreError;
use crate::fault::{with_backoff, Fault, FaultOp, FaultPlan, RetryPolicy};
use crate::filter::Filter;
use crate::index::{HashIndex, TextIndex};
use crate::pipeline::Pipeline;
use crate::pool::ScorePool;
use crate::shard::{route_hash, Shard};
use crate::stats::{CollectionStats, ShardStats};
use crate::wal::{self, WalRecord, WalTail, WalWriter};
use covidkg_json::Value;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock, RwLock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for a collection.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Collection name (also the persistence file stem).
    pub name: String,
    /// Number of hash shards (≥ 1).
    pub shards: usize,
    /// Dot paths covered by the stemmed text index and used by `$text`.
    pub text_fields: Vec<String>,
}

impl CollectionConfig {
    /// A config with the given name, 4 shards and no text index.
    pub fn new(name: impl Into<String>) -> Self {
        CollectionConfig {
            name: name.into(),
            shards: 4,
            text_fields: Vec::new(),
        }
    }

    /// Set the shard count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Enable the text index over the given paths.
    pub fn with_text_fields<S: Into<String>>(mut self, fields: impl IntoIterator<Item = S>) -> Self {
        self.text_fields = fields.into_iter().map(Into::into).collect();
        self
    }
}

/// Poison-recovering `Mutex` lock: a panic elsewhere must not cascade
/// into the storage path (the protected state is a WAL writer whose own
/// torn-tail repair handles interrupted appends).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering `RwLock` read guard.
fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering `RwLock` write guard.
fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Below this many documents (or candidates) a read runs single-threaded;
/// thread startup would cost more than it saves.
const PARALLEL_THRESHOLD: usize = 512;

/// Bounded best-k buffer under `(score desc, _id asc)` — sorted insertion
/// with eviction of the worst entry, identical to full sort + truncate.
struct TopBuffer {
    k: usize,
    entries: Vec<(f64, String, Value)>,
}

impl TopBuffer {
    fn new(k: usize) -> Self {
        TopBuffer {
            k,
            entries: Vec::with_capacity(k.min(64).saturating_add(1)),
        }
    }

    /// The ranking total order: higher score first (`f64::total_cmp`;
    /// scores are finite and non-negative, so this agrees with the
    /// `$sort`-stage comparison on `Value::float` scores), then ascending
    /// id. Ids are unique, so distinct documents never compare equal —
    /// which is what makes the per-shard merge schedule-independent.
    fn cmp(sa: f64, ia: &str, sb: f64, ib: &str) -> std::cmp::Ordering {
        sb.total_cmp(&sa).then_with(|| ia.cmp(ib))
    }

    fn push(&mut self, score: f64, id: &str, doc: &Value) {
        if self.k == 0 {
            return;
        }
        let pos = self.entries.partition_point(|(s, eid, _)| {
            Self::cmp(*s, eid, score, id) == std::cmp::Ordering::Less
        });
        if pos < self.k {
            self.entries.insert(pos, (score, id.to_string(), doc.clone()));
            if self.entries.len() > self.k {
                self.entries.pop();
            }
        }
    }
}

/// A sharded document collection.
pub struct Collection {
    config: CollectionConfig,
    shards: Vec<Shard>,
    text_index: Option<TextIndex>,
    hash_indexes: RwLock<Vec<Arc<HashIndex>>>,
    wal: Option<Mutex<WalWriter>>,
    snapshot_path: Option<PathBuf>,
    next_id: AtomicU64,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    retry: RwLock<RetryPolicy>,
    retries: AtomicU64,
    mutations: AtomicU64,
    /// Recent `(epoch after bump, doc id)` mutations, bounded to
    /// [`MUTATION_LOG_CAP`] entries so [`Collection::touched_since`] can
    /// name exactly which documents changed across an epoch window.
    mutation_log: Mutex<VecDeque<(u64, String)>>,
    /// Replication sequence for in-memory collections (durable ones
    /// track it in the WAL writer; see [`Collection::repl_watermark`]).
    mem_seq: AtomicU64,
    /// Persistent shard-parallel scoring pool. Injected by the owning
    /// [`crate::Database`] (one pool shared across its collections);
    /// falls back to [`ScorePool::global`] so no query path ever spawns
    /// a thread per shard.
    score_pool: OnceLock<Arc<ScorePool>>,
}

/// How many recent mutations [`Collection::touched_since`] can account
/// for; older windows fall back to "everything may have changed".
const MUTATION_LOG_CAP: usize = 256;

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collection")
            .field("name", &self.config.name)
            .field("shards", &self.config.shards)
            .field("docs", &self.len())
            .finish()
    }
}

impl Collection {
    /// Create an in-memory collection.
    pub fn new(config: CollectionConfig) -> Self {
        let shards = (0..config.shards).map(|_| Shard::new()).collect();
        let text_index = if config.text_fields.is_empty() {
            None
        } else {
            Some(TextIndex::new(config.text_fields.clone()))
        };
        Collection {
            config,
            shards,
            text_index,
            hash_indexes: RwLock::new(Vec::new()),
            wal: None,
            snapshot_path: None,
            next_id: AtomicU64::new(1),
            faults: RwLock::new(None),
            retry: RwLock::new(RetryPolicy::default()),
            retries: AtomicU64::new(0),
            mutations: AtomicU64::new(0),
            mutation_log: Mutex::new(VecDeque::new()),
            mem_seq: AtomicU64::new(0),
            score_pool: OnceLock::new(),
        }
    }

    /// Inject a shared scoring pool (first injection wins; later calls
    /// are no-ops). [`crate::Database`] injects its per-database pool
    /// into every collection it creates; a collection never handed one
    /// scores through [`ScorePool::global`].
    pub fn set_score_pool(&self, pool: Arc<ScorePool>) {
        let _ = self.score_pool.set(pool);
    }

    /// The pool shard-parallel reads run on.
    pub fn score_pool(&self) -> &Arc<ScorePool> {
        self.score_pool.get().unwrap_or_else(|| ScorePool::global())
    }

    /// Create a persistent collection in `dir`, recovering any existing
    /// snapshot + WAL for this collection name.
    pub fn open(config: CollectionConfig, dir: &std::path::Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(format!("{}.snapshot", config.name));
        let wal_path = dir.join(format!("{}.wal", config.name));
        let mut coll = Collection::new(config);

        for doc in wal::read_snapshot(&snapshot_path)? {
            coll.apply_insert(doc, false)?;
        }
        let (records, _truncated) = wal::read_wal(&wal_path)?;
        for record in records {
            match record {
                WalRecord::Insert(doc) => {
                    // Re-inserting an id that the snapshot already holds
                    // cannot happen (snapshot resets the WAL), but stay
                    // tolerant during recovery.
                    let _ = coll.apply_insert(doc, false);
                }
                WalRecord::Update { id, doc } => {
                    let _ = coll.apply_replace(&id, doc, false);
                }
                WalRecord::Delete { id } => {
                    let _ = coll.apply_delete(&id, false);
                }
            }
        }
        coll.wal = Some(Mutex::new(WalWriter::open(&wal_path)?));
        coll.snapshot_path = Some(snapshot_path);
        Ok(coll)
    }

    /// The collection's configuration.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Total document count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Shard::len).sum()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(Shard::is_empty)
    }

    fn shard_for(&self, id: &str) -> &Shard {
        &self.shards[(route_hash(id) % self.shards.len() as u64) as usize]
    }

    fn fresh_id(&self) -> String {
        loop {
            let n = self.next_id.fetch_add(1, Ordering::Relaxed);
            let id = format!("{}-{n:08x}", self.config.name);
            if self.get(&id).is_none() {
                return id;
            }
        }
    }

    /// Attach (or detach) a fault plan. Every subsequent WAL append,
    /// sync, reset and snapshot write consults it; injected faults
    /// surface as [`StoreError::Transient`] and go through the
    /// collection's retry policy like real transient I/O errors.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        if let Some(wal) = &self.wal {
            lock(wal).set_fault_plan(plan.clone());
        }
        *write(&self.faults) = plan;
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        read(&self.faults).clone()
    }

    /// Replace the retry policy used for transient WAL/snapshot faults.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *write(&self.retry) = policy;
    }

    /// Transient-fault retries performed so far (across all I/O paths).
    pub fn io_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn retry_policy(&self) -> RetryPolicy {
        *read(&self.retry)
    }

    fn count_retry(&self, _e: &StoreError) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Consult the attached fault plan for a non-write operation `op`
    /// (index rebuilds and the like), retrying injected transient
    /// failures under the collection's policy. Short writes make no
    /// sense for a decision point and degrade to outright failure.
    fn consult_fault(&self, op: FaultOp) -> Result<(), StoreError> {
        let Some(plan) = self.fault_plan() else {
            return Ok(());
        };
        let policy = self.retry_policy();
        with_backoff(&policy, |e| self.count_retry(e), || match plan.decide(op) {
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(Fault::DiskFull) => Err(FaultPlan::disk_full_error(op)),
            Some(Fault::Fail | Fault::ShortWrite(_)) => Err(FaultPlan::error(op)),
            None => Ok(()),
        })
    }

    fn log(&self, record: &WalRecord) -> Result<(), StoreError> {
        if let Some(wal) = &self.wal {
            let policy = self.retry_policy();
            with_backoff(&policy, |e| self.count_retry(e), || {
                lock(wal).append(record)
            })?;
        }
        Ok(())
    }

    /// Insert a document; a missing `_id` gets a generated one. Returns
    /// the id. Fails on duplicate ids.
    pub fn insert(&self, doc: Value) -> Result<String, StoreError> {
        self.apply_insert(doc, true)
    }

    fn apply_insert(&self, mut doc: Value, log: bool) -> Result<String, StoreError> {
        if doc.as_object().is_none() {
            return Err(StoreError::BadQuery("documents must be objects".into()));
        }
        let id = match doc.get("_id").and_then(Value::as_str) {
            Some(id) => id.to_string(),
            None => {
                let id = self.fresh_id();
                // Keep _id first for readability of dumps.
                let mut with_id = Value::Object(vec![("_id".into(), Value::str(id.clone()))]);
                if let Some(members) = doc.as_object_mut() {
                    for (k, v) in members.drain(..) {
                        with_id.as_object_mut().unwrap().push((k, v));
                    }
                }
                doc = with_id;
                id
            }
        };
        if log {
            self.log(&WalRecord::Insert(doc.clone()))?;
        }
        if !self.shard_for(&id).put_new(&id, doc.clone()) {
            return Err(StoreError::DuplicateId(id));
        }
        if let Some(ti) = &self.text_index {
            ti.add(&id, &doc);
        }
        for idx in read(&self.hash_indexes).iter() {
            idx.add(&id, &doc);
        }
        Ok(id)
    }

    /// Insert many documents; stops at the first error.
    pub fn insert_many(&self, docs: impl IntoIterator<Item = Value>) -> Result<Vec<String>, StoreError> {
        docs.into_iter().map(|d| self.insert(d)).collect()
    }

    /// Insert a batch using `threads` worker threads (std scoped
    /// threads pulling from a shared work queue).
    /// Returns the number inserted; duplicate-id errors abort the batch
    /// with the first error observed.
    pub fn insert_parallel(&self, docs: Vec<Value>, threads: usize) -> Result<usize, StoreError> {
        let threads = threads.max(1);
        let total = docs.len();
        let queue = Mutex::new(docs.into_iter());
        let first_err: Mutex<Option<StoreError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let Some(doc) = lock(&queue).next() else {
                        return;
                    };
                    if let Err(e) = self.insert(doc) {
                        let mut slot = lock(&first_err);
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                        return;
                    }
                });
            }
        });
        match first_err.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Fetch a document by id.
    pub fn get(&self, id: &str) -> Option<Value> {
        self.shard_for(id).get(id)
    }

    /// Replace a document wholesale (the `_id` in `doc` is overwritten).
    pub fn replace(&self, id: &str, doc: Value) -> Result<(), StoreError> {
        self.apply_replace(id, doc, true)
    }

    fn apply_replace(&self, id: &str, mut doc: Value, log: bool) -> Result<(), StoreError> {
        if doc.as_object().is_none() {
            return Err(StoreError::BadQuery("documents must be objects".into()));
        }
        doc.insert("_id", Value::str(id));
        let shard = self.shard_for(id);
        let Some(old) = shard.get(id) else {
            return Err(StoreError::NotFound(id.to_string()));
        };
        if log {
            self.log(&WalRecord::Update {
                id: id.to_string(),
                doc: doc.clone(),
            })?;
        }
        if let Some(ti) = &self.text_index {
            ti.remove(id, &old);
            ti.add(id, &doc);
        }
        for idx in read(&self.hash_indexes).iter() {
            idx.remove(id, &old);
            idx.add(id, &doc);
        }
        shard.put(id, doc);
        let epoch = self.mutations.fetch_add(1, Ordering::Release) + 1;
        self.log_mutation(epoch, id);
        Ok(())
    }

    /// Apply an in-place mutation, re-indexing afterwards.
    pub fn update(&self, id: &str, f: impl FnOnce(&mut Value)) -> Result<(), StoreError> {
        let Some(mut doc) = self.get(id) else {
            return Err(StoreError::NotFound(id.to_string()));
        };
        f(&mut doc);
        self.apply_replace(id, doc, true)
    }

    /// Delete a document.
    pub fn delete(&self, id: &str) -> Result<Value, StoreError> {
        self.apply_delete(id, true)
    }

    fn apply_delete(&self, id: &str, log: bool) -> Result<Value, StoreError> {
        if log {
            self.log(&WalRecord::Delete { id: id.to_string() })?;
        }
        let Some(old) = self.shard_for(id).remove(id) else {
            return Err(StoreError::NotFound(id.to_string()));
        };
        if let Some(ti) = &self.text_index {
            ti.remove(id, &old);
        }
        for idx in read(&self.hash_indexes).iter() {
            idx.remove(id, &old);
        }
        let epoch = self.mutations.fetch_add(1, Ordering::Release) + 1;
        self.log_mutation(epoch, id);
        Ok(old)
    }

    /// Monotonic counter bumped whenever an existing document changes or
    /// disappears (replace, update, delete) — inserts can't invalidate
    /// anything previously rendered, and a delete-then-reinsert is covered
    /// by the delete's bump. Render-level caches key on this epoch.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations.load(Ordering::Acquire)
    }

    fn log_mutation(&self, epoch: u64, id: &str) {
        let mut log = lock(&self.mutation_log);
        if log.len() >= MUTATION_LOG_CAP {
            log.pop_front();
        }
        log.push_back((epoch, id.to_string()));
    }

    /// Document ids touched by mutations since epoch `since` (exclusive),
    /// deduplicated. Returns `None` when the bounded mutation log no
    /// longer covers the whole window — the caller must then assume every
    /// document may have changed. `Some(vec![])` means provably nothing
    /// changed. Ids touched by mutations racing with this call may be
    /// included; that over-approximation is always safe for invalidation.
    pub fn touched_since(&self, since: u64) -> Option<Vec<String>> {
        let current = self.mutation_epoch();
        if current <= since {
            return Some(Vec::new());
        }
        let needed = (current - since) as usize;
        let log = lock(&self.mutation_log);
        let mut ids: Vec<String> = log
            .iter()
            .filter(|(e, _)| *e > since)
            .map(|(_, id)| id.clone())
            .collect();
        // Every mutation in (since, current] pushed exactly one entry; a
        // shortfall means the log dropped part of the window.
        if ids.len() < needed {
            return None;
        }
        ids.sort();
        ids.dedup();
        Some(ids)
    }

    /// Create (and backfill) a hash index over `path`. The backfill is
    /// an index-rebuild point: an attached fault plan can fail or delay
    /// it ([`FaultOp::IndexRebuild`]), with transient failures retried
    /// under the collection's policy before surfacing.
    pub fn create_hash_index(&self, path: impl Into<String>) -> Result<Arc<HashIndex>, StoreError> {
        self.consult_fault(FaultOp::IndexRebuild)?;
        let idx = Arc::new(HashIndex::new(path));
        for shard in &self.shards {
            shard.for_each(|id, doc| idx.add(id, doc));
        }
        write(&self.hash_indexes).push(Arc::clone(&idx));
        Ok(idx)
    }

    /// The text index, if configured.
    pub fn text_index(&self) -> Option<&TextIndex> {
        self.text_index.as_ref()
    }

    /// Find documents matching a filter (cloned out of the shards).
    pub fn find(&self, filter: &Filter) -> Vec<Value> {
        // Exact-id fast path: route to a single shard.
        if let Some(id) = filter.exact_id() {
            return self
                .get(id)
                .into_iter()
                .filter(|d| filter.matches(d))
                .collect();
        }
        // Index pruning: resolve the filter to a candidate superset
        // (intersecting AND branches, unioning OR branches), then verify
        // each candidate against the full predicate.
        if let Some(ti) = &self.text_index {
            if let Some(ids) = filter.index_candidates(ti) {
                return ids
                    .iter()
                    .filter_map(|id| self.get(id))
                    .filter(|d| filter.matches(d))
                    .collect();
            }
        }
        self.parallel_scan(|_, doc| filter.matches(doc).then(|| doc.clone()))
    }

    /// Count documents matching a filter without materializing them.
    pub fn count(&self, filter: &Filter) -> usize {
        self.parallel_scan(|_, d| filter.matches(d).then_some(()))
            .len()
    }

    /// Score the documents matching `filter` and return the total match
    /// count plus the top `k` by `(score desc, _id asc)`.
    ///
    /// The scoring work is partitioned by shard — index-pruned candidate
    /// ids routed to their home shard when the filter is boundable, whole
    /// shards otherwise — and large partitions fan out one worker thread
    /// per shard, each keeping only a bounded `k`-entry buffer (documents
    /// are read under the shard lock and cloned only on entering a
    /// buffer). The per-shard buffers merge under the same total order, so
    /// the result is identical to scoring every match and fully sorting,
    /// independent of thread scheduling.
    pub fn scored_top_k(
        &self,
        filter: &Filter,
        k: usize,
        score: impl Fn(&str, &Value) -> f64 + Sync,
    ) -> (usize, Vec<(f64, Value)>) {
        // Partition candidate ids by home shard; `None` partitions mean
        // "scan the whole shard".
        let candidates = self
            .text_index
            .as_ref()
            .and_then(|ti| filter.index_candidates(ti));
        let (work, parts): (usize, Option<Vec<Vec<&str>>>) = match &candidates {
            Some(ids) => {
                let mut parts: Vec<Vec<&str>> = vec![Vec::new(); self.shards.len()];
                for id in ids {
                    parts[(route_hash(id) % self.shards.len() as u64) as usize].push(id);
                }
                (ids.len(), Some(parts))
            }
            None => (self.len(), None),
        };

        // One shard's worth of work: verify, score, keep the best k.
        let run_shard = |shard: &Shard, part: Option<&[&str]>| -> (usize, TopBuffer) {
            let mut matched = 0usize;
            let mut best = TopBuffer::new(k);
            let mut visit = |id: &str, doc: &Value| {
                if filter.matches(doc) {
                    matched += 1;
                    best.push(score(id, doc), id, doc);
                }
            };
            match part {
                Some(ids) => {
                    for id in ids {
                        shard.with_doc(id, |doc| visit(id, doc));
                    }
                }
                None => shard.for_each(|id, doc| visit(id, doc)),
            }
            (matched, best)
        };

        let pool = self.score_pool();
        let part_for = |i: usize| parts.as_ref().map(|p| p[i].as_slice());
        let per_shard: Vec<(usize, TopBuffer)> =
            if pool.threads() == 1 || self.shards.len() == 1 || work < PARALLEL_THRESHOLD {
                self.shards
                    .iter()
                    .enumerate()
                    .map(|(i, shard)| run_shard(shard, part_for(i)))
                    .collect()
            } else {
                // Shard fan-out rides the persistent pool: zero thread
                // spawns per query, one disjoint output slot per shard.
                let run_shard = &run_shard;
                let part_for = &part_for;
                let mut slots: Vec<Option<(usize, TopBuffer)>> =
                    (0..self.shards.len()).map(|_| None).collect();
                pool.scope(|scope| {
                    for ((i, shard), slot) in
                        self.shards.iter().enumerate().zip(slots.iter_mut())
                    {
                        scope.spawn(move || *slot = Some(run_shard(shard, part_for(i))));
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.expect("scoring task completed"))
                    .collect()
            };

        let mut total = 0usize;
        let mut merged: Vec<(f64, String, Value)> = Vec::new();
        for (matched, best) in per_shard {
            total += matched;
            merged.extend(best.entries);
        }
        merged.sort_by(|a, b| TopBuffer::cmp(a.0, &a.1, b.0, &b.1));
        merged.truncate(k);
        (total, merged.into_iter().map(|(s, _, d)| (s, d)).collect())
    }

    /// Scan every shard with `f`, fanning the shards out across the
    /// persistent scoring pool when the collection is large enough that
    /// queueing amortizes — this is where the §2 sharding pays off on
    /// the read side, without a thread spawn per shard per scan.
    fn parallel_scan<T: Send>(
        &self,
        f: impl Fn(&str, &Value) -> Option<T> + Sync,
    ) -> Vec<T> {
        let pool = self.score_pool();
        if pool.threads() == 1 || self.shards.len() == 1 || self.len() < PARALLEL_THRESHOLD {
            let mut out = Vec::new();
            for shard in &self.shards {
                out.extend(shard.scan(|id, doc| f(id, doc)));
            }
            return out;
        }
        let f = &f;
        let mut slots: Vec<Option<Vec<T>>> = (0..self.shards.len()).map(|_| None).collect();
        pool.scope(|scope| {
            for (shard, slot) in self.shards.iter().zip(slots.iter_mut()) {
                scope.spawn(move || *slot = Some(shard.scan(|id, doc| f(id, doc))));
            }
        });
        slots
            .into_iter()
            .flat_map(|s| s.expect("scan task completed"))
            .collect()
    }

    /// Run an aggregation pipeline. A leading `$match` is pushed into the
    /// scan; the rest of the stages run on the matched stream.
    pub fn aggregate(&self, pipeline: &Pipeline) -> Vec<Value> {
        match pipeline.leading_match() {
            Some(filter) => {
                let matched = self.find(filter);
                pipeline.run_from(matched, 1)
            }
            None => {
                let mut all = Vec::with_capacity(self.len());
                for shard in &self.shards {
                    all.extend(shard.scan(|_, d| Some(d.clone())));
                }
                pipeline.run(all)
            }
        }
    }

    /// Every document (cloned). Prefer [`Collection::aggregate`] for
    /// anything selective.
    pub fn scan_all(&self) -> Vec<Value> {
        let mut all = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.scan(|_, d| Some(d.clone())));
        }
        all
    }

    /// Write a snapshot and truncate the WAL. No-op for in-memory
    /// collections.
    ///
    /// The WAL lock is held across capture, write and reset: writers
    /// log under that lock before touching shards, so the snapshot and
    /// the truncated (sequence-preserving) log agree on exactly which
    /// records the snapshot absorbed — the invariant replication's
    /// checkpoint bootstrap depends on.
    pub fn snapshot(&self) -> Result<usize, StoreError> {
        let (Some(path), Some(wal)) = (&self.snapshot_path, &self.wal) else {
            return Ok(0);
        };
        let policy = self.retry_policy();
        let plan = self.fault_plan();
        let mut w = lock(wal);
        let docs = self.scan_all();
        let n = with_backoff(&policy, |e| self.count_retry(e), || {
            wal::write_snapshot_with(path, docs.iter(), plan.as_deref())
        })?;
        with_backoff(&policy, |e| self.count_retry(e), || w.reset())?;
        Ok(n)
    }

    /// The durable replication watermark: the global sequence of the
    /// last record committed to the WAL (monotonic across snapshots).
    /// In-memory collections track an applied sequence only when fed by
    /// [`Collection::apply_replicated`].
    pub fn repl_watermark(&self) -> u64 {
        match &self.wal {
            Some(wal) => lock(wal).watermark(),
            None => self.mem_seq.load(Ordering::Acquire),
        }
    }

    /// The committed WAL records from `from_seq` onward (with their
    /// sequence numbers), or [`WalTail::SnapshotNeeded`] when that
    /// sequence was compacted away and the follower must bootstrap from
    /// a checkpoint.
    pub fn tail_from(&self, from_seq: u64) -> Result<WalTail, StoreError> {
        match &self.wal {
            Some(wal) => lock(wal).tail_from(from_seq),
            None => Err(StoreError::BadQuery(
                "replication requires a durable collection".into(),
            )),
        }
    }

    /// Capture a consistent `(watermark, documents)` checkpoint for
    /// bootstrapping a replica. The state is reconstructed from the
    /// durable artifacts (snapshot file + committed WAL frames) under
    /// the WAL lock, so the document set is exactly the replay of
    /// sequences `1 ..= watermark` — immune to writers that have logged
    /// but not yet applied to their shard.
    pub fn checkpoint(&self) -> Result<(u64, Vec<Value>), StoreError> {
        let Some(wal) = &self.wal else {
            return Ok((self.mem_seq.load(Ordering::Acquire), self.scan_all()));
        };
        let w = lock(wal);
        let watermark = w.watermark();
        let mut by_id: BTreeMap<String, Value> = BTreeMap::new();
        if let Some(path) = &self.snapshot_path {
            for doc in wal::read_snapshot(path)? {
                if let Some(id) = doc.get("_id").and_then(Value::as_str) {
                    by_id.insert(id.to_string(), doc);
                }
            }
        }
        if let WalTail::Records(records) = w.tail_from(w.base_seq() + 1)? {
            for (_, record) in records {
                match record {
                    WalRecord::Insert(doc) | WalRecord::Update { doc, .. } => {
                        if let Some(id) = doc.get("_id").and_then(Value::as_str) {
                            by_id.insert(id.to_string(), doc.clone());
                        }
                    }
                    WalRecord::Delete { id } => {
                        by_id.remove(&id);
                    }
                }
            }
        }
        Ok((watermark, by_id.into_values().collect()))
    }

    /// Replace the entire collection state with a primary checkpoint
    /// and adopt its watermark. Clears shards and indexes, re-applies
    /// `docs`, persists a local snapshot and resets the WAL to `seq` —
    /// an index-rebuild point under [`FaultOp::IndexRebuild`]. The
    /// caller must ensure no concurrent local writers (on a replica the
    /// single pull loop is the only writer); concurrent readers may
    /// observe a partially-installed state for the duration.
    pub fn install_checkpoint(&self, seq: u64, docs: Vec<Value>) -> Result<(), StoreError> {
        self.consult_fault(FaultOp::IndexRebuild)?;
        for shard in &self.shards {
            shard.clear();
        }
        if let Some(ti) = &self.text_index {
            ti.clear();
        }
        for idx in read(&self.hash_indexes).iter() {
            idx.clear();
        }
        for doc in docs {
            self.apply_insert(doc, false)?;
        }
        let policy = self.retry_policy();
        if let Some(path) = &self.snapshot_path {
            let plan = self.fault_plan();
            let snapshot_docs = self.scan_all();
            with_backoff(&policy, |e| self.count_retry(e), || {
                wal::write_snapshot_with(path, snapshot_docs.iter(), plan.as_deref())
            })?;
        }
        if let Some(wal) = &self.wal {
            with_backoff(&policy, |e| self.count_retry(e), || {
                lock(wal).reset_to_seq(seq)
            })?;
        } else {
            self.mem_seq.store(seq, Ordering::Release);
        }
        // Wholesale replacement: bump the mutation epoch without a log
        // entry, so `touched_since` reports the window as uncovered and
        // render caches invalidate everything.
        self.mutations.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Apply one replicated record at global sequence `seq`, logging it
    /// to the local WAL (so replica recovery is bit-identical to crash
    /// recovery) before applying it tolerantly, exactly as replay does.
    /// Returns `Ok(false)` for an already-applied sequence (duplicate
    /// delivery after a reconnect) and `Err(Corrupt)` on a gap, which
    /// the follower must treat as "re-sync from the primary".
    pub fn apply_replicated(&self, seq: u64, record: &WalRecord) -> Result<bool, StoreError> {
        let current = self.repl_watermark();
        if seq <= current {
            return Ok(false);
        }
        if seq != current + 1 {
            return Err(StoreError::Corrupt(format!(
                "replication gap: applied through {current}, received {seq}"
            )));
        }
        if let Some(wal) = &self.wal {
            let policy = self.retry_policy();
            let assigned = with_backoff(&policy, |e| self.count_retry(e), || {
                lock(wal).append(record)
            })?;
            debug_assert_eq!(assigned, seq);
        } else {
            self.mem_seq.store(seq, Ordering::Release);
        }
        match record {
            WalRecord::Insert(doc) => {
                let _ = self.apply_insert(doc.clone(), false);
            }
            WalRecord::Update { id, doc } => {
                let _ = self.apply_replace(id, doc.clone(), false);
            }
            WalRecord::Delete { id } => {
                let _ = self.apply_delete(id, false);
            }
        }
        Ok(true)
    }

    /// Order-independent checksum over the full collection contents
    /// (`_id` + canonical JSON of every document), used to prove a
    /// replica converged to a state byte-identical to the primary's.
    /// Independent of shard count and insertion order.
    pub fn content_checksum(&self) -> u64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for shard in &self.shards {
            for h in shard.scan(|id, doc| {
                Some(route_hash(&format!("{id}\u{1}{}", doc.to_json())))
            }) {
                sum = sum.wrapping_add(h);
                count += 1;
            }
        }
        sum ^ count
    }

    /// Flush and fsync the WAL.
    pub fn sync(&self) -> Result<(), StoreError> {
        if let Some(wal) = &self.wal {
            let policy = self.retry_policy();
            with_backoff(&policy, |e| self.count_retry(e), || lock(wal).sync())?;
        }
        Ok(())
    }

    /// Per-shard and aggregate statistics.
    pub fn stats(&self) -> CollectionStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                docs: s.len(),
                bytes: s.approx_bytes(),
            })
            .collect();
        CollectionStats {
            name: self.config.name.clone(),
            docs: shards.iter().map(|s| s.docs).sum(),
            bytes: shards.iter().map(|s| s.bytes).sum(),
            indexed_terms: self.text_index.as_ref().map_or(0, TextIndex::term_count),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::obj;

    fn coll() -> Collection {
        Collection::new(
            CollectionConfig::new("pubs")
                .with_shards(4)
                .with_text_fields(["title"]),
        )
    }

    #[test]
    fn insert_get_replace_delete_cycle() {
        let c = coll();
        let id = c.insert(obj! { "title" => "Masks work" }).unwrap();
        assert!(id.starts_with("pubs-"));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(&id).unwrap().path("title").unwrap().as_str(),
            Some("Masks work")
        );
        c.replace(&id, obj! { "title" => "Masks really work" }).unwrap();
        assert_eq!(
            c.get(&id).unwrap().path("title").unwrap().as_str(),
            Some("Masks really work")
        );
        c.delete(&id).unwrap();
        assert!(c.get(&id).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn explicit_ids_and_duplicates() {
        let c = coll();
        c.insert(obj! { "_id" => "x", "n" => 1 }).unwrap();
        let err = c.insert(obj! { "_id" => "x", "n" => 2 }).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateId(_)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn non_object_documents_rejected() {
        let c = coll();
        assert!(matches!(
            c.insert(Value::int(3)),
            Err(StoreError::BadQuery(_))
        ));
    }

    #[test]
    fn update_reindexes_text() {
        let c = coll();
        let id = c.insert(obj! { "title" => "ventilators" }).unwrap();
        c.update(&id, |d| d.insert("title", "vaccines")).unwrap();
        let found = c.find(&Filter::text("vaccine", vec!["title".into()]));
        assert_eq!(found.len(), 1);
        let none = c.find(&Filter::text("ventilator", vec!["title".into()]));
        assert!(none.is_empty());
    }

    #[test]
    fn find_uses_exact_id_route() {
        let c = coll();
        for i in 0..20 {
            c.insert(obj! { "_id" => format!("p{i}"), "n" => i }).unwrap();
        }
        let f = Filter::parse(&obj! { "_id" => "p7" }, &[]).unwrap();
        let hits = c.find(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("n").unwrap().as_i64(), Some(7));
    }

    #[test]
    fn text_search_via_index() {
        let c = coll();
        c.insert(obj! { "_id" => "a", "title" => "Mask mandates reduce spread" })
            .unwrap();
        c.insert(obj! { "_id" => "b", "title" => "Vaccine efficacy study" })
            .unwrap();
        let f = Filter::parse(
            &obj! { "$text" => obj!{ "$search" => "masks" } },
            &["title".to_string()],
        )
        .unwrap();
        let hits = c.find(&f);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get("_id").unwrap().as_str(), Some("a"));
    }

    #[test]
    fn aggregate_pushes_down_leading_match() {
        let c = coll();
        for i in 0..50 {
            c.insert(obj! { "_id" => format!("p{i}"), "year" => 2018 + (i % 5) })
                .unwrap();
        }
        let p = Pipeline::new()
            .match_spec(&obj! { "year" => 2020 }, &[])
            .unwrap()
            .count("n");
        let out = c.aggregate(&p);
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(10));
    }

    #[test]
    fn hash_index_backfills() {
        let c = coll();
        for i in 0..10 {
            c.insert(obj! { "_id" => format!("p{i}"), "year" => 2020 + (i % 2) })
                .unwrap();
        }
        let idx = c.create_hash_index("year").unwrap();
        assert_eq!(idx.lookup(&Value::int(2021)).len(), 5);
        // New inserts maintain the index.
        c.insert(obj! { "_id" => "new", "year" => 2021 }).unwrap();
        assert_eq!(idx.lookup(&Value::int(2021)).len(), 6);
        // Deletes too.
        c.delete("new").unwrap();
        assert_eq!(idx.lookup(&Value::int(2021)).len(), 5);
    }

    #[test]
    fn parallel_ingest_lands_every_document() {
        let c = coll();
        let docs: Vec<Value> = (0..500)
            .map(|i| obj! { "_id" => format!("p{i}"), "n" => i })
            .collect();
        let n = c.insert_parallel(docs, 8).unwrap();
        assert_eq!(n, 500);
        assert_eq!(c.len(), 500);
        // Shards are reasonably balanced.
        let stats = c.stats();
        for s in &stats.shards {
            assert!(s.docs > 50, "unbalanced: {:?}", stats.shards);
        }
    }

    #[test]
    fn parallel_scan_agrees_with_sequential_and_keeps_order() {
        // Above the parallel threshold the scan fans out per shard; the
        // result must be identical (including order) to the sequential path.
        let c = coll();
        for i in 0..900 {
            c.insert(obj! { "_id" => format!("p{i:04}"), "n" => i % 7 }).unwrap();
        }
        let f = Filter::parse(&obj! { "n" => 3 }, &[]).unwrap();
        let par = c.find(&f);
        let seq: Vec<Value> = c
            .scan_all()
            .into_iter()
            .filter(|d| f.matches(d))
            .collect();
        assert_eq!(par.len(), seq.len());
        assert_eq!(par, seq);
        assert_eq!(c.count(&f), seq.len());
    }

    #[test]
    fn stats_shapes() {
        let c = coll();
        c.insert(obj! { "title" => "some text here" }).unwrap();
        let s = c.stats();
        assert_eq!(s.docs, 1);
        assert!(s.bytes > 0);
        assert_eq!(s.shards.len(), 4);
        assert!(s.indexed_terms > 0);
    }

    #[test]
    fn missing_docs_error() {
        let c = coll();
        assert!(matches!(c.delete("nope"), Err(StoreError::NotFound(_))));
        assert!(matches!(
            c.replace("nope", obj! {}),
            Err(StoreError::NotFound(_))
        ));
        assert!(matches!(
            c.update("nope", |_| {}),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn persistence_recovers_snapshot_and_wal() {
        let dir = std::env::temp_dir().join(format!("covidkg-coll-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CollectionConfig::new("pubs").with_text_fields(["title"]);
        {
            let c = Collection::open(cfg.clone(), &dir).unwrap();
            c.insert(obj! { "_id" => "a", "title" => "first" }).unwrap();
            c.insert(obj! { "_id" => "b", "title" => "second" }).unwrap();
            c.snapshot().unwrap();
            // Post-snapshot mutations only live in the WAL.
            c.insert(obj! { "_id" => "c", "title" => "third" }).unwrap();
            c.replace("a", obj! { "title" => "first-edited" }).unwrap();
            c.delete("b").unwrap();
            c.sync().unwrap();
        }
        let c = Collection::open(cfg, &dir).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.get("a").unwrap().path("title").unwrap().as_str(),
            Some("first-edited")
        );
        assert!(c.get("b").is_none());
        assert!(c.get("c").is_some());
        // Text index is rebuilt on recovery.
        assert_eq!(c.find(&Filter::text("third", vec!["title".into()])).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Reference for `scored_top_k`: score every match, fully sort by
    /// `(score desc, _id asc)`, truncate.
    fn naive_top_k(
        c: &Collection,
        filter: &Filter,
        k: usize,
        score: impl Fn(&str, &Value) -> f64,
    ) -> (usize, Vec<(f64, String)>) {
        let mut scored: Vec<(f64, String)> = c
            .find(filter)
            .into_iter()
            .map(|d| {
                let id = d.get("_id").unwrap().as_str().unwrap().to_string();
                (score(&id, &d), id)
            })
            .collect();
        let total = scored.len();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        scored.truncate(k);
        (total, scored)
    }

    #[test]
    fn scored_top_k_matches_full_sort_with_ties() {
        let c = coll();
        for i in 0..50 {
            // Score collides in groups of 5, exercising the id tie-break.
            c.insert(obj! { "_id" => format!("d{i:02}"), "title" => "mask study", "g" => i / 5 })
                .unwrap();
        }
        c.insert(obj! { "_id" => "zz", "title" => "unrelated" }).unwrap();
        let filter = Filter::text("mask", vec!["title".into()]);
        let score = |_: &str, d: &Value| d.path("g").unwrap().as_f64().unwrap();
        for k in [0, 1, 7, 50, 200] {
            let (total, top) = c.scored_top_k(&filter, k, score);
            let got: Vec<(f64, String)> = top
                .iter()
                .map(|(s, d)| (*s, d.get("_id").unwrap().as_str().unwrap().to_string()))
                .collect();
            let (naive_total, naive) = naive_top_k(&c, &filter, k, score);
            assert_eq!(total, naive_total);
            assert_eq!(got, naive, "k = {k}");
        }
    }

    #[test]
    fn scored_top_k_without_boundable_filter_scans() {
        let c = coll();
        for i in 0..20 {
            c.insert(obj! { "_id" => format!("d{i:02}"), "title" => "t", "n" => i }).unwrap();
        }
        let filter = Filter::Gte("n".into(), Value::int(15));
        let (total, top) =
            c.scored_top_k(&filter, 3, |_, d| d.path("n").unwrap().as_f64().unwrap());
        assert_eq!(total, 5);
        let ns: Vec<f64> = top.iter().map(|(s, _)| *s).collect();
        assert_eq!(ns, [19.0, 18.0, 17.0]);
    }

    #[test]
    fn scored_top_k_reuses_the_pool_and_spawns_zero_threads_per_query() {
        // Big enough to clear PARALLEL_THRESHOLD so the parallel branch
        // engages, with an explicitly injected multi-worker pool (the
        // harness machine may report one core, which would otherwise
        // keep everything on the sequential path).
        let c = Collection::new(
            CollectionConfig::new("pubs")
                .with_shards(4)
                .with_text_fields(["title"]),
        );
        let pool = Arc::new(ScorePool::new(3));
        c.set_score_pool(Arc::clone(&pool));
        for i in 0..(PARALLEL_THRESHOLD * 2) {
            c.insert(obj! { "_id" => format!("d{i:05}"), "title" => "mask study", "n" => i as i64 })
                .unwrap();
        }
        let filter = Filter::text("mask", vec!["title".into()]);
        let score = |_: &str, d: &Value| d.path("n").unwrap().as_f64().unwrap();
        let spawned_before = pool.threads_spawned();
        let executed_before = pool.tasks_executed();
        let (expect_total, expect_top) = naive_top_k(&c, &filter, 5, score);
        for q in 0..25 {
            let (total, top) = c.scored_top_k(&filter, 5, score);
            assert_eq!(total, expect_total, "query {q}");
            let got: Vec<(f64, String)> = top
                .iter()
                .map(|(s, d)| (*s, d.get("_id").unwrap().as_str().unwrap().to_string()))
                .collect();
            assert_eq!(got, expect_top, "query {q}");
        }
        assert_eq!(
            pool.threads_spawned(),
            spawned_before,
            "a query under load must cost zero thread spawns"
        );
        assert!(
            pool.tasks_executed() >= executed_before + 25 * 4,
            "every query fans its 4 shards across the persistent pool: {} -> {}",
            executed_before,
            pool.tasks_executed()
        );
    }

    #[test]
    fn mutation_epoch_counts_only_invalidating_writes() {
        let c = coll();
        let e0 = c.mutation_epoch();
        let id = c.insert(obj! { "title" => "a" }).unwrap();
        assert_eq!(c.mutation_epoch(), e0, "inserts don't invalidate");
        c.replace(&id, obj! { "title" => "b" }).unwrap();
        assert_eq!(c.mutation_epoch(), e0 + 1);
        c.update(&id, |d| d.insert("title", Value::str("c"))).unwrap();
        assert_eq!(c.mutation_epoch(), e0 + 2);
        c.delete(&id).unwrap();
        assert_eq!(c.mutation_epoch(), e0 + 3);
    }

    #[test]
    fn disk_full_is_permanent_and_never_retried() {
        use crate::fault::{FaultConfig, FaultPlan};
        let dir = std::env::temp_dir().join(format!("covidkg-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        c.insert(obj! { "_id" => "keep", "title" => "resident" }).unwrap();
        c.sync().unwrap();
        // Every durable operation now hits a simulated full disk.
        c.set_fault_plan(Some(FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 0.0,
            delay: 0.0,
            disk_full: 1.0,
            ..FaultConfig::default()
        })));
        let retries_before = c.io_retries();
        let err = c.insert(obj! { "_id" => "new" }).unwrap_err();
        assert!(!err.is_transient(), "ENOSPC must be permanent: {err:?}");
        assert!(
            matches!(&err, StoreError::Io(e) if e.kind() == std::io::ErrorKind::StorageFull),
            "{err:?}"
        );
        assert_eq!(
            c.io_retries(),
            retries_before,
            "a full disk must not be retried"
        );
        assert!(matches!(
            c.snapshot(),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::StorageFull
        ));
        // The store stays fully readable: the rejected write never
        // reached memory and resident documents are untouched.
        assert_eq!(c.len(), 1);
        assert!(c.get("keep").is_some());
        assert!(c.get("new").is_none());
        // Space freed (plan detached): writes work again.
        c.set_fault_plan(None);
        c.insert(obj! { "_id" => "new" }).unwrap();
        assert_eq!(c.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn touched_since_names_exact_documents() {
        let c = coll();
        let a = c.insert(obj! { "title" => "a" }).unwrap();
        let b = c.insert(obj! { "title" => "b" }).unwrap();
        let e0 = c.mutation_epoch();
        assert_eq!(c.touched_since(e0), Some(vec![]), "nothing changed yet");
        c.replace(&a, obj! { "title" => "a2" }).unwrap();
        c.replace(&b, obj! { "title" => "b2" }).unwrap();
        c.replace(&a, obj! { "title" => "a3" }).unwrap();
        let mut touched = c.touched_since(e0).expect("window covered");
        touched.sort();
        let mut expected = vec![a.clone(), b.clone()];
        expected.sort();
        assert_eq!(touched, expected, "deduplicated touched ids");
        // A narrower window sees only the later mutations.
        assert_eq!(c.touched_since(e0 + 2), Some(vec![a.clone()]));
        // Deletes count too.
        let e1 = c.mutation_epoch();
        c.delete(&b).unwrap();
        assert_eq!(c.touched_since(e1), Some(vec![b.clone()]));
    }

    #[test]
    fn replication_surface_round_trips() {
        let dir = std::env::temp_dir().join(format!("covidkg-repl-coll-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CollectionConfig::new("pubs").with_text_fields(["title"]);
        let primary = Collection::open(cfg.clone(), &dir.join("p")).unwrap();
        primary.insert(obj! { "_id" => "a", "title" => "first" }).unwrap();
        primary.insert(obj! { "_id" => "b", "title" => "second" }).unwrap();
        primary.snapshot().unwrap();
        primary.replace("a", obj! { "title" => "edited" }).unwrap();
        primary.delete("b").unwrap();
        assert_eq!(primary.repl_watermark(), 4);

        // A replica starting from scratch needs the checkpoint first…
        assert_eq!(
            primary.tail_from(1).unwrap(),
            WalTail::SnapshotNeeded { base_seq: 2 }
        );
        let (seq, docs) = primary.checkpoint().unwrap();
        assert_eq!(seq, 4);
        let replica = Collection::open(cfg.clone(), &dir.join("r")).unwrap();
        replica.install_checkpoint(seq, docs).unwrap();
        assert_eq!(replica.repl_watermark(), 4);
        assert_eq!(replica.content_checksum(), primary.content_checksum());

        // …then streams the live tail.
        primary.insert(obj! { "_id" => "c", "title" => "third" }).unwrap();
        let WalTail::Records(tail) = primary.tail_from(replica.repl_watermark() + 1).unwrap()
        else {
            panic!("expected records");
        };
        for (s, record) in &tail {
            assert!(replica.apply_replicated(*s, record).unwrap());
        }
        assert_eq!(replica.repl_watermark(), 5);
        assert_eq!(replica.content_checksum(), primary.content_checksum());
        // Duplicate delivery is a no-op, a gap is corruption.
        let rec = WalRecord::Insert(obj! { "_id" => "d" });
        assert!(!replica.apply_replicated(5, &tail[0].1).unwrap());
        assert!(matches!(
            replica.apply_replicated(9, &rec),
            Err(StoreError::Corrupt(_))
        ));
        // Replica recovery replays its own WAL to the same state.
        drop(replica);
        let replica = Collection::open(cfg, &dir.join("r")).unwrap();
        assert_eq!(replica.repl_watermark(), 5);
        assert_eq!(replica.content_checksum(), primary.content_checksum());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_is_consistent_with_watermark() {
        // In-memory collections expose an applied watermark only via
        // replication; durable checkpoints rebuild from disk artifacts.
        let dir = std::env::temp_dir().join(format!("covidkg-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = Collection::open(CollectionConfig::new("pubs"), &dir).unwrap();
        for i in 0..5 {
            c.insert(obj! { "_id" => format!("p{i}"), "n" => i }).unwrap();
        }
        c.snapshot().unwrap();
        c.delete("p0").unwrap();
        let (seq, docs) = c.checkpoint().unwrap();
        assert_eq!(seq, 6);
        assert_eq!(docs.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn touched_since_overflow_returns_none() {
        let c = coll();
        let id = c.insert(obj! { "title" => "x" }).unwrap();
        let e0 = c.mutation_epoch();
        for i in 0..(MUTATION_LOG_CAP + 5) {
            c.replace(&id, obj! { "title" => format!("v{i}") }).unwrap();
        }
        assert_eq!(
            c.touched_since(e0),
            None,
            "log no longer covers the window"
        );
        // But a recent window is still answerable.
        let recent = c.mutation_epoch() - 3;
        assert_eq!(c.touched_since(recent), Some(vec![id]));
    }
}
