//! A database: a set of named collections, optionally persisted under one
//! directory (the analog of COVIDKG's MongoDB database holding the
//! publications, models and knowledge-graph collections).

use crate::collection::{Collection, CollectionConfig};
use crate::error::StoreError;
use crate::pool::ScorePool;
use crate::stats::DbStats;
use std::sync::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A named set of collections.
#[derive(Debug, Default)]
pub struct Database {
    dir: Option<PathBuf>,
    collections: RwLock<BTreeMap<String, Arc<Collection>>>,
}

impl Database {
    /// Purely in-memory database.
    pub fn in_memory() -> Self {
        Database::default()
    }

    /// Database persisting collections under `dir` (created on demand).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Database {
            dir: Some(dir),
            collections: RwLock::new(BTreeMap::new()),
        })
    }

    /// The scoring pool injected into every collection this database
    /// opens: the process-wide shared pool (sized to cores, created on
    /// first use), so query bursts across collections — and across
    /// databases in the same process — share one fixed worker set.
    pub fn score_pool(&self) -> Arc<ScorePool> {
        Arc::clone(ScorePool::global())
    }

    /// Create (or re-open, when persistent state exists) a collection.
    /// Fails if a collection with this name is already live.
    pub fn create_collection(&self, config: CollectionConfig) -> Result<Arc<Collection>, StoreError> {
        let name = config.name.clone();
        let coll = match &self.dir {
            Some(dir) => Collection::open(config, dir)?,
            None => Collection::new(config),
        };
        coll.set_score_pool(self.score_pool());
        let coll = Arc::new(coll);
        let mut guard = self.collections.write().unwrap();
        if guard.contains_key(&name) {
            return Err(StoreError::BadQuery(format!(
                "collection {name:?} already exists"
            )));
        }
        guard.insert(name, Arc::clone(&coll));
        Ok(coll)
    }

    /// Look up a live collection by name, creating (or re-opening) it
    /// when absent — the idempotent variant of
    /// [`Database::create_collection`] used by replica bootstrap, where
    /// the same collection set may be requested on every reconnect.
    pub fn get_or_create(&self, config: CollectionConfig) -> Result<Arc<Collection>, StoreError> {
        if let Ok(coll) = self.collection(&config.name) {
            return Ok(coll);
        }
        match self.create_collection(config.clone()) {
            Ok(coll) => Ok(coll),
            // Lost a creation race: someone else registered it first.
            Err(StoreError::BadQuery(_)) => self.collection(&config.name),
            Err(e) => Err(e),
        }
    }

    /// Look up a live collection.
    pub fn collection(&self, name: &str) -> Result<Arc<Collection>, StoreError> {
        self.collections
            .read().unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchCollection(name.to_string()))
    }

    /// Names of live collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.collections.read().unwrap().keys().cloned().collect()
    }

    /// Drop a collection from the database (persistent files are removed).
    pub fn drop_collection(&self, name: &str) -> Result<(), StoreError> {
        let removed = self.collections.write().unwrap().remove(name);
        if removed.is_none() {
            return Err(StoreError::NoSuchCollection(name.to_string()));
        }
        if let Some(dir) = &self.dir {
            for ext in ["snapshot", "wal", "seq"] {
                let p = dir.join(format!("{name}.{ext}"));
                if p.exists() {
                    std::fs::remove_file(p)?;
                }
            }
        }
        Ok(())
    }

    /// Snapshot every persistent collection.
    pub fn snapshot_all(&self) -> Result<usize, StoreError> {
        let mut total = 0;
        for coll in self.collections.read().unwrap().values() {
            total += coll.snapshot()?;
        }
        Ok(total)
    }

    /// Aggregate stats across collections.
    pub fn stats(&self) -> DbStats {
        DbStats {
            collections: self
                .collections
                .read().unwrap()
                .values()
                .map(|c| c.stats())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::obj;

    #[test]
    fn create_lookup_drop() {
        let db = Database::in_memory();
        db.create_collection(CollectionConfig::new("pubs")).unwrap();
        db.create_collection(CollectionConfig::new("kg")).unwrap();
        assert_eq!(db.collection_names(), ["kg", "pubs"]);
        assert!(db.collection("pubs").is_ok());
        assert!(db.collection("nope").is_err());
        assert!(db
            .create_collection(CollectionConfig::new("pubs"))
            .is_err());
        db.drop_collection("kg").unwrap();
        assert!(db.collection("kg").is_err());
    }

    #[test]
    fn stats_cover_all_collections() {
        let db = Database::in_memory();
        let pubs = db.create_collection(CollectionConfig::new("pubs")).unwrap();
        pubs.insert(obj! { "t" => "x" }).unwrap();
        db.create_collection(CollectionConfig::new("models")).unwrap();
        let stats = db.stats();
        assert_eq!(stats.collections.len(), 2);
        assert_eq!(stats.total_docs(), 1);
    }

    #[test]
    fn persistent_database_round_trip() {
        let dir = std::env::temp_dir().join(format!("covidkg-db-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).unwrap();
            let pubs = db.create_collection(CollectionConfig::new("pubs")).unwrap();
            pubs.insert(obj! { "_id" => "a", "t" => "persisted" }).unwrap();
            pubs.sync().unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            let pubs = db.create_collection(CollectionConfig::new("pubs")).unwrap();
            assert_eq!(pubs.len(), 1);
            assert!(pubs.get("a").is_some());
            db.snapshot_all().unwrap();
            db.drop_collection("pubs").unwrap();
            assert!(!dir.join("pubs.snapshot").exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
