//! Crash-at-every-point recovery gauntlet.
//!
//! Production storage must come back from a crash at *any* instant, not
//! just the instants a hand-written test happens to pick. The gauntlet
//! makes that systematic: it records a pristine WAL from a deterministic
//! workload (inserts, updates, deletes), then simulates a crash at every
//! frame boundary — plus truncations *inside* each frame and a flipped
//! byte *per* frame — and re-opens the collection from each damaged log,
//! asserting **prefix consistency**: the recovered state must equal the
//! result of replaying exactly the complete, checksum-valid frames that
//! survive, never a torn suffix and never a resurrected deleted doc.
//! After each boundary crash it also proves the log is still writable:
//! a post-crash insert must land and survive one more recovery.

use crate::collection::{Collection, CollectionConfig};
use crate::error::StoreError;
use crate::wal::{self, WalRecord};
use covidkg_json::Value;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Gauntlet workload and damage parameters.
#[derive(Debug, Clone)]
pub struct GauntletConfig {
    /// Documents inserted by the recorded workload (every 3rd is then
    /// updated and every 5th deleted, so all record kinds appear).
    pub docs: usize,
    /// Shards of the gauntlet collection.
    pub shards: usize,
    /// Mid-frame truncation points tried after each frame boundary.
    pub intra_frame_cuts: usize,
    /// Unique suffix for the scratch directory (lets concurrent runs —
    /// e.g. the test harness and the chaos CLI — coexist).
    pub tag: String,
}

impl Default for GauntletConfig {
    fn default() -> Self {
        GauntletConfig {
            docs: 18,
            shards: 2,
            intra_frame_cuts: 2,
            tag: "default".into(),
        }
    }
}

/// Outcome of a gauntlet run.
#[derive(Debug, Clone, Default)]
pub struct GauntletReport {
    /// Frames in the pristine WAL.
    pub frames: usize,
    /// Crash points simulated by truncation (boundaries + mid-frame).
    pub truncations: usize,
    /// Crash points simulated by flipping one byte.
    pub corruptions: usize,
    /// Recoveries that matched the expected prefix state.
    pub recovered: usize,
    /// Post-crash write-and-recover round trips proven.
    pub resumed_writes: usize,
    /// Human-readable descriptions of every failed crash point.
    pub failures: Vec<String>,
}

impl GauntletReport {
    /// True when every simulated crash recovered prefix-consistently.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for GauntletReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash gauntlet: {} frames, {} truncation points, {} corruptions",
            self.frames, self.truncations, self.corruptions
        )?;
        writeln!(
            f,
            "  {} prefix-consistent recoveries, {} post-crash writes resumed",
            self.recovered, self.resumed_writes
        )?;
        if self.passed() {
            write!(f, "  PASS: all crash points recovered")
        } else {
            writeln!(f, "  FAIL: {} crash points broke recovery:", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f, "    - {failure}")?;
            }
            Ok(())
        }
    }
}

/// State expected after replaying the first `k` records.
fn apply_prefix(records: &[WalRecord], k: usize) -> HashMap<String, Value> {
    let mut state = HashMap::new();
    for record in &records[..k] {
        match record {
            WalRecord::Insert(doc) => {
                if let Some(id) = doc.get("_id").and_then(Value::as_str) {
                    state.insert(id.to_string(), doc.clone());
                }
            }
            WalRecord::Update { id, doc } => {
                state.insert(id.clone(), doc.clone());
            }
            WalRecord::Delete { id } => {
                state.remove(id);
            }
        }
    }
    state
}

/// Compare a recovered collection against the expected prefix state.
fn diff_state(c: &Collection, expected: &HashMap<String, Value>) -> Option<String> {
    if c.len() != expected.len() {
        return Some(format!("recovered {} docs, expected {}", c.len(), expected.len()));
    }
    for (id, doc) in expected {
        match c.get(id) {
            None => return Some(format!("doc {id:?} lost in recovery")),
            Some(got) if &got != doc => return Some(format!("doc {id:?} diverged after recovery")),
            Some(_) => {}
        }
    }
    None
}

/// Record the pristine workload WAL, returning its records and bytes.
fn record_workload(
    dir: &Path,
    config: &GauntletConfig,
) -> Result<(Vec<WalRecord>, Vec<u8>), StoreError> {
    let coll_config = CollectionConfig::new("gauntlet").with_shards(config.shards);
    let c = Collection::open(coll_config, dir)?;
    for i in 0..config.docs {
        let id = format!("g{i:04}");
        c.insert(covidkg_json::obj! { "_id" => id.clone(), "n" => i as i64 })?;
        if i % 3 == 2 {
            c.update(&id, |d| d.insert("updated", true))?;
        }
        if i % 5 == 4 {
            c.delete(&id)?;
        }
    }
    c.sync()?;
    drop(c);
    let wal_path = dir.join("gauntlet.wal");
    let bytes = std::fs::read(&wal_path)?;
    let (records, truncated) = wal::read_wal(&wal_path)?;
    debug_assert!(!truncated, "pristine workload WAL must be clean");
    Ok((records, bytes))
}

/// One crash point: install `damaged` as the WAL, recover, and check
/// prefix consistency against `records`. Returns the number of valid
/// frames the damaged log retains.
fn check_crash_point(
    dir: &Path,
    damaged: &[u8],
    records: &[WalRecord],
    label: &str,
    report: &mut GauntletReport,
) -> Result<usize, StoreError> {
    let wal_path = dir.join("gauntlet.wal");
    // The snapshot file must not exist: the workload never compacts, so
    // recovery state comes from the WAL alone.
    std::fs::write(&wal_path, damaged)?;
    let k = wal::frame_ends(damaged).len();
    let expected = apply_prefix(records, k);
    match Collection::open(CollectionConfig::new("gauntlet").with_shards(2), dir) {
        Ok(c) => match diff_state(&c, &expected) {
            None => report.recovered += 1,
            Some(diff) => report.failures.push(format!("{label}: {diff}")),
        },
        Err(e) => report.failures.push(format!("{label}: recovery failed: {e}")),
    }
    Ok(k)
}

/// Prove the damaged-then-recovered log accepts and persists new writes.
fn check_resumed_write(
    dir: &Path,
    records: &[WalRecord],
    k: usize,
    label: &str,
    report: &mut GauntletReport,
) -> Result<(), StoreError> {
    let config = CollectionConfig::new("gauntlet").with_shards(2);
    {
        let c = Collection::open(config.clone(), dir)?;
        c.insert(covidkg_json::obj! { "_id" => "post-crash", "ok" => true })?;
        c.sync()?;
    }
    let c = Collection::open(config, dir)?;
    let mut expected = apply_prefix(records, k);
    expected.insert(
        "post-crash".into(),
        covidkg_json::obj! { "_id" => "post-crash", "ok" => true },
    );
    match diff_state(&c, &expected) {
        None => report.resumed_writes += 1,
        Some(diff) => report
            .failures
            .push(format!("{label}: post-crash write lost: {diff}")),
    }
    Ok(())
}

/// Run the gauntlet. Scratch files live under the system temp dir and
/// are removed on success and failure alike; only genuine I/O errors
/// (not recovery mismatches, which land in the report) are `Err`.
pub fn run_gauntlet(config: &GauntletConfig) -> Result<GauntletReport, StoreError> {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "covidkg-gauntlet-{}-{}",
        config.tag,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_in(&dir, config);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_in(dir: &Path, config: &GauntletConfig) -> Result<GauntletReport, StoreError> {
    let (records, pristine) = record_workload(dir, config)?;
    let boundaries = wal::frame_ends(&pristine);
    let mut report = GauntletReport {
        frames: boundaries.len(),
        ..GauntletReport::default()
    };

    // Crash exactly on every frame boundary (including the empty log),
    // then prove the survivor still accepts writes.
    for &end in std::iter::once(&0).chain(boundaries.iter()) {
        let label = format!("truncate@{end}");
        report.truncations += 1;
        let k = check_crash_point(dir, &pristine[..end], &records, &label, &mut report)?;
        check_resumed_write(dir, &records, k, &label, &mut report)?;
    }

    // Crash mid-frame: a handful of torn-tail lengths inside each frame.
    let mut start = 0;
    for &end in &boundaries {
        let span = end - start;
        for i in 1..=config.intra_frame_cuts {
            let cut = start + (span * i) / (config.intra_frame_cuts + 1);
            if cut <= start || cut >= end {
                continue;
            }
            report.truncations += 1;
            check_crash_point(
                dir,
                &pristine[..cut],
                &records,
                &format!("truncate@{cut} (mid-frame)"),
                &mut report,
            )?;
        }
        start = end;
    }

    // Flip one byte in the middle of every frame: the checksum must stop
    // replay at the damaged frame, keeping the clean prefix.
    let mut start = 0;
    for &end in &boundaries {
        let offset = start + (end - start) / 2;
        let mut damaged = pristine[..end].to_vec();
        damaged[offset] ^= 0x01;
        report.corruptions += 1;
        check_crash_point(
            dir,
            &damaged,
            &records,
            &format!("flip@{offset}"),
            &mut report,
        )?;
        start = end;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauntlet_passes_on_healthy_wal_implementation() {
        let report = run_gauntlet(&GauntletConfig {
            docs: 12,
            tag: "unit".into(),
            ..GauntletConfig::default()
        })
        .unwrap();
        assert!(report.frames > 12, "workload should mix record kinds");
        assert!(report.passed(), "{report}");
        assert_eq!(report.resumed_writes, report.frames + 1);
    }

    #[test]
    fn report_renders_failures() {
        let mut r = GauntletReport::default();
        assert!(r.passed());
        r.failures.push("truncate@7: doc lost".into());
        assert!(!r.passed());
        let text = r.to_string();
        assert!(text.contains("FAIL") && text.contains("truncate@7"));
    }
}
