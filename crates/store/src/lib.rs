#![warn(missing_docs)]

//! # covidkg-store
//!
//! An in-process, sharded JSON document store modeled on the MongoDB
//! deployment backing COVIDKG.ORG (§2, Fig 5). The paper's back-end is "a
//! sharded MongoDB JSON storage that holds more than 450,000 publications
//! … parsed into JSON and enriched … by our Deep-Learning models"; its
//! search engines are aggregation pipelines whose first stage is a
//! `$match`, followed by `$project` and custom `$function` ranking stages
//! (§2.1). This crate reproduces that API surface so the rest of the
//! system is written against the same dataflow:
//!
//! * [`Database`] / [`Collection`] — named collections of JSON documents,
//!   hash-sharded across [`shard::Shard`]s guarded by `std::sync`
//!   RwLocks;
//! * [`filter::Filter`] — MongoDB-style query documents (`$eq`, `$ne`,
//!   `$gt(e)`, `$lt(e)`, `$in`, `$nin`, `$exists`, `$regex`, `$and`,
//!   `$or`, `$not`, `$text`);
//! * [`pipeline::Pipeline`] — aggregation stages: `$match`, `$project`,
//!   `$function`, `$addFields`, `$sort`, `$skip`, `$limit`, `$group`,
//!   `$unwind`, `$count`;
//! * [`index`] — hash indexes and stemmed inverted text indexes that
//!   accelerate `$match`-first pipelines;
//! * [`wal`] — length-prefixed, CRC32-checksummed write-ahead log plus
//!   snapshots, giving crash-recoverable persistence;
//! * [`fault`] — deterministic seeded fault injection ([`FaultPlan`])
//!   and bounded-backoff retry ([`RetryPolicy`]) for every WAL/snapshot
//!   I/O path;
//! * [`gauntlet`] — crash-at-every-point recovery gauntlet asserting
//!   prefix-consistent recovery from any torn or corrupt WAL tail;
//! * [`stats`] — the storage report (document counts, bytes per shard)
//!   mirroring the paper's "≈965 GB … more than 5 TB raw" summary shape.

pub mod collection;
pub mod db;
pub mod error;
pub mod fault;
pub mod filter;
pub mod flusher;
pub mod gauntlet;
pub mod index;
pub mod pipeline;
mod pipeline_parse;
pub mod pool;
pub mod shard;
pub mod update;
pub mod stats;
pub mod wal;

pub use collection::{Collection, CollectionConfig};
pub use db::Database;
pub use error::StoreError;
pub use fault::{Fault, FaultConfig, FaultOp, FaultPlan, FaultStats, RetryPolicy};
pub use filter::Filter;
pub use flusher::{Flusher, FlusherStats};
pub use gauntlet::{run_gauntlet, GauntletConfig, GauntletReport};
pub use index::{HashIndex, Posting, TextIndex};
pub use pipeline::{Accumulator, Pipeline, Stage};
pub use pool::ScorePool;
pub use stats::{CollectionStats, DbStats, ShardStats};
pub use update::UpdateSpec;
pub use wal::{WalReader, WalRecord, WalTail};
