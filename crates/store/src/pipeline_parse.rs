//! Parsing aggregation pipelines from their JSON wire form.
//!
//! The paper's search engines send MongoDB aggregation documents — arrays
//! of `{"$stage": spec}` objects. [`Pipeline::parse`] accepts that shape;
//! `$function` stages reference implementations registered in a
//! [`FunctionRegistry`] by name (the stand-in for the original's embedded
//! JavaScript bodies).

use crate::error::StoreError;
use crate::filter::Filter;
use crate::pipeline::{Accumulator, FunctionRegistry, Order, Pipeline, Stage};
use covidkg_json::Value;

impl Pipeline {
    /// Parse a JSON aggregation pipeline:
    ///
    /// ```
    /// # use covidkg_store::pipeline::{Pipeline, FunctionRegistry};
    /// # use covidkg_json::parse;
    /// let spec = parse(r#"[
    ///     {"$match": {"year": {"$gte": 2021}}},
    ///     {"$project": ["title", "year"]},
    ///     {"$sort": {"year": -1}},
    ///     {"$limit": 10}
    /// ]"#).unwrap();
    /// let p = Pipeline::parse(&spec, &[], &FunctionRegistry::new()).unwrap();
    /// assert_eq!(p.stages().len(), 4);
    /// ```
    pub fn parse(
        spec: &Value,
        text_fields: &[String],
        registry: &FunctionRegistry,
    ) -> Result<Pipeline, StoreError> {
        let stages_spec = spec
            .as_array()
            .ok_or_else(|| StoreError::BadQuery("pipeline must be an array".into()))?;
        let mut pipeline = Pipeline::new();
        for stage_doc in stages_spec {
            let members = stage_doc.as_object().ok_or_else(|| {
                StoreError::BadQuery("each pipeline stage must be an object".into())
            })?;
            if members.len() != 1 {
                return Err(StoreError::BadQuery(
                    "each stage must have exactly one operator".into(),
                ));
            }
            let (op, body) = &members[0];
            let stage = match op.as_str() {
                "$match" => Stage::Match(Filter::parse(body, text_fields)?),
                "$project" => Stage::Project(string_list(op, body)?),
                "$unset" => Stage::Exclude(string_list(op, body)?),
                "$function" => {
                    let name = body
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| StoreError::BadQuery("$function requires name".into()))?;
                    let output = body
                        .get("output")
                        .and_then(Value::as_str)
                        .ok_or_else(|| StoreError::BadQuery("$function requires output".into()))?;
                    let f = registry.get(name).ok_or_else(|| {
                        StoreError::BadQuery(format!("unknown $function {name:?}"))
                    })?;
                    Stage::Function {
                        name: name.to_string(),
                        f,
                        output: output.to_string(),
                    }
                }
                "$addFields" => {
                    let fields = body
                        .as_object()
                        .ok_or_else(|| StoreError::BadQuery("$addFields takes an object".into()))?
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    Stage::AddFields(fields)
                }
                "$sort" => {
                    let keys = body
                        .as_object()
                        .ok_or_else(|| StoreError::BadQuery("$sort takes an object".into()))?
                        .iter()
                        .map(|(k, v)| {
                            let dir = v.as_i64().ok_or_else(|| {
                                StoreError::BadQuery("$sort directions are 1 or -1".into())
                            })?;
                            Ok((
                                k.clone(),
                                if dir >= 0 { Order::Asc } else { Order::Desc },
                            ))
                        })
                        .collect::<Result<Vec<_>, StoreError>>()?;
                    Stage::Sort(keys)
                }
                "$skip" => Stage::Skip(usize_arg(op, body)?),
                "$limit" => Stage::Limit(usize_arg(op, body)?),
                "$unwind" => {
                    let path = body
                        .as_str()
                        .ok_or_else(|| StoreError::BadQuery("$unwind takes a path string".into()))?;
                    Stage::Unwind(path.trim_start_matches('$').to_string())
                }
                "$count" => {
                    let field = body
                        .as_str()
                        .ok_or_else(|| StoreError::BadQuery("$count takes a field name".into()))?;
                    Stage::Count(field.to_string())
                }
                "$group" => parse_group(body)?,
                other => {
                    return Err(StoreError::BadQuery(format!("unknown stage {other:?}")))
                }
            };
            pipeline = pipeline.stage(stage);
        }
        Ok(pipeline)
    }
}

fn string_list(op: &str, body: &Value) -> Result<Vec<String>, StoreError> {
    body.as_array()
        .ok_or_else(|| StoreError::BadQuery(format!("{op} takes an array of paths")))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| StoreError::BadQuery(format!("{op} paths must be strings")))
        })
        .collect()
}

fn usize_arg(op: &str, body: &Value) -> Result<usize, StoreError> {
    body.as_i64()
        .filter(|&n| n >= 0)
        .map(|n| n as usize)
        .ok_or_else(|| StoreError::BadQuery(format!("{op} takes a non-negative integer")))
}

/// `{"_id": "$topic", "n": {"$sum": 1}, "avg": {"$avg": "$score"}, …}`
fn parse_group(body: &Value) -> Result<Stage, StoreError> {
    let members = body
        .as_object()
        .ok_or_else(|| StoreError::BadQuery("$group takes an object".into()))?;
    let mut by = None;
    let mut accs = Vec::new();
    for (key, val) in members {
        if key == "_id" {
            by = match val {
                Value::Null => None,
                Value::Str(path) => Some(path.trim_start_matches('$').to_string()),
                _ => {
                    return Err(StoreError::BadQuery(
                        "$group _id must be null or a \"$path\"".into(),
                    ))
                }
            };
            continue;
        }
        let spec = val
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| StoreError::BadQuery("accumulators take one operator".into()))?;
        let (op, operand) = &spec[0];
        let path = || -> Result<String, StoreError> {
            operand
                .as_str()
                .map(|p| p.trim_start_matches('$').to_string())
                .ok_or_else(|| StoreError::BadQuery(format!("{op} takes a \"$path\"")))
        };
        let acc = match op.as_str() {
            // Mongo idiom: {"$sum": 1} counts documents.
            "$sum" if operand.as_i64() == Some(1) => Accumulator::Count,
            "$sum" => Accumulator::Sum(path()?),
            "$avg" => Accumulator::Avg(path()?),
            "$min" => Accumulator::Min(path()?),
            "$max" => Accumulator::Max(path()?),
            "$push" => Accumulator::Push(path()?),
            "$first" => Accumulator::First(path()?),
            "$count" => Accumulator::Count,
            other => return Err(StoreError::BadQuery(format!("unknown accumulator {other:?}"))),
        };
        accs.push((key.clone(), acc));
    }
    Ok(Stage::Group { by, accs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{obj, parse};
    use std::sync::Arc;

    fn corpus() -> Vec<Value> {
        vec![
            obj! { "_id" => "a", "topic" => "masks", "year" => 2020, "cites" => 10 },
            obj! { "_id" => "b", "topic" => "masks", "year" => 2021, "cites" => 5 },
            obj! { "_id" => "c", "topic" => "vaccines", "year" => 2021, "cites" => 30 },
        ]
    }

    #[test]
    fn parses_and_runs_a_full_pipeline() {
        let spec = parse(
            r#"[
                {"$match": {"year": {"$gte": 2020}}},
                {"$sort": {"cites": -1}},
                {"$skip": 1},
                {"$limit": 1},
                {"$project": ["topic"]}
            ]"#,
        )
        .unwrap();
        let p = Pipeline::parse(&spec, &[], &FunctionRegistry::new()).unwrap();
        let out = p.run(corpus());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("a"));
        assert!(out[0].get("cites").is_none());
    }

    #[test]
    fn group_with_mongo_idioms() {
        let spec = parse(
            r#"[
                {"$group": {"_id": "$topic", "n": {"$sum": 1}, "total": {"$sum": "$cites"}}},
                {"$sort": {"_id": 1}}
            ]"#,
        )
        .unwrap();
        let p = Pipeline::parse(&spec, &[], &FunctionRegistry::new()).unwrap();
        let out = p.run(corpus());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("masks"));
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(2));
        assert_eq!(out[0].get("total").unwrap().as_i64(), Some(15));
    }

    #[test]
    fn function_stage_resolves_from_registry() {
        let mut registry = FunctionRegistry::new();
        registry.register(
            "double_cites",
            Arc::new(|d: &Value| {
                Value::float(d.path("cites").and_then(Value::as_f64).unwrap_or(0.0) * 2.0)
            }),
        );
        let spec = parse(
            r#"[
                {"$function": {"name": "double_cites", "output": "score"}},
                {"$sort": {"score": -1}},
                {"$limit": 1}
            ]"#,
        )
        .unwrap();
        let p = Pipeline::parse(&spec, &[], &registry).unwrap();
        let out = p.run(corpus());
        assert_eq!(out[0].get("_id").unwrap().as_str(), Some("c"));
        assert_eq!(out[0].path("score").and_then(Value::as_f64), Some(60.0));
        // Unknown function fails at parse time.
        let missing = parse(r#"[{"$function": {"name": "nope", "output": "x"}}]"#).unwrap();
        assert!(Pipeline::parse(&missing, &[], &registry).is_err());
    }

    #[test]
    fn unwind_count_addfields_unset() {
        let docs = vec![obj! { "_id" => "x", "tags" => covidkg_json::arr!["a", "b"], "junk" => 1 }];
        let spec = parse(
            r#"[
                {"$addFields": {"src": "gen"}},
                {"$unset": ["junk"]},
                {"$unwind": "$tags"},
                {"$count": "n"}
            ]"#,
        )
        .unwrap();
        let p = Pipeline::parse(&spec, &[], &FunctionRegistry::new()).unwrap();
        let out = p.run(docs);
        assert_eq!(out[0].get("n").unwrap().as_i64(), Some(2));
    }

    #[test]
    fn malformed_pipelines_error() {
        let registry = FunctionRegistry::new();
        for bad in [
            r#"{"$match": {}}"#,              // not an array
            r#"[{"$match": {}, "$limit": 1}]"#, // two ops per stage
            r#"[{"$bogus": {}}]"#,
            r#"[{"$limit": -1}]"#,
            r#"[{"$limit": "x"}]"#,
            r#"[{"$sort": {"a": "up"}}]"#,
            r#"[{"$group": {"_id": 3}}]"#,
            r#"[{"$group": {"_id": null, "n": {"$bogus": 1}}}]"#,
            r#"[{"$unwind": 3}]"#,
            r#"[{"$project": "title"}]"#,
        ] {
            let spec = parse(bad).unwrap();
            assert!(
                Pipeline::parse(&spec, &[], &registry).is_err(),
                "should reject {bad}"
            );
        }
    }
}
