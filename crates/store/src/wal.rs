//! Write-ahead log and snapshots.
//!
//! Each collection owning a data directory appends every mutation to a WAL
//! before applying it, and can periodically compact the WAL into a
//! snapshot. Records are length-prefixed, CRC32-checksummed JSON frames
//! (`u32` little-endian length, then `u32` little-endian CRC32 of the
//! payload, then the payload), framed by hand. Recovery reads the
//! snapshot then replays the WAL, stopping at the first torn or corrupt
//! frame (the normal shape of a crash mid-append): everything before it
//! is a prefix of acknowledged writes, everything after is untrusted.
//!
//! The writer is crash- and fault-aware: it tracks the last known-good
//! file length, and if an append fails partway (a real I/O error or an
//! injected [`Fault::ShortWrite`]) the torn tail is truncated away before
//! the next append — so a retried append never corrupts the middle of
//! the log. [`crate::fault::FaultPlan`] hooks cover appends, syncs,
//! resets and snapshot writes.

use crate::error::StoreError;
use crate::fault::{Fault, FaultOp, FaultPlan};
use covidkg_json::{parse, Value};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A document was inserted.
    Insert(Value),
    /// A document was replaced.
    Update {
        /// Target `_id`.
        id: String,
        /// New document body.
        doc: Value,
    },
    /// A document was removed.
    Delete {
        /// Target `_id`.
        id: String,
    },
}

impl WalRecord {
    /// JSON encoding of this record (the same shape the on-disk WAL
    /// frames carry, and what the replication protocol ships).
    pub fn to_value(&self) -> Value {
        let mut v = Value::Object(Vec::new());
        match self {
            WalRecord::Insert(doc) => {
                v.insert("op", "i");
                v.insert("doc", doc.clone());
            }
            WalRecord::Update { id, doc } => {
                v.insert("op", "u");
                v.insert("id", id.clone());
                v.insert("doc", doc.clone());
            }
            WalRecord::Delete { id } => {
                v.insert("op", "d");
                v.insert("id", id.clone());
            }
        }
        v
    }

    /// Decode a record from its [`WalRecord::to_value`] JSON shape.
    pub fn from_value(v: &Value) -> Result<WalRecord, StoreError> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::Corrupt("wal record missing op".into()))?;
        let id = || -> Result<String, StoreError> {
            Ok(v.get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| StoreError::Corrupt("wal record missing id".into()))?
                .to_string())
        };
        let doc = || -> Result<Value, StoreError> {
            v.get("doc")
                .cloned()
                .ok_or_else(|| StoreError::Corrupt("wal record missing doc".into()))
        };
        match op {
            "i" => Ok(WalRecord::Insert(doc()?)),
            "u" => Ok(WalRecord::Update { id: id()?, doc: doc()? }),
            "d" => Ok(WalRecord::Delete { id: id()? }),
            other => Err(StoreError::Corrupt(format!("unknown wal op {other:?}"))),
        }
    }
}

/// CRC32 (IEEE 802.3) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 checksum of `bytes` (IEEE polynomial, as used by zip/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Bytes of frame overhead before the payload (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Path of the sequence sidecar recording the base sequence of a WAL
/// file (the global sequence number of the last record compacted into
/// the snapshot). Lives next to the WAL so a reset can advance it
/// atomically via tmp + rename.
fn sidecar_path(wal_path: &Path) -> PathBuf {
    wal_path.with_extension("seq")
}

/// Read a WAL's base sequence from its sidecar (0 when none exists —
/// a fresh log starts the global sequence at 1).
pub fn read_base_seq(wal_path: &Path) -> Result<u64, StoreError> {
    let raw = match std::fs::read_to_string(sidecar_path(wal_path)) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let v = parse(raw.trim()).map_err(|e| StoreError::Corrupt(format!("seq sidecar: {e}")))?;
    v.get("base_seq")
        .and_then(Value::as_i64)
        .map(|n| n.max(0) as u64)
        .ok_or_else(|| StoreError::Corrupt("seq sidecar missing base_seq".into()))
}

fn write_base_seq(wal_path: &Path, base_seq: u64) -> Result<(), StoreError> {
    let path = sidecar_path(wal_path);
    let tmp = path.with_extension("seq.tmp");
    let body = covidkg_json::obj! { "base_seq" => base_seq as i64 }.to_json();
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Path of the fencing-epoch sidecar (`<wal>.epoch`). Records the
/// replication leadership generation under which this node last owned
/// or followed the log, so a restarted node rejoins the cluster at the
/// correct epoch instead of a pre-failover one.
fn epoch_path(wal_path: &Path) -> PathBuf {
    wal_path.with_extension("epoch")
}

/// Read a WAL's fencing epoch from its sidecar (0 when none exists —
/// a fresh node starts in the pre-failover generation).
pub fn read_epoch(wal_path: &Path) -> Result<u64, StoreError> {
    let raw = match std::fs::read_to_string(epoch_path(wal_path)) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    let v = parse(raw.trim()).map_err(|e| StoreError::Corrupt(format!("epoch sidecar: {e}")))?;
    v.get("epoch")
        .and_then(Value::as_i64)
        .map(|n| n.max(0) as u64)
        .ok_or_else(|| StoreError::Corrupt("epoch sidecar missing epoch".into()))
}

/// Persist a WAL's fencing epoch via tmp + rename, the same atomic
/// shape as the seq sidecar: a crash mid-write leaves either the old
/// epoch or the new one, never a torn file.
pub fn write_epoch(wal_path: &Path, epoch: u64) -> Result<(), StoreError> {
    let path = epoch_path(wal_path);
    let tmp = path.with_extension("epoch.tmp");
    let body = covidkg_json::obj! { "epoch" => epoch as i64 }.to_json();
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Appending WAL writer with torn-tail repair.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    /// Bytes of the file known to hold complete, checksummed frames.
    committed: u64,
    /// True when a failed append may have left garbage past `committed`.
    tail_dirty: bool,
    /// Global sequence of the record preceding the first frame of the
    /// current file (persisted in the sidecar across resets).
    base_seq: u64,
    /// Global sequence of the last committed record — the durable
    /// replication watermark. Monotonic across [`WalWriter::reset`].
    seq: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl WalWriter {
    /// Open (creating or appending to) the WAL at `path`. Any torn or
    /// corrupt tail left by a previous crash is truncated away so new
    /// appends extend the valid prefix rather than burying records
    /// behind garbage.
    pub fn open(path: impl Into<PathBuf>) -> Result<WalWriter, StoreError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let committed = valid_prefix_len(&raw) as u64;
        if committed < raw.len() as u64 {
            file.set_len(committed)?;
            file.seek(SeekFrom::End(0))?;
        }
        let base_seq = read_base_seq(&path)?;
        let seq = base_seq + frame_ends(&raw[..committed as usize]).len() as u64;
        Ok(WalWriter {
            path,
            file,
            committed,
            tail_dirty: false,
            base_seq,
            seq,
            faults: None,
        })
    }

    /// Global sequence of the last committed record — the durable
    /// replication watermark. Survives resets via the seq sidecar.
    pub fn watermark(&self) -> u64 {
        self.seq
    }

    /// Global sequence of the last record absorbed into the snapshot;
    /// the current file holds exactly records `base_seq + 1 ..= seq`.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// The committed records currently in the file, paired with their
    /// global sequence numbers, from `from_seq` onward. Returns
    /// [`WalTail::SnapshotNeeded`] when `from_seq` predates the file
    /// (those records were compacted away) — the caller must bootstrap
    /// from a checkpoint instead.
    pub fn tail_from(&self, from_seq: u64) -> Result<WalTail, StoreError> {
        if from_seq <= self.base_seq {
            return Ok(WalTail::SnapshotNeeded {
                base_seq: self.base_seq,
            });
        }
        let mut raw = Vec::new();
        let mut reader = File::open(&self.path)?;
        reader.read_to_end(&mut raw)?;
        raw.truncate(self.committed as usize);
        let records = decode_frames(&raw)?;
        if records.len() as u64 != self.seq - self.base_seq {
            return Err(StoreError::Corrupt(format!(
                "wal holds {} records, watermark implies {}",
                records.len(),
                self.seq - self.base_seq
            )));
        }
        let skip = (from_seq - self.base_seq - 1) as usize;
        Ok(WalTail::Records(
            records
                .into_iter()
                .enumerate()
                .skip(skip)
                .map(|(i, r)| (self.base_seq + 1 + i as u64, r))
                .collect(),
        ))
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attach (or detach) a fault plan consulted on every append, sync
    /// and reset.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        self.faults = plan;
    }

    /// Truncate a torn tail left by a previously failed append.
    fn repair_tail(&mut self) -> Result<(), StoreError> {
        if self.tail_dirty {
            self.file.set_len(self.committed)?;
            self.file.seek(SeekFrom::End(0))?;
            self.tail_dirty = false;
        }
        Ok(())
    }

    /// Append one record (unbuffered single write; call
    /// [`WalWriter::sync`] for durability), returning the global
    /// sequence number it was assigned. On a transient failure the
    /// record is **not** committed (and no sequence is consumed) and
    /// the call is safe to retry: the next append truncates whatever
    /// the failed write left behind.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, StoreError> {
        self.repair_tail()?;
        let payload = record.to_value().to_json();
        let frame = frame_bytes(payload.as_bytes());
        if let Some(plan) = self.faults.clone() {
            match plan.decide(FaultOp::WalAppend) {
                Some(Fault::Fail) => return Err(FaultPlan::error(FaultOp::WalAppend)),
                Some(Fault::ShortWrite(frac)) => {
                    // Land a genuine torn tail on disk, then fail.
                    let keep = ((frame.len() as f64 * frac) as usize)
                        .clamp(1, frame.len() - 1);
                    self.tail_dirty = true;
                    let _ = self.file.write_all(&frame[..keep]);
                    return Err(FaultPlan::error(FaultOp::WalAppend));
                }
                Some(Fault::Delay(d)) => std::thread::sleep(d),
                // ENOSPC: nothing reaches the file, and the error is
                // permanent — the caller must not retry.
                Some(Fault::DiskFull) => {
                    return Err(FaultPlan::disk_full_error(FaultOp::WalAppend))
                }
                None => {}
            }
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.tail_dirty = true;
            return Err(e.into());
        }
        self.committed += frame.len() as u64;
        self.seq += 1;
        Ok(self.seq)
    }

    /// Fsync to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(plan) = &self.faults {
            match plan.decide(FaultOp::WalSync) {
                Some(Fault::Fail | Fault::ShortWrite(_)) => {
                    return Err(FaultPlan::error(FaultOp::WalSync))
                }
                Some(Fault::Delay(d)) => std::thread::sleep(d),
                Some(Fault::DiskFull) => {
                    return Err(FaultPlan::disk_full_error(FaultOp::WalSync))
                }
                None => {}
            }
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the log (after a successful snapshot). The global
    /// sequence is preserved: the watermark carries over into the
    /// sidecar as the new base, so sequence numbers never regress
    /// across compaction.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.reset_to_seq(self.seq)
    }

    /// Truncate the log and force the global sequence to `seq` (used
    /// when a replica installs a primary checkpoint whose watermark it
    /// must adopt). The sidecar is advanced **before** the truncation:
    /// a crash between the two leaves a forward sequence jump, which
    /// replay tolerates, never a regression, which replication could
    /// not detect.
    pub fn reset_to_seq(&mut self, seq: u64) -> Result<(), StoreError> {
        if let Some(plan) = &self.faults {
            match plan.decide(FaultOp::WalReset) {
                Some(Fault::Fail | Fault::ShortWrite(_)) => {
                    return Err(FaultPlan::error(FaultOp::WalReset))
                }
                Some(Fault::Delay(d)) => std::thread::sleep(d),
                Some(Fault::DiskFull) => {
                    return Err(FaultPlan::disk_full_error(FaultOp::WalReset))
                }
                None => {}
            }
        }
        write_base_seq(&self.path, seq)?;
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.committed = 0;
        self.tail_dirty = false;
        self.base_seq = seq;
        self.seq = seq;
        Ok(())
    }
}

/// Outcome of asking for the WAL tail from a given sequence number.
#[derive(Debug, Clone, PartialEq)]
pub enum WalTail {
    /// The requested records, each paired with its global sequence.
    Records(Vec<(u64, WalRecord)>),
    /// `from_seq` predates the current file — those records were
    /// compacted into the snapshot and the caller must bootstrap from a
    /// checkpoint instead.
    SnapshotNeeded {
        /// Sequence of the last record absorbed into the snapshot.
        base_seq: u64,
    },
}

/// Read-only view over a WAL file and its sequence sidecar, for
/// consumers (the replication listener, offline tooling) that must not
/// hold the appending writer.
#[derive(Debug, Clone)]
pub struct WalReader {
    path: PathBuf,
}

impl WalReader {
    /// Point a reader at `path` (the file may not exist yet — an absent
    /// WAL reads as empty at sequence 0).
    pub fn new(path: impl Into<PathBuf>) -> WalReader {
        WalReader { path: path.into() }
    }

    /// The committed records on disk from `from_seq` onward, or
    /// [`WalTail::SnapshotNeeded`] when that sequence was compacted
    /// away. A torn tail is skipped exactly as crash recovery skips it.
    pub fn tail_from(&self, from_seq: u64) -> Result<WalTail, StoreError> {
        let base_seq = read_base_seq(&self.path)?;
        if from_seq <= base_seq {
            return Ok(WalTail::SnapshotNeeded { base_seq });
        }
        let mut raw = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalTail::Records(Vec::new()))
            }
            Err(e) => return Err(e.into()),
        }
        raw.truncate(valid_prefix_len(&raw));
        let records = decode_frames(&raw)?;
        let skip = (from_seq - base_seq - 1) as usize;
        Ok(WalTail::Records(
            records
                .into_iter()
                .enumerate()
                .skip(skip)
                .map(|(i, r)| (base_seq + 1 + i as u64, r))
                .collect(),
        ))
    }

    /// The durable watermark implied by the file on disk: base sequence
    /// plus the number of committed frames.
    pub fn watermark(&self) -> Result<u64, StoreError> {
        let base_seq = read_base_seq(&self.path)?;
        let mut raw = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut raw)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(base_seq),
            Err(e) => return Err(e.into()),
        }
        Ok(base_seq + frame_ends(&raw).len() as u64)
    }
}

/// Decode every frame of a fully-valid buffer into records. Callers
/// must already have trimmed the buffer to its valid prefix.
fn decode_frames(raw: &[u8]) -> Result<Vec<WalRecord>, StoreError> {
    let mut buf = raw;
    let mut records = Vec::new();
    while let Some(payload) = next_frame(&mut buf) {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt("wal frame is not UTF-8".into()))?;
        let value = parse(text).map_err(|e| StoreError::Corrupt(format!("wal frame: {e}")))?;
        records.push(WalRecord::from_value(&value)?);
    }
    Ok(records)
}

/// Length-prefix and checksum `payload` into one wire frame.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Split the next frame off `buf`, verifying its checksum. `None` when
/// fewer bytes remain than the header promises or the CRC disagrees —
/// either way the tail is untrusted and replay must stop.
fn next_frame<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let header: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    let len = u32::from_le_bytes(header) as usize;
    let sum: [u8; 4] = buf.get(4..8)?.try_into().ok()?;
    let payload = buf.get(FRAME_HEADER..FRAME_HEADER + len)?;
    if crc32(payload) != u32::from_le_bytes(sum) {
        return None;
    }
    *buf = &buf[FRAME_HEADER + len..];
    Some(payload)
}

/// Length of the longest prefix of `raw` made of complete, checksummed
/// frames.
pub(crate) fn valid_prefix_len(raw: &[u8]) -> usize {
    let mut buf = raw;
    while next_frame(&mut buf).is_some() {}
    raw.len() - buf.len()
}

/// Cumulative end offsets of every complete, checksummed frame in `raw`
/// (the last entry equals the valid prefix length). Public so crash
/// harnesses outside this crate can cut a log at exact frame
/// boundaries.
pub fn frame_ends(raw: &[u8]) -> Vec<usize> {
    let mut buf = raw;
    let mut ends = Vec::new();
    while next_frame(&mut buf).is_some() {
        ends.push(raw.len() - buf.len());
    }
    ends
}

/// Read every trustworthy record from a WAL file. A torn or corrupt tail
/// (truncated frame, checksum mismatch — the shapes a crash mid-write
/// leaves behind) stops replay and is reported via the returned flag;
/// corrupt JSON inside a frame whose checksum verifies indicates a
/// writer bug and is a hard error.
pub fn read_wal(path: &Path) -> Result<(Vec<WalRecord>, bool), StoreError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e.into()),
    }
    let mut buf = &raw[..];
    let mut records = Vec::new();
    while let Some(payload) = next_frame(&mut buf) {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt("wal frame is not UTF-8".into()))?;
        let value = parse(text).map_err(|e| StoreError::Corrupt(format!("wal frame: {e}")))?;
        records.push(WalRecord::from_value(&value)?);
    }
    Ok((records, !buf.is_empty()))
}

/// Write a snapshot of documents to `path` atomically (tmp file +
/// rename). A fault injected anywhere before the rename leaves the old
/// snapshot untouched, so a failed snapshot is always safe to retry.
pub fn write_snapshot<'a>(
    path: &Path,
    docs: impl Iterator<Item = &'a Value>,
) -> Result<usize, StoreError> {
    write_snapshot_with(path, docs, None)
}

/// [`write_snapshot`] with an optional fault plan covering the write.
pub fn write_snapshot_with<'a>(
    path: &Path,
    docs: impl Iterator<Item = &'a Value>,
    faults: Option<&FaultPlan>,
) -> Result<usize, StoreError> {
    let mut truncate_after: Option<f64> = None;
    if let Some(plan) = faults {
        match plan.decide(FaultOp::SnapshotWrite) {
            Some(Fault::Fail) => return Err(FaultPlan::error(FaultOp::SnapshotWrite)),
            Some(Fault::ShortWrite(frac)) => truncate_after = Some(frac),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::DiskFull) => {
                return Err(FaultPlan::disk_full_error(FaultOp::SnapshotWrite))
            }
            None => {}
        }
    }
    let tmp = path.with_extension("tmp");
    let mut out = Vec::new();
    let mut n = 0;
    for doc in docs {
        let payload = doc.to_json();
        out.extend_from_slice(&frame_bytes(payload.as_bytes()));
        n += 1;
    }
    if let Some(frac) = truncate_after {
        // Crash mid-snapshot-write: only a prefix of the tmp file lands,
        // and the rename never happens.
        let keep = ((out.len() as f64 * frac) as usize).min(out.len());
        std::fs::write(&tmp, &out[..keep])?;
        return Err(FaultPlan::error(FaultOp::SnapshotWrite));
    }
    let mut f = File::create(&tmp)?;
    f.write_all(&out)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(n)
}

/// Read a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> Result<Vec<Value>, StoreError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut buf = &raw[..];
    let mut docs = Vec::new();
    while let Some(payload) = next_frame(&mut buf) {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt("snapshot frame is not UTF-8".into()))?;
        docs.push(parse(text).map_err(|e| StoreError::Corrupt(format!("snapshot: {e}")))?);
    }
    if !buf.is_empty() {
        return Err(StoreError::Corrupt("snapshot truncated or corrupt".into()));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use covidkg_json::obj;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("covidkg-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn epoch_sidecar_round_trips_and_defaults_to_zero() {
        let dir = tmpdir("epoch");
        let path = dir.join("test.wal");
        assert_eq!(read_epoch(&path).unwrap(), 0);
        write_epoch(&path, 3).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), 3);
        write_epoch(&path, 4).unwrap();
        assert_eq!(read_epoch(&path).unwrap(), 4);
        // Garbage is a corruption report, not a silent zero.
        std::fs::write(epoch_path(&path), "not json").unwrap();
        assert!(read_epoch(&path).is_err());
    }

    #[test]
    fn crc32_reference_vector() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        let records = vec![
            WalRecord::Insert(obj! { "_id" => "a", "v" => 1 }),
            WalRecord::Update {
                id: "a".into(),
                doc: obj! { "_id" => "a", "v" => 2 },
            },
            WalRecord::Delete { id: "a".into() },
        ];
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        let (back, truncated) = read_wal(&path).unwrap();
        assert!(!truncated);
        assert_eq!(back, records);
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let dir = tmpdir("trunc");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.sync().unwrap();
        // Chop off the last 3 bytes, simulating a crash mid-write.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(truncated);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn corrupt_final_frame_is_dropped_not_fatal() {
        let dir = tmpdir("flip");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.sync().unwrap();
        // Flip one payload byte of the final frame: the checksum must
        // catch it and recovery must keep the clean prefix.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 2;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(truncated);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn corrupt_frame_is_an_error() {
        // A frame whose checksum verifies but whose payload is not JSON
        // means the writer itself misbehaved — hard error, not a torn tail.
        let dir = tmpdir("corrupt");
        let path = dir.join("test.wal");
        std::fs::write(&path, frame_bytes(b"not json")).unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn missing_wal_is_empty() {
        let dir = tmpdir("missing");
        let (records, truncated) = read_wal(&dir.join("nope.wal")).unwrap();
        assert!(records.is_empty() && !truncated);
    }

    #[test]
    fn reset_truncates() {
        let dir = tmpdir("reset");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Delete { id: "x".into() }).unwrap();
        w.reset().unwrap();
        let (records, _) = read_wal(&path).unwrap();
        assert!(records.is_empty());
        // Writer still usable after reset.
        w.append(&WalRecord::Delete { id: "y".into() }).unwrap();
        w.sync().unwrap();
        let (records, _) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let dir = tmpdir("reopen");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a crash that left half a frame on disk.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        std::fs::write(&path, &raw).unwrap();
        // Appending through a fresh writer must not bury the new record
        // behind the garbage.
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.sync().unwrap();
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(!truncated);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn short_write_fault_repairs_on_retry() {
        let dir = tmpdir("short");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        // One guaranteed short write, then clean.
        let plan = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 1.0,
            delay: 0.0,
            max_faults: 1,
            ..FaultConfig::default()
        });
        w.set_fault_plan(Some(plan));
        let rec = WalRecord::Insert(obj! { "_id" => "b" });
        assert!(matches!(w.append(&rec), Err(StoreError::Transient(_))));
        // The torn bytes are on disk right now…
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(truncated, "short write left a torn tail");
        assert_eq!(records.len(), 1);
        // …and the retry repairs them before re-appending.
        w.append(&rec).unwrap();
        w.sync().unwrap();
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(!truncated);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmpdir("snap");
        let path = dir.join("c.snapshot");
        let docs = vec![obj! { "_id" => "a" }, obj! { "_id" => "b", "n" => 2 }];
        let n = write_snapshot(&path, docs.iter()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(read_snapshot(&path).unwrap(), docs);
    }

    #[test]
    fn snapshot_fault_leaves_previous_snapshot_intact() {
        let dir = tmpdir("snapfault");
        let path = dir.join("c.snapshot");
        let old = vec![obj! { "_id" => "a" }];
        write_snapshot(&path, old.iter()).unwrap();
        let plan = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 1.0,
            delay: 0.0,
            ..FaultConfig::default()
        });
        let new = vec![obj! { "_id" => "a" }, obj! { "_id" => "b" }];
        let err = write_snapshot_with(&path, new.iter(), Some(&plan)).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(read_snapshot(&path).unwrap(), old, "old snapshot untouched");
        plan.disarm();
        write_snapshot_with(&path, new.iter(), Some(&plan)).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), new);
    }

    #[test]
    fn missing_snapshot_is_empty() {
        let dir = tmpdir("nosnap");
        assert!(read_snapshot(&dir.join("nope")).unwrap().is_empty());
    }

    #[test]
    fn sequence_survives_reset_and_reopen() {
        let dir = tmpdir("seq");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        assert_eq!(w.watermark(), 0);
        assert_eq!(w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap(), 1);
        assert_eq!(w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap(), 2);
        w.reset().unwrap();
        // Compaction must not regress the global sequence…
        assert_eq!(w.watermark(), 2);
        assert_eq!(w.base_seq(), 2);
        assert_eq!(w.append(&WalRecord::Insert(obj! { "_id" => "c" })).unwrap(), 3);
        drop(w);
        // …and a reopen recomputes it from sidecar + frames.
        let w = WalWriter::open(&path).unwrap();
        assert_eq!(w.watermark(), 3);
        assert_eq!(w.base_seq(), 2);
    }

    #[test]
    fn tail_from_returns_suffix_with_sequences() {
        let dir = tmpdir("tail");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        for id in ["a", "b", "c"] {
            w.append(&WalRecord::Insert(obj! { "_id" => id })).unwrap();
        }
        let WalTail::Records(tail) = w.tail_from(2).unwrap() else {
            panic!("expected records");
        };
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].0, 2);
        assert_eq!(tail[1].0, 3);
        assert_eq!(tail[1].1, WalRecord::Insert(obj! { "_id" => "c" }));
        // Past the watermark: empty, not an error.
        assert_eq!(w.tail_from(4).unwrap(), WalTail::Records(Vec::new()));
    }

    #[test]
    fn tail_from_before_base_requires_snapshot() {
        let dir = tmpdir("tailbase");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.reset().unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "c" })).unwrap();
        assert_eq!(
            w.tail_from(1).unwrap(),
            WalTail::SnapshotNeeded { base_seq: 2 }
        );
        let WalTail::Records(tail) = w.tail_from(3).unwrap() else {
            panic!("expected records");
        };
        assert_eq!(tail, vec![(3, WalRecord::Insert(obj! { "_id" => "c" }))]);
    }

    #[test]
    fn wal_reader_matches_writer_view() {
        let dir = tmpdir("reader");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.reset().unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.sync().unwrap();
        let r = WalReader::new(&path);
        assert_eq!(r.watermark().unwrap(), 2);
        assert_eq!(r.tail_from(1).unwrap(), WalTail::SnapshotNeeded { base_seq: 1 });
        let WalTail::Records(tail) = r.tail_from(2).unwrap() else {
            panic!("expected records");
        };
        assert_eq!(tail, vec![(2, WalRecord::Insert(obj! { "_id" => "b" }))]);
        // A reader over a missing file is empty at sequence 0.
        let r = WalReader::new(dir.join("nope.wal"));
        assert_eq!(r.watermark().unwrap(), 0);
        assert_eq!(r.tail_from(1).unwrap(), WalTail::Records(Vec::new()));
    }
}
