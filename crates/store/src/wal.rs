//! Write-ahead log and snapshots.
//!
//! Each collection owning a data directory appends every mutation to a WAL
//! before applying it, and can periodically compact the WAL into a
//! snapshot. Records are length-prefixed JSON frames (`u32` little-endian
//! length + payload), framed by hand over plain byte slices. Recovery
//! reads the snapshot then replays the WAL, tolerating a truncated final
//! frame (the normal shape of a crash mid-append).

use crate::error::StoreError;
use covidkg_json::{parse, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A document was inserted.
    Insert(Value),
    /// A document was replaced.
    Update {
        /// Target `_id`.
        id: String,
        /// New document body.
        doc: Value,
    },
    /// A document was removed.
    Delete {
        /// Target `_id`.
        id: String,
    },
}

impl WalRecord {
    fn to_value(&self) -> Value {
        let mut v = Value::Object(Vec::new());
        match self {
            WalRecord::Insert(doc) => {
                v.insert("op", "i");
                v.insert("doc", doc.clone());
            }
            WalRecord::Update { id, doc } => {
                v.insert("op", "u");
                v.insert("id", id.clone());
                v.insert("doc", doc.clone());
            }
            WalRecord::Delete { id } => {
                v.insert("op", "d");
                v.insert("id", id.clone());
            }
        }
        v
    }

    fn from_value(v: &Value) -> Result<WalRecord, StoreError> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::Corrupt("wal record missing op".into()))?;
        let id = || -> Result<String, StoreError> {
            Ok(v.get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| StoreError::Corrupt("wal record missing id".into()))?
                .to_string())
        };
        let doc = || -> Result<Value, StoreError> {
            v.get("doc")
                .cloned()
                .ok_or_else(|| StoreError::Corrupt("wal record missing doc".into()))
        };
        match op {
            "i" => Ok(WalRecord::Insert(doc()?)),
            "u" => Ok(WalRecord::Update { id: id()?, doc: doc()? }),
            "d" => Ok(WalRecord::Delete { id: id()? }),
            other => Err(StoreError::Corrupt(format!("unknown wal op {other:?}"))),
        }
    }
}

/// Appending WAL writer.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl WalWriter {
    /// Open (creating or appending to) the WAL at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<WalWriter, StoreError> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter {
            path,
            out: BufWriter::new(file),
        })
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (buffered; call [`WalWriter::sync`] for durability).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        let payload = record.to_value().to_json();
        let frame = frame_bytes(payload.as_bytes());
        self.out.write_all(&frame)?;
        Ok(())
    }

    /// Flush buffers and fsync to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.out.flush()?;
        self.out.get_ref().sync_data()?;
        Ok(())
    }

    /// Truncate the log (after a successful snapshot).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.out.flush()?;
        let file = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        self.out = BufWriter::new(file);
        Ok(())
    }
}

/// Length-prefix `payload` into one wire frame.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Split the next `u32`-length-prefixed frame off `buf`, or `None` when
/// fewer bytes remain than the header promises (a truncated tail).
fn next_frame<'a>(buf: &mut &'a [u8]) -> Option<&'a [u8]> {
    let header: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    let len = u32::from_le_bytes(header) as usize;
    let payload = buf.get(4..4 + len)?;
    *buf = &buf[4 + len..];
    Some(payload)
}

/// Read every complete record from a WAL file. A truncated final frame is
/// tolerated (reported via the returned flag); corrupt JSON inside a
/// complete frame is an error.
pub fn read_wal(path: &Path) -> Result<(Vec<WalRecord>, bool), StoreError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e.into()),
    }
    let mut buf = &raw[..];
    let mut records = Vec::new();
    while let Some(payload) = next_frame(&mut buf) {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt("wal frame is not UTF-8".into()))?;
        let value = parse(text).map_err(|e| StoreError::Corrupt(format!("wal frame: {e}")))?;
        records.push(WalRecord::from_value(&value)?);
    }
    Ok((records, !buf.is_empty()))
}

/// Write a snapshot of documents to `path` atomically (tmp file + rename).
pub fn write_snapshot<'a>(
    path: &Path,
    docs: impl Iterator<Item = &'a Value>,
) -> Result<usize, StoreError> {
    let tmp = path.with_extension("tmp");
    let mut out = BufWriter::new(File::create(&tmp)?);
    let mut n = 0;
    for doc in docs {
        let payload = doc.to_json();
        out.write_all(&frame_bytes(payload.as_bytes()))?;
        n += 1;
    }
    out.flush()?;
    out.get_ref().sync_data()?;
    drop(out);
    std::fs::rename(&tmp, path)?;
    Ok(n)
}

/// Read a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> Result<Vec<Value>, StoreError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    }
    let mut buf = &raw[..];
    let mut docs = Vec::new();
    while let Some(payload) = next_frame(&mut buf) {
        let text = std::str::from_utf8(payload)
            .map_err(|_| StoreError::Corrupt("snapshot frame is not UTF-8".into()))?;
        docs.push(parse(text).map_err(|e| StoreError::Corrupt(format!("snapshot: {e}")))?);
    }
    if !buf.is_empty() {
        return Err(StoreError::Corrupt("snapshot truncated".into()));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::obj;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("covidkg-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        let records = vec![
            WalRecord::Insert(obj! { "_id" => "a", "v" => 1 }),
            WalRecord::Update {
                id: "a".into(),
                doc: obj! { "_id" => "a", "v" => 2 },
            },
            WalRecord::Delete { id: "a".into() },
        ];
        for r in &records {
            w.append(r).unwrap();
        }
        w.sync().unwrap();
        let (back, truncated) = read_wal(&path).unwrap();
        assert!(!truncated);
        assert_eq!(back, records);
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let dir = tmpdir("trunc");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "a" })).unwrap();
        w.append(&WalRecord::Insert(obj! { "_id" => "b" })).unwrap();
        w.sync().unwrap();
        // Chop off the last 3 bytes, simulating a crash mid-write.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let (records, truncated) = read_wal(&path).unwrap();
        assert!(truncated);
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn corrupt_frame_is_an_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("test.wal");
        let payload = b"not json";
        std::fs::write(&path, frame_bytes(payload)).unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn missing_wal_is_empty() {
        let dir = tmpdir("missing");
        let (records, truncated) = read_wal(&dir.join("nope.wal")).unwrap();
        assert!(records.is_empty() && !truncated);
    }

    #[test]
    fn reset_truncates() {
        let dir = tmpdir("reset");
        let path = dir.join("test.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&WalRecord::Delete { id: "x".into() }).unwrap();
        w.reset().unwrap();
        let (records, _) = read_wal(&path).unwrap();
        assert!(records.is_empty());
        // Writer still usable after reset.
        w.append(&WalRecord::Delete { id: "y".into() }).unwrap();
        w.sync().unwrap();
        let (records, _) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = tmpdir("snap");
        let path = dir.join("c.snapshot");
        let docs = vec![obj! { "_id" => "a" }, obj! { "_id" => "b", "n" => 2 }];
        let n = write_snapshot(&path, docs.iter()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(read_snapshot(&path).unwrap(), docs);
    }

    #[test]
    fn missing_snapshot_is_empty() {
        let dir = tmpdir("nosnap");
        assert!(read_snapshot(&dir.join("nope")).unwrap().is_empty());
    }
}
