//! Deterministic fault injection and bounded-backoff retry.
//!
//! A [`FaultPlan`] is a seeded source of storage faults shared (via
//! `Arc`) between a [`crate::Collection`], its WAL writer and the
//! snapshot path. Every injectable I/O point asks the plan whether to
//! fail, short-write or delay the operation; decisions come from one
//! `covidkg-rand` stream, so a fixed seed replays the same fault
//! schedule. Injected failures surface as [`StoreError::Transient`] —
//! the retry half of this module ([`RetryPolicy`] / [`with_backoff`])
//! distinguishes them from permanent errors and retries with bounded
//! exponential backoff, which is how the ingest path and the background
//! flusher survive fault storms without acknowledging lost writes.

use crate::error::StoreError;
use covidkg_rand::{Rng, SeedableRng, SmallRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An injectable storage operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Appending one frame to the WAL.
    WalAppend,
    /// Flushing + fsyncing the WAL.
    WalSync,
    /// Truncating the WAL after a snapshot.
    WalReset,
    /// Writing a snapshot file.
    SnapshotWrite,
    /// The background flusher deciding to compact (snapshot + WAL
    /// reset). A failure here means the tick is skipped — the WAL keeps
    /// growing but no acknowledged write is lost.
    Compaction,
    /// Rebuilding an index from live documents (hash-index creation,
    /// checkpoint installation).
    IndexRebuild,
}

impl FaultOp {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultOp::WalAppend => "wal-append",
            FaultOp::WalSync => "wal-sync",
            FaultOp::WalReset => "wal-reset",
            FaultOp::SnapshotWrite => "snapshot-write",
            FaultOp::Compaction => "compaction",
            FaultOp::IndexRebuild => "index-rebuild",
        }
    }
}

/// What the plan decided to do to one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Fail the operation outright (no bytes reach the file).
    Fail,
    /// Write only this fraction (in `(0, 1)`) of the frame, then fail —
    /// the torn-tail shape of a crash mid-write.
    ShortWrite(f64),
    /// Delay the operation, then let it proceed.
    Delay(Duration),
    /// The device is out of space (ENOSPC): the operation fails with a
    /// **permanent** error that must surface to the caller un-retried —
    /// retrying cannot conjure free disk.
    DiskFull,
}

/// Fault probabilities and bounds for a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability an operation fails outright.
    pub fail: f64,
    /// Probability a `WalAppend`/`SnapshotWrite` is short-written
    /// (other ops treat this as `fail`).
    pub short_write: f64,
    /// Probability an operation is delayed.
    pub delay: f64,
    /// Probability an operation hits a simulated full disk (ENOSPC).
    pub disk_full: f64,
    /// Length of an injected delay.
    pub delay_for: Duration,
    /// Stop injecting after this many faults (0 = unlimited).
    pub max_faults: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0xC0BD,
            fail: 0.2,
            short_write: 0.05,
            delay: 0.05,
            disk_full: 0.0,
            delay_for: Duration::from_micros(200),
            max_faults: 0,
        }
    }
}

/// Counters of what a plan injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations that consulted the plan.
    pub decisions: u64,
    /// Outright failures injected.
    pub fails: u64,
    /// Short writes injected.
    pub short_writes: u64,
    /// Delays injected.
    pub delays: u64,
    /// Simulated disk-full (ENOSPC) failures injected.
    pub disk_fulls: u64,
}

impl FaultStats {
    /// Total faults injected (fails + short writes + delays + ENOSPC).
    pub fn injected(&self) -> u64 {
        self.fails + self.short_writes + self.delays + self.disk_fulls
    }
}

/// A seeded, shareable fault schedule.
///
/// `decide` draws from one mutex-guarded RNG, so for a fixed seed and a
/// fixed sequence of operations the schedule is fully deterministic;
/// under concurrency the interleaving varies but the totals remain
/// seed-reproducible. A plan starts **armed**; [`FaultPlan::disarm`]
/// turns it into a no-op (used by recovery phases that must run clean).
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Mutex<SmallRng>,
    decisions: AtomicU64,
    fails: AtomicU64,
    short_writes: AtomicU64,
    delays: AtomicU64,
    disk_fulls: AtomicU64,
    armed: AtomicU64,
}

impl FaultPlan {
    /// A new, armed plan.
    pub fn new(config: FaultConfig) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            config,
            decisions: AtomicU64::new(0),
            fails: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            disk_fulls: AtomicU64::new(0),
            armed: AtomicU64::new(1),
        })
    }

    /// Stop injecting (idempotent; counters are preserved).
    pub fn disarm(&self) {
        self.armed.store(0, Ordering::Release);
    }

    /// Resume injecting.
    pub fn arm(&self) {
        self.armed.store(1, Ordering::Release);
    }

    /// Ask the plan what to do to `op`. `None` means "proceed normally".
    pub fn decide(&self, op: FaultOp) -> Option<Fault> {
        if self.armed.load(Ordering::Acquire) == 0 {
            return None;
        }
        if self.config.max_faults > 0 && self.stats().injected() >= self.config.max_faults {
            return None;
        }
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let roll: f64 = rng.gen_range(0.0..1.0);
        let c = &self.config;
        if roll < c.fail {
            self.fails.fetch_add(1, Ordering::Relaxed);
            Some(Fault::Fail)
        } else if roll < c.fail + c.short_write {
            match op {
                FaultOp::WalAppend | FaultOp::SnapshotWrite => {
                    let frac = rng.gen_range(0.05..0.95);
                    self.short_writes.fetch_add(1, Ordering::Relaxed);
                    Some(Fault::ShortWrite(frac))
                }
                _ => {
                    self.fails.fetch_add(1, Ordering::Relaxed);
                    Some(Fault::Fail)
                }
            }
        } else if roll < c.fail + c.short_write + c.delay {
            self.delays.fetch_add(1, Ordering::Relaxed);
            Some(Fault::Delay(c.delay_for))
        } else if roll < c.fail + c.short_write + c.delay + c.disk_full {
            self.disk_fulls.fetch_add(1, Ordering::Relaxed);
            Some(Fault::DiskFull)
        } else {
            None
        }
    }

    /// The injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            decisions: self.decisions.load(Ordering::Relaxed),
            fails: self.fails.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            disk_fulls: self.disk_fulls.load(Ordering::Relaxed),
        }
    }

    /// The transient error an injected failure of `op` surfaces as.
    pub fn error(op: FaultOp) -> StoreError {
        StoreError::Transient(format!("injected {} fault", op.label()))
    }

    /// The **permanent** error an injected [`Fault::DiskFull`] surfaces
    /// as: a real `StorageFull` I/O error, which
    /// [`StoreError::is_transient`] classifies as non-retryable — the
    /// retry machinery must hand it straight to the caller.
    pub fn disk_full_error(op: FaultOp) -> StoreError {
        StoreError::Io(std::io::Error::new(
            std::io::ErrorKind::StorageFull,
            format!("injected disk-full (ENOSPC) during {}", op.label()),
        ))
    }
}

/// Bounded exponential backoff for transient faults.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = never retry).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 6,
            base: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(20).saturating_sub(1));
        exp.min(self.max_backoff)
    }
}

/// Run `op`, retrying transient failures per `policy` with exponential
/// backoff. `on_retry` observes each retried error (for counters).
/// Permanent errors and transient errors that survive every retry are
/// returned to the caller.
pub fn with_backoff<T>(
    policy: &RetryPolicy,
    mut on_retry: impl FnMut(&StoreError),
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                attempt += 1;
                on_retry(&e);
                std::thread::sleep(policy.backoff(attempt));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            seed: 99,
            fail: 0.3,
            short_write: 0.1,
            delay: 0.1,
            ..FaultConfig::default()
        };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg);
        let da: Vec<_> = (0..200).map(|_| a.decide(FaultOp::WalAppend)).collect();
        let db: Vec<_> = (0..200).map(|_| b.decide(FaultOp::WalAppend)).collect();
        assert_eq!(da, db);
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected() > 0, "with p=0.5 over 200 ops some faults fire");
    }

    #[test]
    fn disarmed_plans_inject_nothing() {
        let plan = FaultPlan::new(FaultConfig {
            fail: 1.0,
            ..FaultConfig::default()
        });
        assert!(plan.decide(FaultOp::WalSync).is_some());
        plan.disarm();
        assert!(plan.decide(FaultOp::WalSync).is_none());
        plan.arm();
        assert!(plan.decide(FaultOp::WalSync).is_some());
    }

    #[test]
    fn max_faults_caps_injection() {
        let plan = FaultPlan::new(FaultConfig {
            fail: 1.0,
            max_faults: 3,
            ..FaultConfig::default()
        });
        let injected = (0..50)
            .filter(|_| plan.decide(FaultOp::WalAppend).is_some())
            .count();
        assert_eq!(injected, 3);
    }

    #[test]
    fn short_writes_only_target_framed_writes() {
        let plan = FaultPlan::new(FaultConfig {
            fail: 0.0,
            short_write: 1.0,
            delay: 0.0,
            ..FaultConfig::default()
        });
        assert!(matches!(
            plan.decide(FaultOp::WalAppend),
            Some(Fault::ShortWrite(f)) if (0.05..0.95).contains(&f)
        ));
        assert!(matches!(plan.decide(FaultOp::WalSync), Some(Fault::Fail)));
    }

    #[test]
    fn backoff_retries_transient_until_success() {
        let policy = RetryPolicy {
            max_retries: 5,
            base: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
        };
        let mut left = 3;
        let mut retries = 0;
        let out = with_backoff(&policy, |_| retries += 1, || {
            if left > 0 {
                left -= 1;
                Err(StoreError::Transient("flaky".into()))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(retries, 3);
    }

    #[test]
    fn backoff_gives_up_and_skips_permanent() {
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(1),
            max_backoff: Duration::from_micros(2),
        };
        let mut calls = 0;
        let out: Result<(), _> = with_backoff(&policy, |_| {}, || {
            calls += 1;
            Err(StoreError::Transient("always".into()))
        });
        assert!(matches!(out, Err(StoreError::Transient(_))));
        assert_eq!(calls, 3, "initial try + 2 retries");

        let mut calls = 0;
        let out: Result<(), _> = with_backoff(&policy, |_| {}, || {
            calls += 1;
            Err(StoreError::Corrupt("permanent".into()))
        });
        assert!(matches!(out, Err(StoreError::Corrupt(_))));
        assert_eq!(calls, 1, "permanent errors never retry");
    }

    #[test]
    fn backoff_is_bounded() {
        let p = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(9), Duration::from_millis(4), "capped");
    }
}
