//! MongoDB-style query filters.
//!
//! A filter is parsed from a JSON query document (the same shape a MongoDB
//! driver sends) into a [`Filter`] tree evaluated against documents. The
//! `$match` stage of the aggregation pipeline (§2.1) is a thin wrapper
//! over this module.
//!
//! Supported operators: implicit equality, `$eq`, `$ne`, `$gt`, `$gte`,
//! `$lt`, `$lte`, `$in`, `$nin`, `$exists`, `$regex` (with `$options: "i"`),
//! `$and`, `$or`, `$not`, `$text: {$search}` (stemmed token match over a
//! configurable field list — MongoDB resolves `$text` against its text
//! index; here the fields are captured in the filter so evaluation stays
//! self-contained, and the collection layer still uses the inverted index
//! to prune candidates).

use covidkg_json::Value;
use covidkg_regex::Regex;
use covidkg_text::{stem, tokenize_lower};

use crate::error::StoreError;
use crate::index::TextIndex;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A compiled query filter.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Matches every document.
    True,
    /// `field == value` (with MongoDB array semantics: an array field
    /// matches if any element equals the probe).
    Eq(String, Value),
    /// `field != value`.
    Ne(String, Value),
    /// `field > value` etc. (BSON total order, same-type comparisons only).
    Gt(String, Value),
    /// `field >= value`.
    Gte(String, Value),
    /// `field < value`.
    Lt(String, Value),
    /// `field <= value`.
    Lte(String, Value),
    /// Field value is one of the listed values.
    In(String, Vec<Value>),
    /// Field value is none of the listed values.
    Nin(String, Vec<Value>),
    /// Field presence check.
    Exists(String, bool),
    /// Regex over a string field.
    Regex(String, Arc<Regex>),
    /// Stemmed token match over the listed fields.
    Text {
        /// Stemmed query tokens.
        stems: Vec<String>,
        /// Dot paths of the fields to search.
        fields: Vec<String>,
    },
    /// Conjunction.
    And(Vec<Filter>),
    /// Disjunction.
    Or(Vec<Filter>),
    /// Negation.
    Not(Box<Filter>),
}

impl Filter {
    /// Parse a MongoDB-style query document. `text_fields` supplies the
    /// field list `$text` searches over (a collection's text index spec).
    pub fn parse(spec: &Value, text_fields: &[String]) -> Result<Filter, StoreError> {
        let members = spec
            .as_object()
            .ok_or_else(|| StoreError::BadQuery("filter must be an object".into()))?;
        let mut clauses = Vec::with_capacity(members.len());
        for (key, val) in members {
            match key.as_str() {
                "$and" => clauses.push(Filter::And(Self::parse_list(val, text_fields)?)),
                "$or" => clauses.push(Filter::Or(Self::parse_list(val, text_fields)?)),
                "$not" => clauses.push(Filter::Not(Box::new(Self::parse(val, text_fields)?))),
                "$text" => {
                    let search = val
                        .get("$search")
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            StoreError::BadQuery("$text requires {$search: <string>}".into())
                        })?;
                    clauses.push(Filter::text(search, text_fields.to_vec()));
                }
                field if field.starts_with('$') => {
                    return Err(StoreError::BadQuery(format!("unknown operator {field}")))
                }
                field => clauses.push(Self::parse_field(field, val)?),
            }
        }
        Ok(match clauses.len() {
            0 => Filter::True,
            1 => clauses.pop().unwrap(),
            _ => Filter::And(clauses),
        })
    }

    fn parse_list(val: &Value, text_fields: &[String]) -> Result<Vec<Filter>, StoreError> {
        val.as_array()
            .ok_or_else(|| StoreError::BadQuery("$and/$or take an array".into()))?
            .iter()
            .map(|v| Self::parse(v, text_fields))
            .collect()
    }

    fn parse_field(field: &str, val: &Value) -> Result<Filter, StoreError> {
        // An object whose keys are all operators is an operator spec;
        // anything else is implicit equality.
        let is_op_spec = val
            .as_object()
            .is_some_and(|o| !o.is_empty() && o.iter().all(|(k, _)| k.starts_with('$')));
        if !is_op_spec {
            return Ok(Filter::Eq(field.to_string(), val.clone()));
        }
        let ops = val.as_object().unwrap();
        // Extract $options first so $regex can see it regardless of order.
        let ci = ops
            .iter()
            .find(|(k, _)| k == "$options")
            .and_then(|(_, v)| v.as_str())
            .is_some_and(|o| o.contains('i'));
        let mut clauses = Vec::new();
        for (op, operand) in ops {
            let f = field.to_string();
            let filter = match op.as_str() {
                "$eq" => Filter::Eq(f, operand.clone()),
                "$ne" => Filter::Ne(f, operand.clone()),
                "$gt" => Filter::Gt(f, operand.clone()),
                "$gte" => Filter::Gte(f, operand.clone()),
                "$lt" => Filter::Lt(f, operand.clone()),
                "$lte" => Filter::Lte(f, operand.clone()),
                "$in" => Filter::In(f, operand_list(op, operand)?),
                "$nin" => Filter::Nin(f, operand_list(op, operand)?),
                "$exists" => Filter::Exists(
                    f,
                    operand.as_bool().ok_or_else(|| {
                        StoreError::BadQuery("$exists takes a boolean".into())
                    })?,
                ),
                "$regex" => {
                    let pat = operand.as_str().ok_or_else(|| {
                        StoreError::BadQuery("$regex takes a string".into())
                    })?;
                    let re = if ci { Regex::new_ci(pat) } else { Regex::new(pat) }
                        .map_err(|e| StoreError::BadQuery(format!("bad $regex: {e}")))?;
                    Filter::Regex(f, Arc::new(re))
                }
                "$options" => continue,
                other => {
                    return Err(StoreError::BadQuery(format!("unknown operator {other}")))
                }
            };
            clauses.push(filter);
        }
        Ok(match clauses.len() {
            0 => Filter::True,
            1 => clauses.pop().unwrap(),
            _ => Filter::And(clauses),
        })
    }

    /// Build a `$text` filter directly from a query string.
    pub fn text(search: &str, fields: Vec<String>) -> Filter {
        let stems = tokenize_lower(search)
            .into_iter()
            .map(|t| stem(&t))
            .collect();
        Filter::Text { stems, fields }
    }

    /// Evaluate against a document.
    pub fn matches(&self, doc: &Value) -> bool {
        match self {
            Filter::True => true,
            Filter::Eq(path, v) => cmp_path(doc, path, v, |o| o == Ordering::Equal, true),
            Filter::Ne(path, v) => !cmp_path(doc, path, v, |o| o == Ordering::Equal, true),
            Filter::Gt(path, v) => cmp_path(doc, path, v, |o| o == Ordering::Greater, false),
            Filter::Gte(path, v) => cmp_path(doc, path, v, |o| o != Ordering::Less, false),
            Filter::Lt(path, v) => cmp_path(doc, path, v, |o| o == Ordering::Less, false),
            Filter::Lte(path, v) => cmp_path(doc, path, v, |o| o != Ordering::Greater, false),
            Filter::In(path, vs) => vs
                .iter()
                .any(|v| cmp_path(doc, path, v, |o| o == Ordering::Equal, true)),
            Filter::Nin(path, vs) => !vs
                .iter()
                .any(|v| cmp_path(doc, path, v, |o| o == Ordering::Equal, true)),
            Filter::Exists(path, want) => doc.path(path).is_some() == *want,
            // Both text-ish filters match any string leaf under the path
            // (fields like `tables` hold arrays of objects whose captions
            // and cells are the searchable text).
            Filter::Regex(path, re) => {
                any_string_leaf(doc.path(path), &mut |s| re.is_match(s))
            }
            Filter::Text { stems, fields } => {
                if stems.is_empty() {
                    return false;
                }
                fields
                    .iter()
                    .any(|f| any_string_leaf(doc.path(f), &mut |s| text_contains_any(s, stems)))
            }
            Filter::And(fs) => fs.iter().all(|f| f.matches(doc)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(doc)),
            Filter::Not(f) => !f.matches(doc),
        }
    }

    /// If this filter pins `_id` to an exact value (possibly inside a
    /// top-level `$and`), return it — the collection uses this to route a
    /// query to a single shard.
    pub fn exact_id(&self) -> Option<&str> {
        match self {
            Filter::Eq(path, Value::Str(id)) if path == "_id" => Some(id),
            Filter::And(fs) => fs.iter().find_map(Filter::exact_id),
            _ => None,
        }
    }

    /// Collect the stems this filter needs via `$text`, for inverted-index
    /// candidate pruning. Returns `None` when the filter cannot be served
    /// by the index (e.g. top-level `$or` with a non-text branch).
    pub fn text_stems(&self) -> Option<Vec<&str>> {
        match self {
            Filter::Text { stems, .. } => {
                Some(stems.iter().map(String::as_str).collect())
            }
            Filter::And(fs) => fs.iter().find_map(Filter::text_stems),
            _ => None,
        }
    }

    /// Resolve this filter against the inverted index into a candidate id
    /// set that is a **superset** of the matching documents (callers still
    /// re-verify with [`Filter::matches`]). Returns `None` when the index
    /// cannot bound the result:
    ///
    /// * `$text` resolves exactly — union of postings over the queried
    ///   fields — but only when every queried field is indexed (a match in
    ///   an unindexed field would otherwise be missed);
    /// * `$and` intersects the branches the index can bound, ignoring the
    ///   rest (dropping a conjunct only widens the superset);
    /// * `$or` unions the branches, but every branch must be boundable —
    ///   one unboundable branch means any document could match;
    /// * everything else (`$regex`, comparisons, `$not`, …) is unbounded.
    pub fn index_candidates(&self, index: &TextIndex) -> Option<BTreeSet<String>> {
        match self {
            Filter::Text { stems, fields } => {
                let mut field_ids = Vec::with_capacity(fields.len());
                for f in fields {
                    field_ids.push(index.field_id(f)?);
                }
                let stems: Vec<&str> = stems.iter().map(String::as_str).collect();
                Some(index.candidates_in_fields(&stems, &field_ids))
            }
            Filter::And(fs) => {
                let mut acc: Option<BTreeSet<String>> = None;
                for f in fs {
                    if let Some(ids) = f.index_candidates(index) {
                        acc = Some(match acc {
                            None => ids,
                            Some(prev) => prev.intersection(&ids).cloned().collect(),
                        });
                    }
                }
                acc
            }
            Filter::Or(fs) => {
                let mut out = BTreeSet::new();
                for f in fs {
                    out.extend(f.index_candidates(index)?);
                }
                Some(out)
            }
            _ => None,
        }
    }
}

fn operand_list(op: &str, operand: &Value) -> Result<Vec<Value>, StoreError> {
    operand
        .as_array()
        .map(<[Value]>::to_vec)
        .ok_or_else(|| StoreError::BadQuery(format!("{op} takes an array")))
}

/// Compare the value at `path` against `probe`. With `array_any`, an array
/// field matches when any element satisfies the predicate (MongoDB
/// equality semantics). Ordering comparisons require same-type operands.
fn cmp_path(
    doc: &Value,
    path: &str,
    probe: &Value,
    pred: impl Fn(Ordering) -> bool,
    array_any: bool,
) -> bool {
    let Some(actual) = doc.path(path) else {
        // Missing field equals null in MongoDB semantics.
        return matches!(probe, Value::Null) && pred(Ordering::Equal);
    };
    let same_type = |a: &Value, b: &Value| {
        matches!(
            (a, b),
            (Value::Num(_), Value::Num(_))
                | (Value::Str(_), Value::Str(_))
                | (Value::Bool(_), Value::Bool(_))
                | (Value::Null, Value::Null)
                | (Value::Array(_), Value::Array(_))
                | (Value::Object(_), Value::Object(_))
        )
    };
    if same_type(actual, probe) && pred(actual.cmp_total(probe)) {
        return true;
    }
    if array_any {
        if let Value::Array(items) = actual {
            return items
                .iter()
                .any(|i| same_type(i, probe) && pred(i.cmp_total(probe)));
        }
    }
    false
}

/// Does any string leaf under `value` satisfy `pred`? Recurses through
/// arrays and objects.
fn any_string_leaf(value: Option<&Value>, pred: &mut impl FnMut(&str) -> bool) -> bool {
    match value {
        Some(Value::Str(s)) => pred(s),
        Some(Value::Array(items)) => items.iter().any(|i| any_string_leaf(Some(i), pred)),
        Some(Value::Object(members)) => {
            members.iter().any(|(_, v)| any_string_leaf(Some(v), pred))
        }
        _ => false,
    }
}

fn text_contains_any(text: &str, stems: &[String]) -> bool {
    tokenize_lower(text)
        .iter()
        .any(|tok| stems.iter().any(|s| s == &stem(tok)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{arr, obj};

    fn doc() -> Value {
        obj! {
            "_id" => "p1",
            "title" => "Mask mandates and transmission",
            "year" => 2021,
            "score" => 0.75,
            "tags" => arr!["masks", "policy"],
            "meta" => obj! { "reviewed" => true },
        }
    }

    fn f(spec: Value) -> Filter {
        Filter::parse(&spec, &["title".to_string()]).unwrap()
    }

    #[test]
    fn implicit_equality() {
        assert!(f(obj! { "year" => 2021 }).matches(&doc()));
        assert!(!f(obj! { "year" => 2020 }).matches(&doc()));
        assert!(f(obj! { "meta.reviewed" => true }).matches(&doc()));
    }

    #[test]
    fn comparison_operators() {
        assert!(f(obj! { "year" => obj!{ "$gt" => 2020 } }).matches(&doc()));
        assert!(f(obj! { "year" => obj!{ "$gte" => 2021 } }).matches(&doc()));
        assert!(!f(obj! { "year" => obj!{ "$lt" => 2021 } }).matches(&doc()));
        assert!(f(obj! { "score" => obj!{ "$lte" => 0.75 } }).matches(&doc()));
        assert!(f(obj! { "year" => obj!{ "$ne" => 1999 } }).matches(&doc()));
    }

    #[test]
    fn range_combines_with_and_semantics() {
        let filter = f(obj! { "year" => obj!{ "$gte" => 2020, "$lt" => 2022 } });
        assert!(filter.matches(&doc()));
        let filter = f(obj! { "year" => obj!{ "$gte" => 2022, "$lt" => 2030 } });
        assert!(!filter.matches(&doc()));
    }

    #[test]
    fn in_and_nin() {
        assert!(f(obj! { "year" => obj!{ "$in" => arr![2020, 2021] } }).matches(&doc()));
        assert!(!f(obj! { "year" => obj!{ "$nin" => arr![2020, 2021] } }).matches(&doc()));
        // Array field: $in matches on any element.
        assert!(f(obj! { "tags" => obj!{ "$in" => arr!["policy"] } }).matches(&doc()));
    }

    #[test]
    fn array_equality_matches_elements() {
        assert!(f(obj! { "tags" => "masks" }).matches(&doc()));
        assert!(!f(obj! { "tags" => "vaccines" }).matches(&doc()));
    }

    #[test]
    fn exists() {
        assert!(f(obj! { "meta" => obj!{ "$exists" => true } }).matches(&doc()));
        assert!(f(obj! { "nope" => obj!{ "$exists" => false } }).matches(&doc()));
        assert!(!f(obj! { "nope" => obj!{ "$exists" => true } }).matches(&doc()));
    }

    #[test]
    fn missing_field_equals_null() {
        assert!(f(obj! { "nope" => Value::Null }).matches(&doc()));
        assert!(!f(obj! { "year" => Value::Null }).matches(&doc()));
    }

    #[test]
    fn regex_with_options() {
        let filter = f(obj! { "title" => obj!{ "$regex" => "mask", "$options" => "i" } });
        assert!(filter.matches(&doc()));
        let filter = f(obj! { "title" => obj!{ "$options" => "i", "$regex" => "MANDATES" } });
        assert!(filter.matches(&doc()), "$options order must not matter");
        let filter = f(obj! { "title" => obj!{ "$regex" => "vaccine" } });
        assert!(!filter.matches(&doc()));
    }

    #[test]
    fn regex_over_array_field() {
        let filter = f(obj! { "tags" => obj!{ "$regex" => "^pol" } });
        assert!(filter.matches(&doc()));
    }

    #[test]
    fn logical_operators() {
        let filter = f(obj! {
            "$or" => arr![ obj!{ "year" => 1999 }, obj!{ "tags" => "masks" } ]
        });
        assert!(filter.matches(&doc()));
        let filter = f(obj! {
            "$and" => arr![ obj!{ "year" => 2021 }, obj!{ "tags" => "masks" } ]
        });
        assert!(filter.matches(&doc()));
        let filter = f(obj! { "$not" => obj!{ "year" => 2021 } });
        assert!(!filter.matches(&doc()));
    }

    #[test]
    fn text_search_stems() {
        // "mandate" must match "mandates" in the title via stemming.
        let filter = f(obj! { "$text" => obj!{ "$search" => "mandate" } });
        assert!(filter.matches(&doc()));
        let filter = f(obj! { "$text" => obj!{ "$search" => "vaccine" } });
        assert!(!filter.matches(&doc()));
    }

    #[test]
    fn exact_id_extraction() {
        assert_eq!(f(obj! { "_id" => "p1" }).exact_id(), Some("p1"));
        let combo = f(obj! { "_id" => "p1", "year" => 2021 });
        assert_eq!(combo.exact_id(), Some("p1"));
        assert_eq!(f(obj! { "year" => 2021 }).exact_id(), None);
    }

    #[test]
    fn bad_specs_error() {
        let tf: Vec<String> = vec![];
        assert!(Filter::parse(&Value::int(3), &tf).is_err());
        assert!(Filter::parse(&obj! { "$bogus" => 1 }, &tf).is_err());
        assert!(Filter::parse(&obj! { "f" => obj!{ "$in" => 3 } }, &tf).is_err());
        assert!(Filter::parse(&obj! { "f" => obj!{ "$exists" => "yes" } }, &tf).is_err());
        assert!(Filter::parse(&obj! { "f" => obj!{ "$regex" => "(" } }, &tf).is_err());
        assert!(Filter::parse(&obj! { "$text" => obj!{} }, &tf).is_err());
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(f(obj! {}).matches(&doc()));
        assert!(matches!(f(obj! {}), Filter::True));
    }

    #[test]
    fn type_mismatch_never_orders() {
        // year > "abc" must be false, not a cross-type comparison.
        assert!(!f(obj! { "year" => obj!{ "$gt" => "abc" } }).matches(&doc()));
    }

    #[test]
    fn text_stems_surface_for_index_pruning() {
        let filter = f(obj! { "$text" => obj!{ "$search" => "mask mandates" } });
        let stems = filter.text_stems().unwrap();
        assert!(stems.contains(&"mask"));
        let plain = f(obj! { "year" => 2021 });
        assert!(plain.text_stems().is_none());
    }

    #[test]
    fn index_candidates_algebra() {
        let idx = TextIndex::new(vec!["title".into(), "abstract".into()]);
        idx.add("a", &obj! { "title" => "mask mandates", "abstract" => "efficacy" });
        idx.add("b", &obj! { "title" => "vaccine trial", "abstract" => "mask use" });
        idx.add("c", &obj! { "title" => "ventilators" });

        let title_mask = Filter::text("mask", vec!["title".into()]);
        let any_mask = Filter::text("mask", vec!["title".into(), "abstract".into()]);
        let title_vaccine = Filter::text("vaccine", vec!["title".into()]);

        // $text scoped to indexed fields resolves exactly.
        let ids = title_mask.index_candidates(&idx).unwrap();
        assert!(ids.contains("a") && !ids.contains("b"));
        assert_eq!(any_mask.index_candidates(&idx).unwrap().len(), 2);

        // A queried field outside the index makes the filter unboundable.
        let unindexed = Filter::text("mask", vec!["body".into()]);
        assert!(unindexed.index_candidates(&idx).is_none());

        // $and intersects boundable branches and ignores the rest.
        let and = Filter::And(vec![
            any_mask.clone(),
            title_vaccine.clone(),
            Filter::Gte("year".into(), Value::int(2020)),
        ]);
        let ids = and.index_candidates(&idx).unwrap();
        assert_eq!(ids.iter().collect::<Vec<_>>(), ["b"]);

        // $or unions only when every branch is boundable.
        let or = Filter::Or(vec![title_mask.clone(), title_vaccine]);
        assert_eq!(or.index_candidates(&idx).unwrap().len(), 2);
        let or_open = Filter::Or(vec![title_mask, Filter::Gte("year".into(), Value::int(0))]);
        assert!(or_open.index_candidates(&idx).is_none());

        // Filters with no text component can't be bounded at all.
        assert!(Filter::True.index_candidates(&idx).is_none());
    }
}
