//! A persistent, shared scoring pool: fan shard-parallel work out to
//! long-lived worker threads instead of spawning a thread per shard per
//! query.
//!
//! Before this module, `Collection::scored_top_k` and `parallel_scan`
//! used `std::thread::scope`, paying one `clone()`d OS thread per shard
//! on *every* query — invisible at the bench's single-query cadence,
//! ruinous under real concurrency where thread churn competes with the
//! queries themselves for the scheduler. The pool keeps a fixed set of
//! workers (sized to cores) alive for the process lifetime; a query
//! under load costs zero thread spawns end-to-end.
//!
//! The API mirrors `std::thread::scope`: [`ScorePool::scope`] hands out
//! a [`Scope`] whose `spawn` accepts closures borrowing from the
//! caller's stack, and does not return until every spawned task has
//! finished — that blocking is what makes the lifetime erasure inside
//! sound. While waiting, the *calling* thread also executes queued
//! tasks, so a one-core machine (or a pool busy with another query's
//! scope) still makes progress instead of idling on a condvar.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased unit of work. Tasks are `'static` from the queue's
/// point of view; [`Scope`] guarantees the borrows they capture outlive
/// their execution by blocking until the scope drains.
type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    /// Signalled when a task is queued (workers park here).
    ready: Condvar,
    shutdown: AtomicBool,
    /// OS threads ever created by this pool — the "zero spawns per
    /// query" assertion reads this before and after a query burst.
    threads_spawned: AtomicU64,
    /// Tasks completed (by workers or by helping callers).
    tasks_executed: AtomicU64,
}

/// A fixed-size pool of persistent scoring workers. Cloneable by `Arc`;
/// dropping the last handle shuts the workers down.
pub struct ScorePool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ScorePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScorePool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ScorePool {
    /// A pool of `threads` persistent workers (at least one).
    pub fn new(threads: usize) -> ScorePool {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            threads_spawned: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                shared.threads_spawned.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("covidkg-score-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scoring worker")
            })
            .collect();
        ScorePool {
            shared,
            threads,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide shared pool, created on first use and sized to
    /// the machine's cores. Collections without an explicitly injected
    /// handle score through this one, so the zero-spawn property holds
    /// even for ad-hoc `Collection::new` users.
    pub fn global() -> &'static Arc<ScorePool> {
        static GLOBAL: OnceLock<Arc<ScorePool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get);
            Arc::new(ScorePool::new(cores))
        })
    }

    /// Worker count the pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total OS threads this pool has ever spawned. Constant after
    /// construction — that constancy *is* the zero-spawn guarantee.
    pub fn threads_spawned(&self) -> u64 {
        self.shared.threads_spawned.load(Ordering::Relaxed)
    }

    /// Tasks completed since construction (workers + helping callers).
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing tasks onto the
    /// pool. Returns only after every spawned task has finished; if any
    /// task panicked, the panic is propagated to the caller here. A
    /// panic in `f` itself also waits for the scope to drain before
    /// unwinding — spawned tasks borrow from the caller's frame, so it
    /// must stay alive until they are done (as `std::thread::scope`
    /// guarantees).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0usize),
            drained: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
            _scope: PhantomData,
        };
        // SOUNDNESS: `f` may panic *after* spawning tasks that borrow
        // from the caller's stack. The drain loop below must still run
        // before the unwind continues past this frame, or workers would
        // execute tasks holding dangling references. Catch the panic,
        // drain, then resume it.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        // Help drain the queue while our tasks are outstanding: the
        // caller may execute tasks from *any* scope here — executing a
        // stranger's task while waiting is harmless and keeps one-core
        // machines from serializing on a single parked worker.
        loop {
            if *state.pending.lock().unwrap_or_else(|e| e.into_inner()) == 0 {
                break;
            }
            let task = {
                let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                q.pop_front()
            };
            match task {
                Some(task) => {
                    run_task(&self.shared, task);
                }
                None => {
                    let guard = state.pending.lock().unwrap_or_else(|e| e.into_inner());
                    if *guard == 0 {
                        break;
                    }
                    // Tasks may be mid-execution on workers: wait for
                    // the last completion to signal.
                    let _unused = state
                        .drained
                        .wait_timeout(guard, std::time::Duration::from_millis(10))
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        let out = match out {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        if state.panicked.load(Ordering::Acquire) {
            panic!("scoring worker panicked");
        }
        out
    }
}

impl Drop for ScorePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = q.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(task) => run_task(shared, task),
            None => return,
        }
    }
}

/// Execute one queued task (all bookkeeping — the executed counter and
/// the scope's pending count — lives inside the task's wrapper,
/// installed by [`Scope::spawn`], so both are settled before the scope
/// can observe completion).
fn run_task(_shared: &PoolShared, task: Task) {
    task();
}

struct ScopeState {
    pending: Mutex<usize>,
    drained: Condvar,
    panicked: AtomicBool,
}

/// A spawning handle tied to one [`ScorePool::scope`] call. `'env` is
/// the caller's environment: spawned closures may borrow from it
/// because the scope cannot return before they finish.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'scope ScorePool,
    state: Arc<ScopeState>,
    _env: PhantomData<&'env mut &'env ()>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue `f` onto the pool. Panics inside `f` are caught, recorded,
    /// and re-raised from [`ScorePool::scope`] after the scope drains.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        {
            let mut pending = self
                .state
                .pending
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *pending += 1;
        }
        let state = Arc::clone(&self.state);
        let pool_shared = Arc::clone(&self.pool.shared);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            // Count before releasing the scope: a caller reading the
            // executed counter right after `scope` returns must see
            // every one of its tasks included.
            pool_shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
            let mut pending = state.pending.lock().unwrap_or_else(|e| e.into_inner());
            *pending -= 1;
            if *pending == 0 {
                state.drained.notify_all();
            }
        });
        // SAFETY: the task's borrows live for 'scope ⊇ this scope call;
        // `ScorePool::scope` blocks until `pending` returns to zero, so
        // the closure (and everything it borrows) is gone before the
        // borrowed environment can be. This is the same contract
        // `std::thread::scope` enforces, applied to pooled threads.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped)
        };
        let mut q = self
            .pool
            .shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        q.push_back(task);
        self.pool.shared.ready.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_tasks_borrow_and_join() {
        let pool = ScorePool::new(3);
        let inputs: Vec<u64> = (0..64).collect();
        let mut outputs: Vec<u64> = vec![0; inputs.len()];
        pool.scope(|s| {
            for (out, inp) in outputs.iter_mut().zip(&inputs) {
                s.spawn(move || *out = inp * 2);
            }
        });
        assert!(outputs.iter().zip(&inputs).all(|(o, i)| *o == i * 2));
        assert_eq!(pool.tasks_executed(), 64);
    }

    #[test]
    fn no_threads_spawned_after_construction() {
        let pool = ScorePool::new(2);
        assert_eq!(pool.threads_spawned(), 2);
        for round in 0..50u64 {
            let mut sums = [0u64; 4];
            pool.scope(|s| {
                for (i, slot) in sums.iter_mut().enumerate() {
                    s.spawn(move || *slot = round + i as u64);
                }
            });
            assert_eq!(pool.threads_spawned(), 2, "round {round} spawned threads");
        }
        assert_eq!(pool.tasks_executed(), 200);
    }

    #[test]
    fn nested_scopes_from_many_callers_make_progress() {
        let pool = Arc::new(ScorePool::new(1));
        std::thread::scope(|ts| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                ts.spawn(move || {
                    for _ in 0..20 {
                        let mut acc = [0u32; 3];
                        pool.scope(|s| {
                            for slot in acc.iter_mut() {
                                s.spawn(move || *slot = 7);
                            }
                        });
                        assert_eq!(acc, [7, 7, 7]);
                    }
                });
            }
        });
        assert_eq!(pool.threads_spawned(), 1);
    }

    #[test]
    fn panics_propagate_after_drain() {
        let pool = ScorePool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                s.spawn(|| {});
            });
        }));
        assert!(result.is_err(), "scope must re-raise task panics");
        // The pool survives the panic and keeps executing.
        let mut x = 0u8;
        pool.scope(|s| s.spawn(|| x = 9));
        assert_eq!(x, 9);
    }

    #[test]
    fn caller_panic_drains_spawned_tasks_before_unwinding() {
        let pool = ScorePool::new(2);
        // Spawned tasks borrow `ran` from this frame; if the scope
        // unwound without draining, they would run against a freed
        // stack (UB). With the guard, every task must have finished by
        // the time the panic escapes `scope`.
        let ran: Vec<AtomicBool> = (0..16).map(|_| AtomicBool::new(false)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                for flag in &ran {
                    s.spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        flag.store(true, Ordering::Release);
                    });
                }
                panic!("caller boom");
            });
        }));
        assert!(result.is_err(), "caller panic must propagate");
        assert!(
            ran.iter().all(|f| f.load(Ordering::Acquire)),
            "scope unwound before draining its spawned tasks"
        );
        // The pool is unharmed and keeps executing.
        let mut x = 0u8;
        pool.scope(|s| s.spawn(|| x = 5));
        assert_eq!(x, 5);
    }

    #[test]
    fn global_pool_is_shared_and_stable() {
        let a = ScorePool::global();
        let b = ScorePool::global();
        assert!(Arc::ptr_eq(a, b));
        let before = a.threads_spawned();
        a.scope(|s| s.spawn(|| {}));
        assert_eq!(a.threads_spawned(), before);
    }
}
