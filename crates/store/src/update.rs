//! MongoDB-style partial update documents.
//!
//! The COVIDKG back-end continuously *enriches* stored publications: the
//! classifiers run "non-stop, classifying new incoming publications" (§2)
//! and write their outputs back onto the documents. [`UpdateSpec`] parses
//! the `{"$set": …, "$inc": …}` wire form and applies it in place;
//! [`crate::Collection::update_spec`] runs one against a stored document
//! with full re-indexing.

use crate::error::StoreError;
use covidkg_json::Value;

/// One update operation.
#[derive(Debug, Clone, PartialEq)]
enum UpdateOp {
    /// `$set` — write a value at a path (creating objects on the way).
    Set(String, Value),
    /// `$unset` — remove a path.
    Unset(String),
    /// `$inc` — add a number to a numeric (or missing ⇒ 0) field.
    Inc(String, f64),
    /// `$push` — append to an array (created if missing).
    Push(String, Value),
    /// `$addToSet` — append if not already present.
    AddToSet(String, Value),
    /// `$pull` — remove all array elements equal to the value.
    Pull(String, Value),
}

/// A parsed update document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateSpec {
    ops: Vec<UpdateOp>,
}

impl UpdateSpec {
    /// Parse `{"$set": {...}, "$inc": {...}, …}`.
    pub fn parse(spec: &Value) -> Result<UpdateSpec, StoreError> {
        let members = spec
            .as_object()
            .ok_or_else(|| StoreError::BadQuery("update must be an object".into()))?;
        let mut ops = Vec::new();
        for (op, body) in members {
            let fields = body
                .as_object()
                .ok_or_else(|| StoreError::BadQuery(format!("{op} takes an object")))?;
            for (path, val) in fields {
                if path == "_id" {
                    return Err(StoreError::BadQuery("_id is immutable".into()));
                }
                let parsed = match op.as_str() {
                    "$set" => UpdateOp::Set(path.clone(), val.clone()),
                    "$unset" => UpdateOp::Unset(path.clone()),
                    "$inc" => UpdateOp::Inc(
                        path.clone(),
                        val.as_f64().ok_or_else(|| {
                            StoreError::BadQuery("$inc takes numbers".into())
                        })?,
                    ),
                    "$push" => UpdateOp::Push(path.clone(), val.clone()),
                    "$addToSet" => UpdateOp::AddToSet(path.clone(), val.clone()),
                    "$pull" => UpdateOp::Pull(path.clone(), val.clone()),
                    other => {
                        return Err(StoreError::BadQuery(format!(
                            "unknown update operator {other:?}"
                        )))
                    }
                };
                ops.push(parsed);
            }
        }
        if ops.is_empty() {
            return Err(StoreError::BadQuery("empty update".into()));
        }
        Ok(UpdateSpec { ops })
    }

    /// Apply to a document in place. Operator errors (e.g. `$inc` on a
    /// string) are reported without a partial-application guarantee —
    /// callers pass a clone (as [`crate::Collection::update_spec`] does).
    pub fn apply(&self, doc: &mut Value) -> Result<(), StoreError> {
        for op in &self.ops {
            match op {
                UpdateOp::Set(path, val) => {
                    if !doc.set_path(path, val.clone()) {
                        return Err(StoreError::BadQuery(format!(
                            "$set cannot reach path {path:?}"
                        )));
                    }
                }
                UpdateOp::Unset(path) => {
                    doc.remove_path(path);
                }
                UpdateOp::Inc(path, delta) => {
                    let current = match doc.path(path) {
                        None => 0.0,
                        Some(v) => v.as_f64().ok_or_else(|| {
                            StoreError::BadQuery(format!("$inc target {path:?} is not numeric"))
                        })?,
                    };
                    let next = current + delta;
                    let next = if next.fract() == 0.0 && next.abs() < 9.0e15 {
                        Value::int(next as i64)
                    } else {
                        Value::float(next)
                    };
                    if !doc.set_path(path, next) {
                        return Err(StoreError::BadQuery(format!(
                            "$inc cannot reach path {path:?}"
                        )));
                    }
                }
                UpdateOp::Push(path, val) | UpdateOp::AddToSet(path, val) => {
                    let dedupe = matches!(op, UpdateOp::AddToSet(_, _));
                    match doc.path_mut(path) {
                        Some(Value::Array(items)) => {
                            if !(dedupe && items.contains(val)) {
                                items.push(val.clone());
                            }
                        }
                        Some(_) => {
                            return Err(StoreError::BadQuery(format!(
                                "$push target {path:?} is not an array"
                            )))
                        }
                        None => {
                            if !doc.set_path(path, Value::Array(vec![val.clone()])) {
                                return Err(StoreError::BadQuery(format!(
                                    "$push cannot reach path {path:?}"
                                )));
                            }
                        }
                    }
                }
                UpdateOp::Pull(path, val) => {
                    if let Some(Value::Array(items)) = doc.path_mut(path) {
                        items.retain(|i| i != val);
                    }
                }
            }
        }
        Ok(())
    }
}

impl crate::Collection {
    /// Apply a MongoDB-style update document to one stored document,
    /// re-indexing afterwards. The update is atomic per document: on an
    /// operator error the stored document is unchanged.
    pub fn update_spec(&self, id: &str, spec: &Value) -> Result<(), StoreError> {
        let update = UpdateSpec::parse(spec)?;
        let Some(mut doc) = self.get(id) else {
            return Err(StoreError::NotFound(id.to_string()));
        };
        update.apply(&mut doc)?;
        self.replace(id, doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Collection, CollectionConfig, Filter};
    use covidkg_json::{arr, obj};

    #[test]
    fn set_unset_inc() {
        let spec = UpdateSpec::parse(&obj! {
            "$set" => obj!{ "meta.reviewed" => true, "score" => 0.5 },
            "$unset" => obj!{ "draft" => 1 },
            "$inc" => obj!{ "cites" => 2, "new_counter" => 1 },
        })
        .unwrap();
        let mut doc = obj! { "_id" => "a", "draft" => true, "cites" => 10 };
        spec.apply(&mut doc).unwrap();
        assert_eq!(doc.path("meta.reviewed").unwrap().as_bool(), Some(true));
        assert_eq!(doc.path("score").unwrap().as_f64(), Some(0.5));
        assert!(doc.path("draft").is_none());
        assert_eq!(doc.path("cites").unwrap().as_i64(), Some(12));
        assert_eq!(doc.path("new_counter").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn push_add_to_set_pull() {
        let mut doc = obj! { "_id" => "a", "tags" => arr!["x"] };
        UpdateSpec::parse(&obj! { "$push" => obj!{ "tags" => "y", "fresh" => 1 } })
            .unwrap()
            .apply(&mut doc)
            .unwrap();
        assert_eq!(doc.path("tags").unwrap(), &arr!["x", "y"]);
        assert_eq!(doc.path("fresh").unwrap(), &arr![1]);
        // addToSet dedupes; push does not.
        UpdateSpec::parse(&obj! { "$addToSet" => obj!{ "tags" => "y" } })
            .unwrap()
            .apply(&mut doc)
            .unwrap();
        assert_eq!(doc.path("tags").unwrap().as_array().unwrap().len(), 2);
        UpdateSpec::parse(&obj! { "$pull" => obj!{ "tags" => "x" } })
            .unwrap()
            .apply(&mut doc)
            .unwrap();
        assert_eq!(doc.path("tags").unwrap(), &arr!["y"]);
    }

    #[test]
    fn errors_are_rejected() {
        assert!(UpdateSpec::parse(&obj! {}).is_err());
        assert!(UpdateSpec::parse(&Value::int(1)).is_err());
        assert!(UpdateSpec::parse(&obj! { "$bogus" => obj!{ "a" => 1 } }).is_err());
        assert!(UpdateSpec::parse(&obj! { "$set" => obj!{ "_id" => "nope" } }).is_err());
        assert!(UpdateSpec::parse(&obj! { "$inc" => obj!{ "a" => "NaN" } }).is_err());
        // Type errors at apply time.
        let mut doc = obj! { "s" => "text" };
        let inc = UpdateSpec::parse(&obj! { "$inc" => obj!{ "s" => 1 } }).unwrap();
        assert!(inc.apply(&mut doc).is_err());
        let push = UpdateSpec::parse(&obj! { "$push" => obj!{ "s" => 1 } }).unwrap();
        assert!(push.apply(&mut doc).is_err());
    }

    #[test]
    fn collection_update_spec_reindexes() {
        let c = Collection::new(
            CollectionConfig::new("pubs").with_text_fields(["title"]),
        );
        c.insert(obj! { "_id" => "a", "title" => "masks", "cites" => 1 }).unwrap();
        c.update_spec(
            "a",
            &obj! {
                "$set" => obj!{ "title" => "ventilators" },
                "$inc" => obj!{ "cites" => 4 },
            },
        )
        .unwrap();
        let doc = c.get("a").unwrap();
        assert_eq!(doc.path("cites").unwrap().as_i64(), Some(5));
        // Text index follows the $set.
        assert!(c.find(&Filter::text("masks", vec!["title".into()])).is_empty());
        assert_eq!(c.find(&Filter::text("ventilator", vec!["title".into()])).len(), 1);
        // Failed op leaves the document unchanged.
        let err = c.update_spec("a", &obj! { "$inc" => obj!{ "title" => 1 } });
        assert!(err.is_err());
        assert_eq!(c.get("a").unwrap().path("cites").unwrap().as_i64(), Some(5));
        // Unknown id.
        assert!(matches!(
            c.update_spec("zz", &obj! { "$set" => obj!{ "a" => 1 } }),
            Err(StoreError::NotFound(_))
        ));
    }
}
