//! The released-model registry (№11/13 in Fig 1).
//!
//! "COVIDKG.ORG also releases hundreds of pre-trained models and
//! embeddings as an API for reuse by data scientists and developers" and
//! stores them alongside the data: "Our MongoDB sharded cluster storing
//! data and all trained Deep-learning models and embeddings…" (§2). The
//! registry keeps serialized models as documents in a `models` collection
//! with name/kind/version metadata.

use covidkg_json::{obj, Value};
use covidkg_ml::Word2Vec;
use covidkg_store::{Collection, CollectionConfig, StoreError};
use std::sync::Arc;

/// Registry over a `models` collection.
pub struct ModelRegistry {
    collection: Arc<Collection>,
}

/// Metadata for one released artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Kind tag (`embeddings`, `svm`, `bigru`, …).
    pub kind: String,
    /// Monotonic version (re-publishing bumps it).
    pub version: i64,
    /// Serialized payload size in bytes.
    pub bytes: usize,
}

impl ModelRegistry {
    /// Registry backed by a fresh in-memory collection.
    pub fn in_memory() -> ModelRegistry {
        ModelRegistry {
            collection: Arc::new(Collection::new(
                CollectionConfig::new("models").with_shards(2),
            )),
        }
    }

    /// Registry over an existing collection.
    pub fn over(collection: Arc<Collection>) -> ModelRegistry {
        ModelRegistry { collection }
    }

    /// The backing collection (for stats).
    pub fn collection(&self) -> &Arc<Collection> {
        &self.collection
    }

    /// Publish (or re-publish, bumping the version) a serialized model.
    pub fn publish(
        &self,
        name: &str,
        kind: &str,
        payload: String,
    ) -> Result<ModelInfo, StoreError> {
        let id = format!("model:{name}");
        let bytes = payload.len();
        let version = match self.collection.get(&id) {
            Some(existing) => existing.path("version").and_then(Value::as_i64).unwrap_or(0) + 1,
            None => 1,
        };
        let doc = obj! {
            "_id" => id.clone(),
            "name" => name,
            "kind" => kind,
            "version" => version,
            "payload" => payload,
        };
        if version == 1 {
            self.collection.insert(doc)?;
        } else {
            self.collection.replace(&id, doc)?;
        }
        Ok(ModelInfo {
            name: name.to_string(),
            kind: kind.to_string(),
            version,
            bytes,
        })
    }

    /// Fetch a model's payload.
    pub fn fetch(&self, name: &str) -> Option<String> {
        self.collection
            .get(&format!("model:{name}"))
            .and_then(|d| d.path("payload").and_then(Value::as_str).map(str::to_string))
    }

    /// Publish Word2Vec embeddings.
    pub fn publish_embeddings(&self, name: &str, model: &Word2Vec) -> Result<ModelInfo, StoreError> {
        self.publish(name, "embeddings", model.save_text())
    }

    /// Fetch Word2Vec embeddings.
    pub fn fetch_embeddings(&self, name: &str) -> Option<Word2Vec> {
        Word2Vec::load_text(&self.fetch(name)?)
    }

    /// Fetch a serialized SVM classifier.
    pub fn fetch_svm(&self, name: &str) -> Option<covidkg_ml::Svm> {
        covidkg_ml::Svm::load_text(&self.fetch(name)?)
    }

    /// List released artifacts.
    pub fn list(&self) -> Vec<ModelInfo> {
        let mut out: Vec<ModelInfo> = self
            .collection
            .scan_all()
            .into_iter()
            .filter_map(|d| {
                Some(ModelInfo {
                    name: d.path("name")?.as_str()?.to_string(),
                    kind: d.path("kind")?.as_str()?.to_string(),
                    version: d.path("version")?.as_i64()?,
                    bytes: d.path("payload")?.as_str()?.len(),
                })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_ml::{Word2VecConfig};

    #[test]
    fn publish_fetch_round_trip() {
        let reg = ModelRegistry::in_memory();
        let info = reg.publish("ranker-v1", "weights", "{\"w\": 1}".into()).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(reg.fetch("ranker-v1").unwrap(), "{\"w\": 1}");
        assert!(reg.fetch("missing").is_none());
    }

    #[test]
    fn republish_bumps_version() {
        let reg = ModelRegistry::in_memory();
        reg.publish("m", "svm", "v1".into()).unwrap();
        let info = reg.publish("m", "svm", "v2".into()).unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(reg.fetch("m").unwrap(), "v2");
        assert_eq!(reg.list().len(), 1);
    }

    #[test]
    fn embeddings_round_trip() {
        let sents = vec![vec!["covid".to_string(), "vaccine".to_string()]; 5];
        let w2v = Word2Vec::train(
            &sents,
            &Word2VecConfig {
                dims: 8,
                epochs: 1,
                ..Word2VecConfig::default()
            },
        );
        let reg = ModelRegistry::in_memory();
        reg.publish_embeddings("cord19-w2v", &w2v).unwrap();
        let back = reg.fetch_embeddings("cord19-w2v").unwrap();
        assert_eq!(back.vocab_size(), w2v.vocab_size());
        assert_eq!(back.embed("covid"), w2v.embed("covid"));
    }

    #[test]
    fn list_reports_metadata() {
        let reg = ModelRegistry::in_memory();
        reg.publish("a", "svm", "xx".into()).unwrap();
        reg.publish("b", "embeddings", "yyyy".into()).unwrap();
        let list = reg.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].name, "a");
        assert_eq!(list[1].bytes, 4);
    }
}
