//! Bias interrogation of the training/serving corpus.
//!
//! The paper's title promises a KG "Constructed and Interrogated for Bias
//! using Deep-Learning"; the body grounds this in curation — the KG "does
//! not suffer from any bias or misinformation" because it is built only
//! from vetted sources (§1), with noise words and spam cut from the
//! feature space (§3.2 / [78]). This module makes the interrogation an
//! explicit, runnable artifact: it clusters the corpus with the learned
//! embeddings (the Deep-Learning part) and reports where the *data* is
//! skewed, so a curator can see what the KG will over- and under-represent:
//!
//! * topical coverage imbalance (cluster mass Gini coefficient);
//! * venue concentration per topic cluster (a topic sourced from one
//!   venue inherits that venue's editorial bias);
//! * temporal staleness (share of recent publications — the paper's core
//!   complaint about existing KGs is that they "are getting stale").

use covidkg_json::Value;
use covidkg_ml::{kmeans, Word2Vec};
use covidkg_text::tokenize_lower;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One topic cluster's bias indicators.
#[derive(Debug, Clone)]
pub struct ClusterBias {
    /// Cluster ordinal.
    pub cluster: usize,
    /// Publications assigned.
    pub docs: usize,
    /// Trust-weighted cluster mass: the sum over members of their
    /// source-credibility weight (equals `docs` under unit weights).
    pub trust_mass: f64,
    /// Most frequent venue and its share of the cluster.
    pub dominant_venue: Option<(String, f64)>,
    /// Top terms characterizing the cluster (by frequency).
    pub top_terms: Vec<String>,
}

/// The corpus bias report.
#[derive(Debug, Clone)]
pub struct BiasReport {
    /// Per-cluster indicators.
    pub clusters: Vec<ClusterBias>,
    /// Gini coefficient over cluster sizes (0 = perfectly even coverage,
    /// → 1 = all mass in one topic).
    pub coverage_gini: f64,
    /// Gini coefficient over *trust-weighted* cluster masses: coverage
    /// as the reader experiences it once low-credibility sources are
    /// discounted. A gap above [`BiasReport::coverage_gini`] means some
    /// topics rest on weaker sources than their raw document count
    /// suggests.
    pub trust_gini: f64,
    /// Clusters where one venue exceeds the concentration threshold.
    pub venue_flags: Vec<usize>,
    /// Clusters whose mean per-document trust falls below half the
    /// corpus mean — topics the KG covers, but from weak provenance.
    pub low_trust_flags: Vec<usize>,
    /// Fraction of publications dated in the most recent year present.
    pub recent_fraction: f64,
}

/// Venue share above which a cluster is flagged as venue-concentrated.
const VENUE_CONCENTRATION: f64 = 0.5;

/// Mean-trust ratio below which a cluster is flagged as low-provenance.
const LOW_TRUST_RATIO: f64 = 0.5;

/// Interrogate stored publication documents. `k` is the number of topic
/// clusters to probe (the system uses its topic count). Every document
/// carries unit weight — the pre-trust-era report, kept as the
/// equivalence baseline for [`interrogate_weighted`].
pub fn interrogate(docs: &[Value], embeddings: &Word2Vec, k: usize) -> BiasReport {
    interrogate_weighted(docs, embeddings, k, |_| 1.0)
}

/// [`interrogate`] with per-document credibility weights (the trust
/// store's venue priors): cluster masses, the trust Gini and the
/// low-trust flags are computed over `weight(paper_id)` instead of raw
/// counts, so a topic backed by many weak sources reads as thinner than
/// one backed by few strong ones.
pub fn interrogate_weighted(
    docs: &[Value],
    embeddings: &Word2Vec,
    k: usize,
    weight: impl Fn(&str) -> f64,
) -> BiasReport {
    if docs.is_empty() || k == 0 {
        return BiasReport {
            clusters: Vec::new(),
            coverage_gini: 0.0,
            trust_gini: 0.0,
            venue_flags: Vec::new(),
            low_trust_flags: Vec::new(),
            recent_fraction: 0.0,
        };
    }
    // Deep-learning step: embed each abstract and cluster.
    let points: Vec<Vec<f32>> = docs
        .iter()
        .map(|d| {
            let text = d.path("abstract").and_then(Value::as_str).unwrap_or("");
            embeddings.embed_phrase(&tokenize_lower(text))
        })
        .collect();
    let result = kmeans(&points, k, 30, 71);

    let k = result.centroids.len();
    let mut cluster_docs: Vec<Vec<&Value>> = vec![Vec::new(); k];
    for (doc, &c) in docs.iter().zip(&result.assignments) {
        cluster_docs[c].push(doc);
    }

    let mut clusters = Vec::with_capacity(k);
    let mut venue_flags = Vec::new();
    for (c, members) in cluster_docs.iter().enumerate() {
        let trust_mass: f64 = members
            .iter()
            .map(|d| weight(d.get("_id").and_then(Value::as_str).unwrap_or_default()))
            .sum();
        // Venue concentration.
        let mut venues: HashMap<&str, usize> = HashMap::new();
        for d in members {
            if let Some(v) = d.path("venue").and_then(Value::as_str) {
                *venues.entry(v).or_insert(0) += 1;
            }
        }
        let dominant_venue = venues
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|(v, &n)| (v.to_string(), n as f64 / members.len().max(1) as f64));
        if let Some((_, share)) = &dominant_venue {
            if *share > VENUE_CONCENTRATION && members.len() >= 3 {
                venue_flags.push(c);
            }
        }
        // Characteristic terms.
        let mut tf: HashMap<String, usize> = HashMap::new();
        for d in members {
            if let Some(t) = d.path("title").and_then(Value::as_str) {
                for tok in tokenize_lower(t) {
                    if !covidkg_text::is_stopword(&tok) && tok.len() > 3 {
                        *tf.entry(tok).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut terms: Vec<(String, usize)> = tf.into_iter().collect();
        terms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        clusters.push(ClusterBias {
            cluster: c,
            docs: members.len(),
            trust_mass,
            dominant_venue,
            top_terms: terms.into_iter().take(4).map(|(t, _)| t).collect(),
        });
    }

    // Coverage Gini over cluster sizes, and over trust-weighted masses.
    let sizes: Vec<f64> = clusters.iter().map(|c| c.docs as f64).collect();
    let coverage_gini = gini(&sizes);
    let masses: Vec<f64> = clusters.iter().map(|c| c.trust_mass).collect();
    let trust_gini = gini(&masses);

    // Low-provenance topics: mean per-document trust well below the
    // corpus mean (only meaningful for clusters with members).
    let total_mass: f64 = masses.iter().sum();
    let corpus_mean = total_mass / docs.len() as f64;
    let low_trust_flags: Vec<usize> = clusters
        .iter()
        .filter(|c| c.docs >= 3 && c.trust_mass / (c.docs as f64) < LOW_TRUST_RATIO * corpus_mean)
        .map(|c| c.cluster)
        .collect();

    // Temporal freshness: share of docs in the latest year observed.
    let years: Vec<i32> = docs
        .iter()
        .filter_map(|d| {
            d.path("date")
                .and_then(Value::as_str)
                .and_then(|s| s.get(..4))
                .and_then(|y| y.parse().ok())
        })
        .collect();
    let recent_fraction = match years.iter().max() {
        Some(&latest) => {
            years.iter().filter(|&&y| y == latest).count() as f64 / years.len() as f64
        }
        None => 0.0,
    };

    BiasReport {
        clusters,
        coverage_gini,
        trust_gini,
        venue_flags,
        low_trust_flags,
        recent_fraction,
    }
}

/// Gini coefficient of a non-negative distribution.
fn gini(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cum: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i + 1) as f64 - n as f64 - 1.0) * x)
        .sum();
    cum / (n as f64 * total)
}

impl BiasReport {
    /// JSON form — the single serialization behind the `/bias/report`
    /// wire route and the `covidkg bias` CLI, so both surfaces are
    /// byte-identical by construction.
    pub fn to_json(&self) -> Value {
        let flags = |v: &[usize]| Value::Array(v.iter().map(|&c| Value::int(c as i64)).collect());
        covidkg_json::obj! {
            "coverage_gini" => self.coverage_gini,
            "trust_gini" => self.trust_gini,
            "recent_fraction" => self.recent_fraction,
            "venue_flags" => flags(&self.venue_flags),
            "low_trust_flags" => flags(&self.low_trust_flags),
            "clusters" => Value::Array(
                self.clusters
                    .iter()
                    .map(|c| covidkg_json::obj! {
                        "cluster" => c.cluster as i64,
                        "docs" => c.docs as i64,
                        "trust_mass" => c.trust_mass,
                        "dominant_venue" => match &c.dominant_venue {
                            Some((v, share)) => covidkg_json::obj! {
                                "venue" => v.as_str(),
                                "share" => *share,
                            },
                            None => Value::Null,
                        },
                        "top_terms" => Value::Array(
                            c.top_terms.iter().map(|t| Value::str(t.clone())).collect()
                        ),
                    })
                    .collect(),
            ),
        }
    }

    /// Render the interrogation report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== bias interrogation ============================");
        let _ = writeln!(
            out,
            "topical coverage Gini : {:.3} ({})",
            self.coverage_gini,
            if self.coverage_gini < 0.3 {
                "balanced"
            } else {
                "SKEWED — some topics dominate the KG's inputs"
            }
        );
        let _ = writeln!(
            out,
            "trust-weighted Gini   : {:.3}{}",
            self.trust_gini,
            if self.trust_gini > self.coverage_gini + 0.05 {
                " (skew WORSENS once sources are credibility-weighted)"
            } else {
                ""
            }
        );
        let _ = writeln!(
            out,
            "freshness             : {:.0}% of publications from the latest year",
            self.recent_fraction * 100.0
        );
        if self.venue_flags.is_empty() {
            let _ = writeln!(out, "venue concentration   : no cluster dominated by one venue");
        } else {
            let _ = writeln!(
                out,
                "venue concentration   : {} cluster(s) FLAGGED (>{:.0}% one venue)",
                self.venue_flags.len(),
                VENUE_CONCENTRATION * 100.0
            );
        }
        if self.low_trust_flags.is_empty() {
            let _ = writeln!(out, "provenance strength   : no low-trust cluster");
        } else {
            let _ = writeln!(
                out,
                "provenance strength   : {} cluster(s) LOW-TRUST (mean trust <{:.0}% of corpus mean)",
                self.low_trust_flags.len(),
                LOW_TRUST_RATIO * 100.0
            );
        }
        for c in &self.clusters {
            let venue = c
                .dominant_venue
                .as_ref()
                .map(|(v, s)| format!("{v} ({:.0}%)", s * 100.0))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  cluster {:<2} {:>4} docs  trust {:>6.2}  top venue {:<38} terms: {}",
                c.cluster,
                c.docs,
                c.trust_mass,
                venue,
                c.top_terms.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_corpus::{CorpusGenerator, Publication};
    use covidkg_ml::Word2VecConfig;

    fn setup(n: usize) -> (Vec<Value>, Word2Vec) {
        let pubs = CorpusGenerator::with_size(n, 3).generate();
        let sentences: Vec<Vec<String>> = pubs.iter().map(Publication::all_tokens).collect();
        let w2v = Word2Vec::train(
            &sentences,
            &Word2VecConfig {
                dims: 16,
                epochs: 2,
                ..Word2VecConfig::default()
            },
        );
        (pubs.iter().map(Publication::to_doc).collect(), w2v)
    }

    #[test]
    fn balanced_corpus_has_low_gini() {
        let (docs, w2v) = setup(48);
        let report = interrogate(&docs, &w2v, 12);
        assert_eq!(report.clusters.len(), 12);
        assert!(report.coverage_gini < 0.6, "gini {}", report.coverage_gini);
        assert!(report.recent_fraction > 0.0);
        let total: usize = report.clusters.iter().map(|c| c.docs).sum();
        assert_eq!(total, 48);
    }

    #[test]
    fn skewed_corpus_raises_gini() {
        let (docs, w2v) = setup(48);
        // Duplicate one topic's docs heavily to skew coverage. Identical
        // embeddings land in one cluster, so the duplicated mass
        // concentrates there.
        let mut skewed = docs.clone();
        let mut serial = 0;
        for d in &docs {
            if d.path("_truth.topic_id").and_then(Value::as_i64) == Some(0) {
                for _ in 0..20 {
                    let mut dup = d.clone();
                    dup.insert("_id", format!("dup-{serial}"));
                    serial += 1;
                    skewed.push(dup);
                }
            }
        }
        assert!(serial >= 60, "expected topic-0 docs to duplicate");
        let balanced = interrogate(&docs, &w2v, 12);
        let report = interrogate(&skewed, &w2v, 12);
        // kmeans adds noise to per-cluster masses, so compare against an
        // absolute band rather than the (noisy) balanced value alone.
        assert!(report.coverage_gini > 0.45, "skewed gini {}", report.coverage_gini);
        assert!(balanced.coverage_gini < report.coverage_gini);
    }

    #[test]
    fn unit_weights_reduce_to_the_unweighted_report() {
        let (docs, w2v) = setup(48);
        let report = interrogate(&docs, &w2v, 12);
        for c in &report.clusters {
            assert!((c.trust_mass - c.docs as f64).abs() < 1e-9);
        }
        assert!((report.trust_gini - report.coverage_gini).abs() < 1e-9);
        assert!(report.low_trust_flags.is_empty());
    }

    #[test]
    fn credibility_weights_reshape_cluster_mass() {
        let (docs, w2v) = setup(48);
        // Discount one venue to the floor; clusters holding its papers
        // lose mass while doc counts stay put.
        let victim = docs[0].path("venue").and_then(Value::as_str).unwrap().to_string();
        let weights: HashMap<String, f64> = docs
            .iter()
            .map(|d| {
                let id = d.get("_id").and_then(Value::as_str).unwrap().to_string();
                let v = d.path("venue").and_then(Value::as_str).unwrap();
                (id, if v == victim { 0.05 } else { 1.0 })
            })
            .collect();
        let report = interrogate_weighted(&docs, &w2v, 12, |id| weights[id]);
        let total_docs: usize = report.clusters.iter().map(|c| c.docs).sum();
        let total_mass: f64 = report.clusters.iter().map(|c| c.trust_mass).sum();
        assert!(total_mass < total_docs as f64, "discounted venue must shed mass");
        for c in &report.clusters {
            assert!(c.trust_mass <= c.docs as f64 + 1e-9);
        }
        let json = report.to_json().to_json();
        assert!(json.contains("trust_gini"));
        assert!(json.contains("trust_mass"));
    }

    #[test]
    fn gini_math() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-9);
        // All mass in one bucket of n → (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 12.0]);
        assert!((g - 0.75).abs() < 1e-9, "{g}");
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn render_mentions_flags() {
        let (docs, w2v) = setup(24);
        let report = interrogate(&docs, &w2v, 6);
        let text = report.render();
        assert!(text.contains("bias interrogation"));
        assert!(text.contains("coverage Gini"));
        assert!(text.contains("cluster 0"));
    }

    #[test]
    fn empty_input() {
        let (_, w2v) = setup(4);
        let report = interrogate(&[], &w2v, 5);
        assert!(report.clusters.is_empty());
        assert_eq!(report.coverage_gini, 0.0);
    }
}
