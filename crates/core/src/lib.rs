#![warn(missing_docs)]

//! # covidkg-core
//!
//! The COVIDKG system facade: wires the substrates into the Fig 1
//! architecture and exposes the end-to-end flows the paper describes —
//! ingest (№3), model training (№4), topical clustering (№5), extraction
//! of new findings (№6), meta-profiles (№7), interactive browsing and
//! search (№9–10), the released-model API (№11/13) and expert-reviewed
//! fusion (№14).
//!
//! * [`training`] — building the §3 training sets (SVM feature vectors
//!   over bag-of-words + positional features; BiGRU tuple examples) and
//!   the 10-fold cross-validation harness behind §3.3;
//! * [`registry`] — the pre-trained model/embedding registry, stored as
//!   documents in the backing store ("COVIDKG.ORG also releases hundreds
//!   of pre-trained models and embeddings as an API");
//! * [`bias`] — the title's "Interrogated for Bias" artifact: embedding-
//!   driven clustering of the corpus with coverage/venue/freshness skew
//!   reporting;
//! * [`system`] — [`CovidKg`]: build the whole system from a corpus and
//!   interrogate it (search, KG browsing, meta-profiles, stats).

pub mod bias;
pub mod dense;
pub mod registry;
pub mod system;
pub mod training;

pub use bias::{interrogate, interrogate_weighted, BiasReport};
// KG query-engine surface, re-exported so serving layers can accept
// plans and report profile-store counters without a direct kg dep.
pub use covidkg_kg::materialize::ProfileStoreStats;
pub use covidkg_kg::query::{QueryPlan, QueryResult};
// Trust-store counters, re-exported for the same reason.
pub use covidkg_trust::TrustStoreStats;
pub use dense::{build_ann, doc_embedding, sync_ann};
pub use registry::ModelRegistry;
pub use system::{
    doc_paper_facts, scan_paper_facts, CovidKg, CovidKgConfig, IngestReport, PreparedIngest,
};
pub use training::{
    SvmFeaturizer,
    build_tuple_examples, build_svm_features, kfold_bigru, kfold_svm, CvReport, LabeledRow,
    labeled_rows_from_corpus, labeled_rows_from_wdc,
};
