//! The dense retrieval tier: document embeddings + HNSW index lifecycle.
//!
//! Every publication gets one vector — the average Word2Vec embedding of
//! its title+abstract tokens, the same representation §5's clustering
//! uses — indexed in a `covidkg-ann` HNSW graph keyed by `_id`. The
//! index is built once per system, kept in sync incrementally off the
//! store's mutation log (replaces/deletes) plus the ingest path's
//! new-id list (inserts never bump the mutation epoch), persisted
//! through the model registry, and served by the `semantic`/`hybrid`
//! search modes.

use covidkg_ann::{HnswConfig, HnswIndex};
use covidkg_json::Value;
use covidkg_ml::Word2Vec;
use covidkg_store::Collection;
use covidkg_text::tokenize_lower;

/// The document representation the ANN tier indexes: the mean embedding
/// of the title and abstract tokens (zeros when every token is OOV —
/// such documents are indexed but unreachable by any real query, which
/// is the right failure mode for an empty-text record).
pub fn doc_embedding(doc: &Value, embeddings: &Word2Vec) -> Vec<f32> {
    let title = doc.get("title").and_then(Value::as_str).unwrap_or_default();
    let abstract_text = doc
        .get("abstract")
        .and_then(Value::as_str)
        .unwrap_or_default();
    let mut tokens = tokenize_lower(title);
    tokens.extend(tokenize_lower(abstract_text));
    embeddings.embed_phrase(&tokens)
}

/// Build a fresh index over every stored publication, in `_id` order so
/// the graph is a pure function of the corpus (scan order varies by
/// shard layout; insertion order shapes edges).
pub fn build_ann(
    publications: &Collection,
    embeddings: &Word2Vec,
    config: HnswConfig,
) -> HnswIndex {
    let mut docs: Vec<(String, Vec<f32>)> = publications
        .scan_all()
        .iter()
        .filter_map(|doc| {
            let id = doc.get("_id").and_then(Value::as_str)?.to_string();
            Some((id, doc_embedding(doc, embeddings)))
        })
        .collect();
    docs.sort_by(|a, b| a.0.cmp(&b.0));
    HnswIndex::build(
        embeddings.dims(),
        config,
        docs.iter().map(|(id, v)| (id.as_str(), v.as_slice())),
    )
}

/// Bring `ann` up to date with the collection: re-embed every document
/// the mutation log reports touched since `ann_epoch` (tombstoning ids
/// that vanished), then insert `new_ids` from the ingest path. Falls
/// back to a full rebuild when the bounded log no longer covers the
/// window. Returns the new epoch watermark.
pub fn sync_ann(
    ann: &mut HnswIndex,
    ann_epoch: u64,
    publications: &Collection,
    embeddings: &Word2Vec,
    new_ids: &[String],
) -> u64 {
    let epoch = publications.mutation_epoch();
    if epoch != ann_epoch {
        match publications.touched_since(ann_epoch) {
            Some(touched) => {
                for id in touched {
                    match publications.get(&id) {
                        Some(doc) => ann.insert(&id, &doc_embedding(&doc, embeddings)),
                        None => {
                            ann.remove(&id);
                        }
                    }
                }
            }
            None => {
                *ann = build_ann(publications, embeddings, *ann.config());
                return epoch;
            }
        }
    }
    for id in new_ids {
        if let Some(doc) = publications.get(id) {
            ann.insert(id, &doc_embedding(&doc, embeddings));
        }
    }
    epoch
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::obj;
    use covidkg_ml::Word2VecConfig;
    use covidkg_store::CollectionConfig;

    fn model() -> Word2Vec {
        let sentences: Vec<Vec<String>> = (0..30)
            .map(|i| {
                tokenize_lower(match i % 3 {
                    0 => "masks reduce viral transmission",
                    1 => "vaccines prevent severe outcomes",
                    _ => "ventilators support icu patients",
                })
            })
            .collect();
        Word2Vec::train(
            &sentences,
            &Word2VecConfig {
                dims: 12,
                epochs: 2,
                seed: 5,
                ..Word2VecConfig::default()
            },
        )
    }

    fn doc(id: &str, title: &str) -> Value {
        obj! { "_id" => id, "title" => title, "abstract" => title, "date" => "2021-01" }
    }

    #[test]
    fn build_is_scan_order_independent() {
        let model = model();
        let a = Collection::new(CollectionConfig::new("p").with_shards(1));
        let b = Collection::new(CollectionConfig::new("p").with_shards(7));
        for (coll, order) in [(&a, [0usize, 1, 2, 3]), (&b, [3, 1, 0, 2])] {
            for i in order {
                coll.insert(doc(&format!("p{i}"), "masks reduce transmission"))
                    .unwrap();
            }
        }
        let ia = build_ann(&a, &model, HnswConfig::default());
        let ib = build_ann(&b, &model, HnswConfig::default());
        assert_eq!(ia.save_text(), ib.save_text());
        assert_eq!(ia.len(), 4);
    }

    #[test]
    fn sync_tracks_insert_replace_delete() {
        let model = model();
        let coll = Collection::new(CollectionConfig::new("p").with_shards(2));
        for i in 0..6 {
            coll.insert(doc(&format!("p{i}"), "masks reduce transmission"))
                .unwrap();
        }
        let mut ann = build_ann(&coll, &model, HnswConfig::default());
        let mut epoch = coll.mutation_epoch();
        assert_eq!(ann.len(), 6);

        // Insert (no epoch bump) — carried by new_ids.
        coll.insert(doc("p6", "vaccines prevent outcomes")).unwrap();
        epoch = sync_ann(&mut ann, epoch, &coll, &model, &["p6".to_string()]);
        assert_eq!(ann.len(), 7);
        assert!(ann.contains("p6"));

        // Replace + delete — carried by the mutation log.
        coll.replace("p0", doc("p0", "ventilators support icu")).unwrap();
        coll.delete("p1").unwrap();
        epoch = sync_ann(&mut ann, epoch, &coll, &model, &[]);
        assert_eq!(ann.len(), 6);
        assert!(!ann.contains("p1"));
        assert!(ann.contains("p0"));

        // No-op sync is stable.
        let again = sync_ann(&mut ann, epoch, &coll, &model, &[]);
        assert_eq!(again, epoch);
        assert_eq!(ann.len(), 6);
    }

    #[test]
    fn synced_index_matches_fresh_rebuild_results() {
        let model = model();
        let coll = Collection::new(CollectionConfig::new("p").with_shards(2));
        for i in 0..10 {
            coll.insert(doc(&format!("p{i:02}"), "masks reduce transmission"))
                .unwrap();
        }
        let mut ann = build_ann(&coll, &model, HnswConfig::default());
        let epoch = coll.mutation_epoch();
        coll.replace("p03", doc("p03", "vaccines prevent outcomes"))
            .unwrap();
        coll.delete("p07").unwrap();
        coll.insert(doc("p10", "ventilators support icu")).unwrap();
        sync_ann(&mut ann, epoch, &coll, &model, &["p10".to_string()]);
        let fresh = build_ann(&coll, &model, HnswConfig::default());
        let q = model.embed_phrase(&tokenize_lower("vaccines prevent outcomes"));
        let (synced_hits, _) = ann.search(&q, 5);
        let (fresh_hits, _) = fresh.search(&q, 5);
        let a: Vec<&str> = synced_hits.iter().map(|(id, _)| id.as_str()).collect();
        let b: Vec<&str> = fresh_hits.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(a, b, "incremental sync must agree with a rebuild");
    }
}
