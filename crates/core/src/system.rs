//! [`CovidKg`]: the assembled system (Fig 1).
//!
//! `CovidKg::build` runs the whole construction flow: generate/ingest the
//! corpus into the sharded store (№3), train embeddings and the metadata
//! classifiers (№4), classify every table, cluster topics (№5), extract
//! candidate subtrees (№6), fuse them into the expert-seeded KG with the
//! review queue (№2/№14), build meta-profiles (№7) and publish the
//! trained models (№11/13). The resulting value exposes the search
//! engines (№9/10) and the interactive graph.

use crate::registry::ModelRegistry;
use crate::training::{self, build_tuple_examples, labeled_rows_from_corpus, LabeledRow};
use covidkg_corpus::{CorpusConfig, CorpusGenerator, Publication};
use covidkg_json::Value;
use covidkg_kg::materialize::ProfileStore;
use covidkg_kg::profile::Observation;
use covidkg_kg::query::{QueryPlan, QueryResult};
use covidkg_kg::{
    extract_subtrees, seed_graph, FusionConfig, FusionEngine, FusionStats,
    KnowledgeGraph, MetaProfile, ScriptedExpert,
};
use covidkg_ml::model::{TupleClassifier, TupleClassifierConfig};
use covidkg_ann::{HnswConfig, HnswIndex};
use covidkg_ml::svm::{Svm, SvmConfig};
use covidkg_ml::{kmeans, Word2Vec, Word2VecConfig};
use covidkg_search::{
    dense_search, DenseMode, HybridConfig, RenderCache, SearchEngine, SearchMode, SearchPage,
};
use covidkg_store::{Collection, CollectionConfig, Database, StoreError};
use covidkg_tables::{detect_orientation, parse_tables, row_features, Orientation, Preprocessor};
use covidkg_text::tokenize_lower;
use covidkg_trust::{PaperFacts, TrustStore};
use std::sync::{Arc, Mutex};

/// Capacity of the search render cache (memoized snippets/highlights);
/// entries are small (a title plus a handful of snippet strings), so a few
/// thousand covers many concurrent query working sets.
const RENDER_CACHE_CAP: usize = 4096;

/// Which classifier drives metadata detection during ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifierChoice {
    /// The §3.5 SVM (fast; the default for interactive builds).
    Svm,
    /// The Fig 3 BiGRU ensemble.
    BiGru,
}

impl ClassifierChoice {
    /// Stable name used in persisted config and the model registry.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierChoice::Svm => "svm",
            ClassifierChoice::BiGru => "bigru",
        }
    }

    /// Parse a persisted [`ClassifierChoice::name`].
    pub fn from_name(name: &str) -> Option<ClassifierChoice> {
        match name {
            "svm" => Some(ClassifierChoice::Svm),
            "bigru" => Some(ClassifierChoice::BiGru),
            _ => None,
        }
    }
}

/// System build configuration.
#[derive(Debug, Clone)]
pub struct CovidKgConfig {
    /// Number of synthetic publications to generate.
    pub corpus_size: usize,
    /// Master seed (corpus, folds, model init).
    pub seed: u64,
    /// Store shards for the publications collection.
    pub shards: usize,
    /// Metadata classifier used during ingest.
    pub classifier: ClassifierChoice,
    /// Cap on classifier training rows (SMO is quadratic).
    pub max_training_rows: usize,
    /// Word2Vec embedding dimensionality.
    pub embed_dims: usize,
    /// Ingest worker threads.
    pub ingest_threads: usize,
    /// Data directory for durable storage (None = in-memory). With a
    /// directory set, the publications, released models and the KG
    /// survive restarts and [`CovidKg::reopen`] restores the system
    /// without retraining.
    pub data_dir: Option<String>,
}

impl Default for CovidKgConfig {
    fn default() -> Self {
        CovidKgConfig {
            corpus_size: 120,
            seed: 42,
            shards: 4,
            classifier: ClassifierChoice::Svm,
            max_training_rows: 1200,
            embed_dims: 24,
            ingest_threads: 4,
            data_dir: None,
        }
    }
}

impl CovidKgConfig {
    /// Hand-written JSON encoding (the workspace carries no serde; see
    /// DESIGN.md "Hermetic build"). `data_dir` is deliberately omitted:
    /// a persisted config must describe the system, not where the bytes
    /// currently live.
    pub fn to_json(&self) -> Value {
        covidkg_json::obj! {
            "corpus_size" => self.corpus_size as i64,
            "seed" => Value::int(self.seed as i64),
            "shards" => self.shards as i64,
            "classifier" => self.classifier.name(),
            "max_training_rows" => self.max_training_rows as i64,
            "embed_dims" => self.embed_dims as i64,
            "ingest_threads" => self.ingest_threads as i64,
        }
    }

    /// Decode [`CovidKgConfig::to_json`] output; unknown or missing
    /// fields fall back to the defaults so old data dirs stay readable.
    pub fn from_json(v: &Value) -> CovidKgConfig {
        let d = CovidKgConfig::default();
        let usize_of = |key: &str, default: usize| {
            v.get(key).and_then(Value::as_i64).map_or(default, |n| n.max(0) as usize)
        };
        CovidKgConfig {
            corpus_size: usize_of("corpus_size", d.corpus_size),
            seed: v.get("seed").and_then(Value::as_i64).map_or(d.seed, |n| n as u64),
            shards: usize_of("shards", d.shards),
            classifier: v
                .get("classifier")
                .and_then(Value::as_str)
                .and_then(ClassifierChoice::from_name)
                .unwrap_or(d.classifier),
            max_training_rows: usize_of("max_training_rows", d.max_training_rows),
            embed_dims: usize_of("embed_dims", d.embed_dims),
            ingest_threads: usize_of("ingest_threads", d.ingest_threads),
            data_dir: None,
        }
    }
}

/// What happened during construction.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// Publications stored.
    pub publications: usize,
    /// Tables parsed from HTML.
    pub tables_parsed: usize,
    /// Rows classified.
    pub rows_classified: usize,
    /// Rows predicted to be metadata.
    pub metadata_rows: usize,
    /// Candidate subtrees extracted.
    pub subtrees: usize,
    /// Fusion statistics.
    pub fusion: FusionStats,
    /// Nodes in the final KG.
    pub kg_nodes: usize,
    /// Topical clusters found.
    pub clusters: usize,
    /// Cluster purity against ground-truth topics.
    pub cluster_purity: f64,
    /// Side-effect observations folded into meta-profiles.
    pub observations: usize,
}

/// The output of [`CovidKg::ingest_prepare`]: everything the commit
/// phase needs, computed without exclusive access to the system. The
/// publications are already durable in the store when this exists;
/// only the in-memory graph/profile state remains to be updated.
#[derive(Debug)]
pub struct PreparedIngest {
    /// Candidate subtrees awaiting fusion into the graph.
    trees: Vec<covidkg_kg::ExtractedTree>,
    /// Side-effect observations extracted from the new tables.
    observations: Vec<Observation>,
    /// Report counter deltas accumulated during classification.
    delta: IngestReport,
    /// Ids of the stored publications — inserts never bump the store's
    /// mutation epoch, so the ANN sync needs them listed explicitly.
    new_ids: Vec<String>,
}

impl PreparedIngest {
    /// Number of publications stored by the prepare phase.
    pub fn publications(&self) -> usize {
        self.delta.publications
    }
}

/// The assembled COVIDKG system.
pub struct CovidKg {
    config: CovidKgConfig,
    db: Database,
    publications: Arc<Collection>,
    search: SearchEngine,
    kg: KnowledgeGraph,
    /// Incrementally-materialized meta-profile documents, kept fresh
    /// off the publications mutation log (plus the ingest new-id list)
    /// instead of full rebuilds.
    profiles: ProfileStore,
    /// Provenance-weighted trust scores: venue credibility priors plus
    /// damped propagation over the KG, maintained incrementally off the
    /// same mutation log as the profiles.
    trust: TrustStore,
    /// Memoized bias interrogation, keyed by `(trust epoch, data
    /// generation)` so a report recomputes only after data changed.
    bias_cache: Mutex<Option<(u64, u64, Value)>>,
    registry: ModelRegistry,
    embeddings: Word2Vec,
    /// Dense retrieval tier: HNSW over title+abstract embeddings.
    ann: HnswIndex,
    /// Mutation-epoch watermark the ANN index is synced to.
    ann_epoch: u64,
    report: IngestReport,
    /// Trained metadata classifier, kept for incremental ingest (№12).
    classifier: TrainedClassifier,
    /// Fusion correction memory carried across ingest calls.
    fusion_memory: std::collections::HashMap<String, covidkg_kg::NodeId>,
    /// Data generation: bumped by every completed [`CovidKg::ingest`].
    /// Serving layers key cached query results on this so a write
    /// invalidates all earlier entries (covidkg-serve).
    generation: u64,
}

impl CovidKg {
    /// Build the full system from a synthetic corpus.
    pub fn build(config: CovidKgConfig) -> Result<CovidKg, StoreError> {
        let pubs = CorpusGenerator::new(CorpusConfig {
            publications: config.corpus_size,
            seed: config.seed,
            ..CorpusConfig::default()
        })
        .generate();
        Self::build_from(config, &pubs)
    }

    /// Build from an existing corpus (lets experiments share one corpus).
    pub fn build_from(config: CovidKgConfig, pubs: &[Publication]) -> Result<CovidKg, StoreError> {
        let mut report = IngestReport {
            publications: pubs.len(),
            ..IngestReport::default()
        };

        // №3 — the sharded document store of publications (durable when
        // a data_dir is configured).
        let db = match &config.data_dir {
            Some(dir) => Database::open(dir)?,
            None => Database::in_memory(),
        };
        let publications = db.create_collection(
            CollectionConfig::new("publications")
                .with_shards(config.shards)
                .with_text_fields(Publication::text_fields()),
        )?;
        let docs: Vec<Value> = pubs.iter().map(Publication::to_doc).collect();
        publications.insert_parallel(docs, config.ingest_threads)?;

        // №4 — embeddings (WDC pre-train + corpus fine-tune) and the
        // metadata classifiers.
        let embeddings = training::pretrain_embeddings(
            pubs,
            config.seed ^ 0x57dc,
            &Word2VecConfig {
                dims: config.embed_dims,
                epochs: 3,
                seed: config.seed,
                ..Word2VecConfig::default()
            },
        );
        let mut rows = labeled_rows_from_corpus(pubs);
        if rows.len() > config.max_training_rows {
            rows.truncate(config.max_training_rows);
        }
        let classifier = TrainedClassifier::train(&rows, &config, &embeddings);

        // Classify every stored table (running the real inference path on
        // the HTML round-tripped through the store), extract subtrees.
        let docs = publications.scan_all();
        let (trees, observations, enrichments) =
            classify_and_extract(&docs, &classifier, &mut report);
        for (paper_id, update) in &enrichments {
            publications.update_spec(paper_id, update)?;
        }
        report.subtrees = trees.len();

        // №5 — topical clustering over TF-IDF-ish embedding vectors.
        let (clusters, purity) = cluster_topics(pubs, &embeddings);
        report.clusters = clusters;
        report.cluster_purity = purity;

        // №2/№14 — fusion into the expert-seeded KG.
        let mut engine = FusionEngine::new(seed_graph(), Some(&embeddings), FusionConfig::default());
        for tree in trees {
            engine.fuse(tree);
        }
        let mut expert = default_expert();
        engine.process_reviews(&mut expert);
        report.fusion = engine.stats();
        let (kg, fusion_memory) = engine.into_parts();
        report.kg_nodes = kg.len();

        // №7 — meta-profiles, materialized once here and kept fresh
        // incrementally by every later ingest.
        report.observations = observations.len();
        let mut profiles = ProfileStore::new();
        profiles.rebuild_all(group_by_paper(observations), publications.mutation_epoch());
        profiles.set_generation(1);

        // Trust tier: venue credibility priors + propagation over the
        // freshly fused graph, kept incremental by later ingests.
        let mut trust = TrustStore::new();
        trust.rebuild_all(
            scan_paper_facts(&publications),
            &kg,
            publications.mutation_epoch(),
        );
        trust.set_generation(1);

        // №11/13 — release trained artifacts.
        let registry =
            ModelRegistry::over(db.create_collection(CollectionConfig::new("models").with_shards(2))?);
        registry.publish_embeddings("cord19-wdc-w2v", &embeddings)?;
        // Real payloads, reusable by API consumers (№11/13): both the SVM
        // and the full BiGRU (weights + batch-norm statistics) serialize
        // losslessly.
        let classifier_payload = match &classifier {
            TrainedClassifier::Svm { model, featurizer } => {
                registry.publish("metadata-featurizer", "featurizer", featurizer.save_text())?;
                model.save_text()
            }
            TrainedClassifier::BiGru(model) => model.save_text(),
        };
        registry.publish("metadata-classifier", config.classifier.name(), classifier_payload)?;

        // The dense retrieval tier: HNSW over title+abstract embeddings,
        // published alongside the other trained artifacts so reopen can
        // skip the rebuild.
        let ann = crate::dense::build_ann(&publications, &embeddings, HnswConfig::default());
        registry.publish("ann-hnsw", "hnsw", ann.save_text())?;
        let ann_epoch = publications.mutation_epoch();

        let search = SearchEngine::new(Arc::clone(&publications))
            .with_render_cache(Arc::new(RenderCache::new(RENDER_CACHE_CAP)));
        let system = CovidKg {
            config,
            db,
            publications,
            search,
            kg,
            profiles,
            trust,
            bias_cache: Mutex::new(None),
            registry,
            embeddings,
            ann,
            ann_epoch,
            report,
            classifier,
            fusion_memory,
            generation: 1,
        };
        system.persist()?;
        Ok(system)
    }

    /// Persist the KG document and snapshot every durable collection.
    /// No-op for in-memory systems.
    fn persist(&self) -> Result<(), StoreError> {
        if self.config.data_dir.is_none() {
            return Ok(());
        }
        let kg_coll = match self.db.collection("kg") {
            Ok(c) => c,
            Err(_) => self
                .db
                .create_collection(CollectionConfig::new("kg").with_shards(1))?,
        };
        let docs = [
            covidkg_json::obj! { "_id" => "kg", "graph" => self.kg.to_json() },
            covidkg_json::obj! { "_id" => "config", "config" => self.config.to_json() },
        ];
        for doc in docs {
            let id = doc.get("_id").and_then(Value::as_str).unwrap().to_string();
            match kg_coll.get(&id) {
                Some(_) => kg_coll.replace(&id, doc)?,
                None => {
                    kg_coll.insert(doc)?;
                }
            }
        }
        // Re-publish the ANN index so the durable copy reflects every
        // ingest-time insert/replace/delete applied since the last persist.
        self.registry.publish("ann-hnsw", "hnsw", self.ann.save_text())?;
        self.db.snapshot_all()?;
        Ok(())
    }

    /// Reopen a durable system from `config.data_dir` **without
    /// retraining**: the publications recover from snapshot+WAL, the
    /// embeddings/classifier/featurizer come from the model registry, the
    /// KG from its persisted JSON document, and the meta-profiles are
    /// re-derived from the stored tables. `config.classifier` must match
    /// the kind the system was built with.
    pub fn reopen(config: CovidKgConfig) -> Result<CovidKg, StoreError> {
        let Some(dir) = config.data_dir.clone() else {
            return Err(StoreError::BadQuery(
                "reopen requires config.data_dir".into(),
            ));
        };
        Self::reopen_with(Database::open(&dir)?, config)
    }

    /// [`CovidKg::reopen`] over an already-open [`Database`] whose
    /// collections may already be live (the replication path: a replica
    /// node creates the collections, streams them to convergence, then
    /// assembles a serving system around the same `Arc`s so applied
    /// frames are visible to search without reopening files).
    pub fn reopen_with(db: Database, config: CovidKgConfig) -> Result<CovidKg, StoreError> {
        let publications = db.get_or_create(
            CollectionConfig::new("publications")
                .with_shards(config.shards)
                .with_text_fields(Publication::text_fields()),
        )?;
        let registry =
            ModelRegistry::over(db.get_or_create(CollectionConfig::new("models").with_shards(2))?);
        let corrupt = |what: &str| StoreError::Corrupt(format!("missing persisted {what}"));
        let embeddings = registry
            .fetch_embeddings("cord19-wdc-w2v")
            .ok_or_else(|| corrupt("embeddings"))?;
        let classifier = match config.classifier {
            ClassifierChoice::Svm => {
                let model = registry
                    .fetch_svm("metadata-classifier")
                    .ok_or_else(|| corrupt("svm classifier"))?;
                let featurizer = registry
                    .fetch("metadata-featurizer")
                    .and_then(|t| crate::training::SvmFeaturizer::load_text(&t))
                    .ok_or_else(|| corrupt("featurizer"))?;
                TrainedClassifier::Svm { model, featurizer }
            }
            ClassifierChoice::BiGru => {
                let model = registry
                    .fetch("metadata-classifier")
                    .and_then(|t| TupleClassifier::load_text(&t))
                    .ok_or_else(|| corrupt("bigru classifier"))?;
                TrainedClassifier::BiGru(model)
            }
        };
        let kg_coll = db.get_or_create(CollectionConfig::new("kg").with_shards(1))?;
        if let Some(saved) = kg_coll.get("config") {
            let saved = CovidKgConfig::from_json(saved.get("config").unwrap_or(&Value::Null));
            if saved.classifier != config.classifier {
                return Err(StoreError::BadQuery(format!(
                    "data dir was built with the {} classifier, reopen requested {}",
                    saved.classifier.name(),
                    config.classifier.name()
                )));
            }
        }
        let kg = kg_coll
            .get("kg")
            .and_then(|d| d.path("graph").and_then(KnowledgeGraph::from_json))
            .ok_or_else(|| corrupt("knowledge graph"))?;

        // Re-derive observations/profiles from the stored tables (cheap,
        // classifier-free).
        let mut profiles = ProfileStore::new();
        profiles.rebuild_all(
            publications
                .scan_all()
                .iter()
                .map(|doc| {
                    let paper_id = doc
                        .get("_id")
                        .and_then(Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    let obs = doc_observations(doc, &paper_id);
                    (paper_id, obs)
                })
                .collect(),
            publications.mutation_epoch(),
        );
        profiles.set_generation(1);
        let mut trust = TrustStore::new();
        trust.rebuild_all(
            scan_paper_facts(&publications),
            &kg,
            publications.mutation_epoch(),
        );
        trust.set_generation(1);
        let report = IngestReport {
            publications: publications.len(),
            kg_nodes: kg.len(),
            observations: profiles.stats().observations,
            ..IngestReport::default()
        };
        // The ANN index restores from its published payload when it still
        // matches the recovered store (WAL replay may have advanced the
        // corpus past the last persist); otherwise rebuild from scratch.
        let ann = registry
            .fetch("ann-hnsw")
            .and_then(|t| HnswIndex::load_text(&t))
            .filter(|ann| {
                ann.len() == publications.len() && ann.dims() == embeddings.dims()
            })
            .unwrap_or_else(|| {
                crate::dense::build_ann(&publications, &embeddings, HnswConfig::default())
            });
        let ann_epoch = publications.mutation_epoch();
        let search = SearchEngine::new(Arc::clone(&publications))
            .with_render_cache(Arc::new(RenderCache::new(RENDER_CACHE_CAP)));
        Ok(CovidKg {
            config,
            db,
            publications,
            search,
            kg,
            profiles,
            trust,
            bias_cache: Mutex::new(None),
            registry,
            embeddings,
            ann,
            ann_epoch,
            report,
            classifier,
            // Correction memory is session-scoped; the expert relearns
            // quickly thanks to the persisted KG structure.
            fusion_memory: std::collections::HashMap::new(),
            generation: 1,
        })
    }

    /// Incrementally ingest new publications (№12 in Fig 1: "the World
    /// Wide Web with new information on COVID-19" feeding the always-
    /// fresh KG): store them, classify their tables with the already-
    /// trained models, fuse the extracted subtrees into the existing
    /// graph (reusing the learned correction memory), and refresh the
    /// meta-profiles. Returns the number of publications added.
    ///
    /// Equivalent to [`CovidKg::ingest_prepare`] → [`CovidKg::ingest_commit`]
    /// → [`CovidKg::persist_now`]; servers that must keep reads flowing
    /// during ingest call the three phases separately so only the commit
    /// phase needs exclusive access.
    pub fn ingest(&mut self, pubs: &[Publication]) -> Result<usize, StoreError> {
        let prepared = self.ingest_prepare(pubs)?;
        let added = self.ingest_commit(prepared)?;
        self.persist_now()?;
        Ok(added)
    }

    /// Phase 1 of ingest: store the publications, classify their tables
    /// and write back enrichments — all through `&self`, so concurrent
    /// readers proceed untouched. Report deltas accumulate in the
    /// returned [`PreparedIngest`] and are merged during commit.
    pub fn ingest_prepare(&self, pubs: &[Publication]) -> Result<PreparedIngest, StoreError> {
        let docs: Vec<Value> = pubs.iter().map(Publication::to_doc).collect();
        self.store_docs(&docs)?;
        let mut delta = IngestReport {
            publications: pubs.len(),
            ..IngestReport::default()
        };
        let (trees, observations, enrichments) =
            classify_and_extract(&docs, &self.classifier, &mut delta);
        for (paper_id, update) in &enrichments {
            self.publications.update_spec(paper_id, update)?;
        }
        delta.subtrees = trees.len();
        let new_ids = docs
            .iter()
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_string))
            .collect();
        Ok(PreparedIngest {
            trees,
            observations,
            delta,
            new_ids,
        })
    }

    /// Phase 2 of ingest: fuse the prepared subtrees into the graph,
    /// refresh meta-profiles and bump the generation. This is the only
    /// phase that mutates the system (`&mut self`); it does no I/O
    /// beyond memory, so the exclusive window stays short.
    pub fn ingest_commit(&mut self, prepared: PreparedIngest) -> Result<usize, StoreError> {
        let PreparedIngest {
            trees,
            observations: new_obs,
            delta,
            new_ids,
        } = prepared;
        self.report.publications += delta.publications;
        self.report.tables_parsed += delta.tables_parsed;
        self.report.rows_classified += delta.rows_classified;
        self.report.metadata_rows += delta.metadata_rows;
        self.report.subtrees += delta.subtrees;

        // Resume fusion over the live graph with the learned memory.
        let kg = std::mem::take(&mut self.kg);
        let mut engine = FusionEngine::new(kg, Some(&self.embeddings), FusionConfig::default());
        engine.set_memory(std::mem::take(&mut self.fusion_memory));
        let added = delta.publications;
        for tree in trees {
            engine.fuse(tree);
        }
        let mut expert = default_expert();
        engine.process_reviews(&mut expert);
        // Merge fusion counters (engine stats restart at zero per engine).
        let fused = engine.stats();
        self.report.fusion.auto_fused += fused.auto_fused;
        self.report.fusion.via_memory += fused.via_memory;
        self.report.fusion.via_embedding += fused.via_embedding;
        self.report.fusion.queued += fused.queued;
        self.report.fusion.reviewed += fused.reviewed;
        self.report.fusion.discarded += fused.discarded;
        self.report.fusion.leaves_added += fused.leaves_added;
        let (kg, memory) = engine.into_parts();
        self.kg = kg;
        self.fusion_memory = memory;
        self.report.kg_nodes = self.kg.len();

        // Keep the meta-profiles fresh without a full rebuild: replay
        // the mutation log since the store's epoch (replaces/deletes)
        // plus the explicit new-id list (inserts never bump the epoch),
        // rebuilding only the vaccines those papers touch. The prepared
        // observations seed the extraction so the common insert-only
        // path never re-parses HTML.
        let epoch = self.publications.mutation_epoch();
        match self.publications.touched_since(self.profiles.epoch()) {
            Some(mut touched) => {
                let mut prepared: std::collections::HashMap<String, Vec<Observation>> =
                    std::collections::HashMap::new();
                for o in new_obs {
                    prepared.entry(o.paper_id.clone()).or_default().push(o);
                }
                touched.extend(new_ids.iter().cloned());
                let publications = &self.publications;
                self.profiles.refresh(epoch, &touched, |id| {
                    prepared
                        .remove(id)
                        .unwrap_or_else(|| paper_observations(publications, id))
                });
            }
            // The bounded log overflowed: nothing provable, rebuild all.
            None => {
                let papers = self
                    .publications
                    .scan_all()
                    .iter()
                    .map(|doc| {
                        let id = doc
                            .get("_id")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string();
                        let obs = doc_observations(doc, &id);
                        (id, obs)
                    })
                    .collect();
                self.profiles.rebuild_all(papers, epoch);
            }
        }
        self.report.observations = self.profiles.stats().observations;
        // Same discipline for the trust tier: replay the mutation log
        // since *its* epoch plus the new-id list, re-extracting facts
        // only for touched papers and re-propagating only the dirty
        // region of the (post-fusion) graph; full rebuild only when the
        // bounded log overflowed.
        match self.publications.touched_since(self.trust.epoch()) {
            Some(mut touched) => {
                touched.extend(new_ids.iter().cloned());
                let publications = &self.publications;
                self.trust.refresh(epoch, &touched, &self.kg, |id| {
                    publications.get(id).map(|doc| doc_paper_facts(&doc, id))
                });
            }
            None => {
                self.trust
                    .rebuild_all(scan_paper_facts(&self.publications), &self.kg, epoch);
            }
        }
        // Keep the dense tier fresh: incremental inserts for the new
        // publications, mutation-log replay for replaces/deletes.
        self.ann_epoch = crate::dense::sync_ann(
            &mut self.ann,
            self.ann_epoch,
            &self.publications,
            &self.embeddings,
            &new_ids,
        );
        self.generation += 1;
        self.profiles.set_generation(self.generation);
        self.trust.set_generation(self.generation);
        Ok(added)
    }

    /// Phase 3 of ingest: persist the KG document and snapshot every
    /// durable collection (`&self`, no-op in memory). Public so servers
    /// can run it outside the exclusive commit window.
    pub fn persist_now(&self) -> Result<(), StoreError> {
        self.persist()
    }

    /// Refresh derived state from the underlying collections after
    /// records were applied *beneath* this system (the replication
    /// path: a replica puller appends frames straight to the store, so
    /// the KG document, observations, meta-profiles and report are
    /// stale until rebuilt). Bumps the generation so render caches
    /// re-key.
    pub fn refresh_derived(&mut self) -> Result<(), StoreError> {
        if let Ok(kg_coll) = self.db.collection("kg") {
            if let Some(kg) = kg_coll
                .get("kg")
                .and_then(|d| d.path("graph").and_then(KnowledgeGraph::from_json))
            {
                self.kg = kg;
            }
        }
        // Replication applies frames beneath this system with no new-id
        // list, so the profiles and the dense tier rebuild wholesale.
        let papers = self
            .publications
            .scan_all()
            .iter()
            .map(|doc| {
                let paper_id = doc
                    .get("_id")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let obs = doc_observations(doc, &paper_id);
                (paper_id, obs)
            })
            .collect();
        self.profiles
            .rebuild_all(papers, self.publications.mutation_epoch());
        self.report.publications = self.publications.len();
        self.report.kg_nodes = self.kg.len();
        self.report.observations = self.profiles.stats().observations;
        self.ann = crate::dense::build_ann(&self.publications, &self.embeddings, *self.ann.config());
        self.ann_epoch = self.publications.mutation_epoch();
        self.trust.rebuild_all(
            scan_paper_facts(&self.publications),
            &self.kg,
            self.publications.mutation_epoch(),
        );
        self.generation += 1;
        self.profiles.set_generation(self.generation);
        self.trust.set_generation(self.generation);
        Ok(())
    }

    /// Store a batch of new documents, riding out transient I/O faults.
    ///
    /// The parallel fast path may have landed an arbitrary subset of the
    /// batch before a fault surfaced, so the transient-error fallback
    /// walks the batch sequentially — tolerating `DuplicateId` for
    /// documents that already made it — with a bounded number of passes
    /// per document. Permanent errors propagate immediately; a batch that
    /// returns `Ok` is fully acknowledged (every document durable in the
    /// WAL).
    fn store_docs(&self, docs: &[Value]) -> Result<(), StoreError> {
        match self
            .publications
            .insert_parallel(docs.to_vec(), self.config.ingest_threads)
        {
            Ok(_) => return Ok(()),
            Err(e) if e.is_transient() => {}
            Err(e) => return Err(e),
        }
        const SEQUENTIAL_PASSES: usize = 8;
        for doc in docs {
            let mut last = None;
            for _ in 0..SEQUENTIAL_PASSES {
                match self.publications.insert(doc.clone()) {
                    Ok(_) | Err(StoreError::DuplicateId(_)) => {
                        last = None;
                        break;
                    }
                    Err(e) if e.is_transient() => last = Some(e),
                    Err(e) => return Err(e),
                }
            }
            if let Some(e) = last {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Build configuration.
    pub fn config(&self) -> &CovidKgConfig {
        &self.config
    }

    /// The ingest/build report.
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// Monotonic data generation: starts at 1 and increments after every
    /// completed [`CovidKg::ingest`]. A cached search result tagged with
    /// an older generation is stale and must not be served.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Run one of the three search engines (№9/10).
    pub fn search(&self, mode: &SearchMode, page: usize) -> SearchPage {
        self.search.search(mode, page)
    }

    /// Run a dense retrieval mode: pure-semantic ANN neighbors or the
    /// hybrid lexical+dense reciprocal-rank fusion. This is the single
    /// implementation every surface (CLI, serve layer, HTTP front-end)
    /// calls, so wire responses are byte-identical to in-process pages.
    pub fn search_dense(&self, mode: &DenseMode, page: usize) -> SearchPage {
        dense_search(
            &self.search,
            &self.ann,
            &self.embeddings,
            mode,
            page,
            &HybridConfig::default(),
        )
    }

    /// The dense retrieval tier's HNSW index.
    pub fn ann(&self) -> &HnswIndex {
        &self.ann
    }

    /// The knowledge graph.
    pub fn kg(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// Vaccine side-effect meta-profiles (Fig 6), in vaccine order.
    pub fn profiles(&self) -> &[MetaProfile] {
        self.profiles.profiles()
    }

    /// The incrementally-materialized profile store (metrics surface).
    pub fn profile_store(&self) -> &ProfileStore {
        &self.profiles
    }

    /// Execute a graph query plan: bounded multi-hop traversal over the
    /// KG returning top-k ranked paths. The single implementation every
    /// surface (CLI, serve layer, HTTP front-end) calls, so wire
    /// responses are byte-identical to in-process results. Runs through
    /// the plan-level optimizer (co-index elision + selectivity-driven
    /// anchor reversal), which is equivalence-tested against the plain
    /// engine.
    pub fn kg_query(&self, plan: &QueryPlan) -> QueryResult {
        covidkg_kg::execute_optimized(&self.kg, plan)
    }

    /// [`CovidKg::kg_query`] with trust-aware re-ranking: each path's
    /// score is fused with the mean propagated trust of its nodes
    /// (`score × (0.5 + 0.5·trust)`), re-sorted, and serialized with
    /// per-path `trust`/`trusted_score` fields plus the trust store's
    /// epoch stamp. The `trust=1` knob on `GET /kg/query`.
    pub fn kg_query_trusted(&self, plan: &QueryPlan) -> Value {
        let result = self.kg_query(plan);
        let mut paths: Vec<(f64, f64, &covidkg_kg::RankedPath)> = result
            .paths
            .iter()
            .map(|p| {
                let mean = if p.nodes.is_empty() {
                    0.0
                } else {
                    p.nodes.iter().filter_map(|&n| self.trust.trust(n)).sum::<f64>()
                        / p.nodes.len() as f64
                };
                (p.score * (0.5 + 0.5 * mean), mean, p)
            })
            .collect();
        paths.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.2.nodes.cmp(&b.2.nodes)));
        covidkg_json::obj! {
            "paths" => Value::Array(
                paths
                    .iter()
                    .map(|(trusted_score, trust, p)| {
                        let mut v = p.to_json();
                        v.insert("trust", *trust);
                        v.insert("trusted_score", *trusted_score);
                        v
                    })
                    .collect(),
            ),
            "hops" => result.hops as i64,
            "visited" => result.visited as i64,
            "epoch" => self.trust.epoch() as i64,
            "generation" => self.generation as i64,
        }
    }

    /// One vaccine's epoch-stamped meta-profile document (JSON +
    /// rendered forms), or `None` for an unknown vaccine.
    pub fn kg_profile(&self, vaccine: &str) -> Option<Value> {
        self.profiles.document(vaccine)
    }

    /// One KG node as a JSON document, or `None` for an out-of-range
    /// id. Like [`CovidKg::kg_query`], the single implementation behind
    /// the `/kg/node/{id}` wire route.
    pub fn kg_node(&self, id: covidkg_kg::NodeId) -> Option<Value> {
        if id >= self.kg.len() {
            return None;
        }
        let node = self.kg.node(id);
        let ids = |v: &[usize]| Value::Array(v.iter().map(|&n| Value::from(n)).collect());
        Some(covidkg_json::obj! {
            "id" => node.id,
            "label" => node.label.as_str(),
            "kind" => node.kind.as_str(),
            "parents" => ids(&node.parents),
            "children" => ids(&node.children),
            "provenance" => Value::Array(
                node.provenance.iter().map(|p| Value::from(p.as_str())).collect()
            ),
            "confidence" => node.confidence,
        })
    }

    /// The released-model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The trained embeddings.
    pub fn embeddings(&self) -> &Word2Vec {
        &self.embeddings
    }

    /// The publications collection.
    pub fn publications(&self) -> &Arc<Collection> {
        &self.publications
    }

    /// The underlying database — the replication listener walks its
    /// collections to ship every WAL, not just the publications'.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Storage statistics (the §2 report).
    pub fn stats(&self) -> covidkg_store::DbStats {
        self.db.stats()
    }

    /// Interrogate the stored corpus for bias (title claim): embedding-
    /// driven clustering with coverage/venue/freshness skew indicators,
    /// re-founded on the trust store — cluster masses are weighted by
    /// each paper's incrementally-maintained venue credibility prior.
    pub fn bias_report(&self) -> crate::bias::BiasReport {
        crate::bias::interrogate_weighted(
            &self.publications.scan_all(),
            &self.embeddings,
            covidkg_corpus::all_topics().len(),
            |paper_id| self.trust.paper_weight(paper_id),
        )
    }

    /// The epoch-stamped bias interrogation document — the single
    /// serialization behind `GET /bias/report` and `covidkg bias`.
    /// Memoized per `(trust epoch, generation)`: the expensive
    /// embed-and-cluster pass reruns only after data actually changed,
    /// which is what makes online interrogation viable as wire traffic.
    pub fn bias_document(&self) -> Value {
        let key = (self.trust.epoch(), self.generation);
        if let Some((e, g, doc)) = self.bias_cache.lock().unwrap().as_ref() {
            if (*e, *g) == key {
                return doc.clone();
            }
        }
        let report = self.bias_report();
        let doc = covidkg_json::obj! {
            "report" => report.to_json(),
            "rendered" => report.render(),
            "epoch" => key.0 as i64,
            "generation" => key.1 as i64,
        };
        *self.bias_cache.lock().unwrap() = Some((key.0, key.1, doc.clone()));
        doc
    }

    /// The provenance-weighted trust store (stats/metrics surface).
    pub fn trust_store(&self) -> &TrustStore {
        &self.trust
    }

    /// One KG node's epoch-stamped trust document, or `None` for an
    /// out-of-range id. The single implementation behind the
    /// `GET /trust/node/{id}` wire route.
    pub fn trust_node(&self, id: covidkg_kg::NodeId) -> Option<Value> {
        self.trust.node_document(id)
    }

    /// One venue's credibility document (prior components + epoch), or
    /// `None` for an unknown venue — behind `GET /trust/source/{venue}`.
    pub fn trust_source(&self, venue: &str) -> Option<Value> {
        self.trust.source_document(venue)
    }

    /// A paper's credibility weight: its venue's prior, or the floor
    /// for papers from unknown venues. The `trust=1` re-rank knob on
    /// `/search/*` reads this.
    pub fn trust_paper_weight(&self, paper_id: &str) -> f64 {
        self.trust.paper_weight(paper_id)
    }
}

/// Extract one stored publication's trust facts: venue, publication
/// year, structural density (tables/captions), and the claim keys its
/// side-effect tables support (`vaccine|effect`, the corroboration
/// currency). Classifier-free, like [`doc_observations`].
pub fn doc_paper_facts(doc: &Value, paper_id: &str) -> PaperFacts {
    let venue = doc
        .path("venue")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let year = doc
        .path("date")
        .and_then(Value::as_str)
        .and_then(|s| s.get(..4))
        .and_then(|y| y.parse().ok())
        .unwrap_or(0);
    let mut tables = 0usize;
    let mut captions = 0usize;
    if let Some(ts) = doc.path("tables").and_then(Value::as_array) {
        for t in ts {
            if let Some(html) = t.path("html").and_then(Value::as_str) {
                tables += 1;
                captions += html.matches("<caption").count();
            }
        }
    }
    let claims = doc_observations(doc, paper_id)
        .iter()
        .map(|o| format!("{}|{}", o.vaccine.to_lowercase(), o.effect.to_lowercase()))
        .collect();
    PaperFacts {
        paper_id: paper_id.to_string(),
        venue,
        year,
        tables,
        captions,
        claims,
    }
    .canonicalize()
}

/// [`doc_paper_facts`] over the whole collection — the trust store's
/// full-rebuild feed.
pub fn scan_paper_facts(publications: &Collection) -> Vec<PaperFacts> {
    publications
        .scan_all()
        .iter()
        .map(|doc| {
            let id = doc
                .get("_id")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            doc_paper_facts(doc, &id)
        })
        .collect()
}

/// Run the trained classifier over every table in `docs`, extracting
/// candidate subtrees and side-effect observations. Shared by the initial
/// build and incremental [`CovidKg::ingest`].
fn classify_and_extract(
    docs: &[Value],
    classifier: &TrainedClassifier,
    report: &mut IngestReport,
) -> (
    Vec<covidkg_kg::ExtractedTree>,
    Vec<Observation>,
    Vec<(String, Value)>,
) {
    let pre = Preprocessor::new();
    let mut trees = Vec::new();
    let mut observations: Vec<Observation> = Vec::new();
    let mut enrichments: Vec<(String, Value)> = Vec::new();
    for doc in docs {
        let paper_id = doc
            .get("_id")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut paper_tables = 0usize;
        let mut paper_meta_rows = 0usize;
        let Some(tables) = doc.path("tables").and_then(Value::as_array) else {
            continue;
        };
        for t in tables {
            let Some(html) = t.path("html").and_then(Value::as_str) else {
                continue;
            };
            let parsed = match parse_tables(html) {
                Ok(p) => p,
                Err(_) => continue,
            };
            for table in &parsed {
                report.tables_parsed += 1;
                paper_tables += 1;
                let feats = row_features(&pre, &table.rows, None);
                let predictions: Vec<bool> = feats
                    .iter()
                    .enumerate()
                    .map(|(i, f)| classifier.predict(f, &table.rows[i]))
                    .collect();
                report.rows_classified += predictions.len();
                let meta = predictions.iter().filter(|&&p| p).count();
                report.metadata_rows += meta;
                paper_meta_rows += meta;
                let orientation = detect_orientation(&table.rows);
                trees.extend(extract_subtrees(
                    &table.rows,
                    &predictions,
                    orientation == Orientation::Vertical,
                    &table.caption,
                    &paper_id,
                ));
                observations
                    .extend(parse_side_effect_table(&table.caption, &table.rows, &paper_id));
            }
        }
        // The paper's back-end stores publications "enriched with
        // different classified characteristics by our Deep-Learning
        // models"; write the classification summary back via a $set.
        enrichments.push((
            paper_id,
            covidkg_json::obj! {
                "$set" => covidkg_json::obj! {
                    "enrichment" => covidkg_json::obj! {
                        "tables" => paper_tables,
                        "metadata_rows" => paper_meta_rows,
                    },
                },
            },
        ));
    }
    (trees, observations, enrichments)
}

/// The classifier actually used during ingest.
#[allow(clippy::large_enum_variant)] // one long-lived instance per system
enum TrainedClassifier {
    Svm {
        model: Svm,
        featurizer: crate::training::SvmFeaturizer,
    },
    BiGru(TupleClassifier),
}

impl TrainedClassifier {
    fn train(rows: &[LabeledRow], config: &CovidKgConfig, embeddings: &Word2Vec) -> Self {
        match config.classifier {
            ClassifierChoice::Svm => {
                let featurizer = crate::training::SvmFeaturizer::fit(rows, 2000);
                let vectors: Vec<_> = rows
                    .iter()
                    .map(|r| featurizer.vectorize(&r.features, &r.cells))
                    .collect();
                let labels: Vec<bool> = rows
                    .iter()
                    .map(|r| r.features.label.unwrap_or(false))
                    .collect();
                let model = Svm::train(
                    &vectors,
                    &labels,
                    &SvmConfig {
                        seed: config.seed,
                        ..SvmConfig::default()
                    },
                );
                TrainedClassifier::Svm { model, featurizer }
            }
            ClassifierChoice::BiGru => {
                let examples = build_tuple_examples(rows);
                let mut model = TupleClassifier::new(
                    &examples,
                    Some(embeddings),
                    TupleClassifierConfig {
                        embed_dims: config.embed_dims,
                        hidden: 16,
                        max_len: 10,
                        epochs: 6,
                        seed: config.seed,
                        ..TupleClassifierConfig::default()
                    },
                );
                model.train(&examples);
                TrainedClassifier::BiGru(model)
            }
        }
    }

    fn predict(&self, features: &covidkg_tables::RowFeatures, cells: &[String]) -> bool {
        match self {
            TrainedClassifier::Svm { model, featurizer } => {
                model.predict(&featurizer.vectorize(features, cells))
            }
            TrainedClassifier::BiGru(model) => {
                let example = covidkg_ml::TupleExample {
                    terms: features
                        .processed
                        .split_whitespace()
                        .map(str::to_lowercase)
                        .collect(),
                    cells: cells.iter().map(|c| c.to_lowercase()).collect(),
                    label: false,
                };
                model.predict(&example)
            }
        }
    }
}

/// The scripted expert's default ground-truth mapping from the table
/// attribute headings the synthetic corpus emits.
fn default_expert() -> ScriptedExpert {
    ScriptedExpert::new(&[
        ("Vaccine", "Vaccine(s)"),
        ("Side effect", "Side-effects"),
        ("Symptom", "Symptoms"),
        ("Characteristic", "Epidemiology"),
        ("Arm", "Treatments"),
        ("Product", "Prevention"),
    ])
}

/// Group flat extraction output by source paper (extraction order
/// preserved within each paper) — the shape [`ProfileStore`] ingests.
fn group_by_paper(obs: Vec<Observation>) -> Vec<(String, Vec<Observation>)> {
    let mut by: std::collections::BTreeMap<String, Vec<Observation>> =
        std::collections::BTreeMap::new();
    for o in obs {
        by.entry(o.paper_id.clone()).or_default().push(o);
    }
    by.into_iter().collect()
}

/// Re-derive one stored publication document's side-effect observations
/// (cheap, classifier-free — caption-gated table parsing only).
fn doc_observations(doc: &Value, paper_id: &str) -> Vec<Observation> {
    let mut observations = Vec::new();
    if let Some(tables) = doc.path("tables").and_then(Value::as_array) {
        for t in tables {
            if let Some(html) = t.path("html").and_then(Value::as_str) {
                for table in parse_tables(html).unwrap_or_default() {
                    observations.extend(parse_side_effect_table(
                        &table.caption,
                        &table.rows,
                        paper_id,
                    ));
                }
            }
        }
    }
    observations
}

/// [`doc_observations`] by paper id; empty when the paper is gone (the
/// profile store drops a deleted paper's contribution on replay).
fn paper_observations(publications: &Collection, paper_id: &str) -> Vec<Observation> {
    publications
        .get(paper_id)
        .map(|doc| doc_observations(&doc, paper_id))
        .unwrap_or_default()
}

/// Topical clustering (№5): k-means over mean word embeddings of each
/// abstract; purity graded against the generator's topic labels.
fn cluster_topics(pubs: &[Publication], embeddings: &Word2Vec) -> (usize, f64) {
    if pubs.is_empty() {
        return (0, 0.0);
    }
    let points: Vec<Vec<f32>> = pubs
        .iter()
        .map(|p| embeddings.embed_phrase(&tokenize_lower(&p.abstract_text)))
        .collect();
    let k = covidkg_corpus::all_topics().len();
    let result = kmeans(&points, k, 30, 17);
    // Purity: each cluster votes for its majority ground-truth topic.
    let mut majority = vec![std::collections::HashMap::<usize, usize>::new(); k];
    for (p, &c) in pubs.iter().zip(&result.assignments) {
        *majority[c].entry(p.topic_id).or_insert(0) += 1;
    }
    let pure: usize = majority
        .iter()
        .map(|m| m.values().copied().max().unwrap_or(0))
        .sum();
    (k, pure as f64 / pubs.len() as f64)
}

/// Recover structured side-effect observations from a parsed table whose
/// caption marks it as a side-effect table (the real-code-path feed for
/// the Fig 6 meta-profiles). Headers look like `Pfizer dose 2 (%)`.
pub fn parse_side_effect_table(
    caption: &str,
    rows: &[Vec<String>],
    paper_id: &str,
) -> Vec<Observation> {
    if !caption.to_lowercase().contains("side-effect")
        && !caption.to_lowercase().contains("side effect")
    {
        return Vec::new();
    }
    if rows.len() < 2 || rows[0].len() < 2 {
        return Vec::new();
    }
    // Parse headers: vaccine name + dose.
    let mut columns: Vec<Option<(String, u8)>> = vec![None];
    for h in &rows[0][1..] {
        let toks = tokenize_lower(h);
        let vaccine = toks.first().cloned();
        let dose = toks
            .iter()
            .position(|t| t == "dose")
            .and_then(|i| toks.get(i + 1))
            .and_then(|d| d.parse::<u8>().ok());
        columns.push(match (vaccine, dose) {
            (Some(v), Some(d)) => Some((capitalize(&v), d)),
            _ => None,
        });
    }
    let mut out = Vec::new();
    for row in &rows[1..] {
        let Some(effect) = row.first() else { continue };
        for (col, cell) in row.iter().enumerate().skip(1) {
            let Some(Some((vaccine, dose))) = columns.get(col) else {
                continue;
            };
            let Some(rate) = cell.trim().strip_suffix('%').and_then(|r| r.trim().parse::<f32>().ok())
            else {
                continue;
            };
            out.push(Observation {
                vaccine: vaccine.clone(),
                dose: *dose,
                effect: effect.clone(),
                rate,
                paper_id: paper_id.to_string(),
            });
        }
    }
    out
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CovidKgConfig {
        CovidKgConfig {
            corpus_size: 36,
            max_training_rows: 400,
            ..CovidKgConfig::default()
        }
    }

    #[test]
    fn end_to_end_build_produces_all_artifacts() {
        let system = CovidKg::build(small_config()).unwrap();
        let r = system.report();
        assert_eq!(r.publications, 36);
        assert!(r.tables_parsed >= 36);
        assert!(r.rows_classified > 100);
        assert!(r.metadata_rows > 0);
        assert!(r.subtrees > 0);
        assert!(r.kg_nodes > seed_graph().len(), "fusion must grow the KG");
        assert!(r.fusion.auto_fused > 0);
        assert!(!system.profiles().is_empty(), "side-effect tables exist");
        assert!(r.cluster_purity > 0.2, "purity {}", r.cluster_purity);
        // Released artifacts present: embeddings + classifier +
        // featurizer + the dense-tier ANN index.
        assert!(system.registry().fetch_embeddings("cord19-wdc-w2v").is_some());
        assert!(system.registry().fetch_svm("metadata-classifier").is_some());
        assert!(system.registry().fetch("ann-hnsw").is_some());
        assert_eq!(system.registry().list().len(), 4);
        assert_eq!(system.ann().len(), 36, "every publication indexed");
    }

    #[test]
    fn dense_modes_serve_pages_and_track_ingest() {
        let mut system = CovidKg::build(small_config()).unwrap();
        let sem = system.search_dense(&DenseMode::Semantic("vaccine".into()), 0);
        assert!(sem.total > 0, "semantic neighbors for an in-vocab query");
        for w in sem.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let hyb = system.search_dense(&DenseMode::Hybrid("vaccine".into()), 0);
        assert!(hyb.total > 0);
        // Hybrid keeps every lexical page-one hit in its candidate set.
        let lexical = system.search(&SearchMode::AllFields("vaccine".into()), 0);
        assert!(hyb.total >= lexical.results.len());
        // Ingest keeps the ANN tier in sync without a rebuild.
        let before = system.ann().len();
        let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(48, 42)
            .generate()
            .into_iter()
            .skip(36)
            .collect();
        system.ingest(&new_pubs).unwrap();
        assert_eq!(system.ann().len(), before + 12);
    }

    #[test]
    fn search_over_built_system_returns_ranked_pages() {
        let system = CovidKg::build(small_config()).unwrap();
        let page = system.search(&SearchMode::AllFields("vaccine".into()), 0);
        assert!(page.total > 0);
        assert!(page.results.len() <= 10);
        // Scores are non-increasing.
        for w in page.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let tables = system.search(&SearchMode::Tables("side-effects".into()), 0);
        assert!(tables.total > 0);
    }

    #[test]
    fn kg_is_browsable_with_provenance() {
        let system = CovidKg::build(small_config()).unwrap();
        let kg = system.kg();
        let hits = kg.search("side effect");
        assert!(!hits.is_empty());
        // Fused entity nodes carry provenance back to papers.
        let with_prov = kg
            .nodes()
            .iter()
            .filter(|n| !n.provenance.is_empty())
            .count();
        assert!(with_prov > 0);
    }

    #[test]
    fn stats_report_covers_the_store() {
        let system = CovidKg::build(small_config()).unwrap();
        let stats = system.stats();
        // publications + the models registry collection.
        assert_eq!(stats.collections.len(), 2);
        assert_eq!(
            stats
                .collections
                .iter()
                .find(|c| c.name == "publications")
                .unwrap()
                .docs,
            36
        );
        assert!(stats.render_report().contains("publications"));
    }

    #[test]
    fn side_effect_parser_extracts_observations() {
        let rows = vec![
            vec!["Side effect".to_string(), "Pfizer dose 2 (%)".to_string(), "Moderna dose 2 (%)".to_string()],
            vec!["Fever".to_string(), "12.5%".to_string(), "15%".to_string()],
            vec!["Chills".to_string(), "8%".to_string(), "n/a".to_string()],
        ];
        let obs = parse_side_effect_table("Reported side-effects after dose 2", &rows, "p9");
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].vaccine, "Pfizer");
        assert_eq!(obs[0].dose, 2);
        assert_eq!(obs[0].effect, "Fever");
        assert!((obs[0].rate - 12.5).abs() < 1e-6);
        // Non-side-effect captions are skipped.
        assert!(parse_side_effect_table("Demographics", &rows, "p9").is_empty());
    }

    #[test]
    fn incremental_ingest_grows_every_artifact() {
        let mut system = CovidKg::build(small_config()).unwrap();
        let before = system.report().clone();
        let kg_before = system.kg().len();
        let profiles_before: usize = system
            .profiles()
            .iter()
            .map(|p| p.observation_count())
            .sum();

        // New publications from a later index range (fresh ids).
        let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(48, 42)
            .generate()
            .into_iter()
            .skip(36) // ids 36..48 don't collide with the build's 0..36
            .collect();
        let added = system.ingest(&new_pubs).unwrap();
        assert_eq!(added, 12);

        let after = system.report();
        assert_eq!(after.publications, before.publications + 12);
        assert!(after.tables_parsed > before.tables_parsed);
        assert!(after.subtrees > before.subtrees);
        assert!(system.kg().len() >= kg_before);
        assert_eq!(system.publications().len(), 48);
        // New docs are searchable immediately.
        let page = system.search(
            &covidkg_search::SearchMode::AllFields("vaccine".into()),
            0,
        );
        assert!(page.total > 0);
        // Profiles absorb the new observations.
        let profiles_after: usize = system
            .profiles()
            .iter()
            .map(|p| p.observation_count())
            .sum();
        assert!(profiles_after >= profiles_before);
    }
    #[test]
    fn trust_tier_scores_and_tracks_ingest() {
        let mut system = CovidKg::build(small_config()).unwrap();
        let stats = system.trust_store().stats();
        assert_eq!(stats.papers, 36);
        assert!(stats.venues > 0, "corpus venues feed the ledger");
        assert_eq!(stats.nodes, system.kg().len());
        assert_eq!(stats.generation, 1);
        // Documents serve for every node; unknown ids/venues miss.
        let node = system.trust_node(0).expect("root document");
        let trust = node.path("trust").and_then(Value::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&trust));
        assert!(system.trust_node(usize::MAX).is_none());
        let venue = system.trust_store().venues().next().unwrap().to_string();
        let source = system.trust_source(&venue).expect("venue document");
        assert!(source.path("prior").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(system.trust_source("no-such-venue").is_none());
        // Paper weights: known papers get their venue prior, unknown
        // papers the floor.
        assert!(system.trust_paper_weight("paper-0") >= covidkg_trust::prior::PRIOR_FLOOR);

        // Ingest maintains the store incrementally (equivalence to a
        // full rebuild is pinned by crates/trust/tests/trust_prop.rs).
        let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(48, 42)
            .generate()
            .into_iter()
            .skip(36)
            .collect();
        system.ingest(&new_pubs).unwrap();
        let after = system.trust_store().stats();
        assert_eq!(after.papers, 48);
        assert!(after.incremental_refreshes >= 1, "ingest must not rebuild");
        assert_eq!(after.generation, 2);
        assert_eq!(after.nodes, system.kg().len(), "fusion growth tracked");
    }

    #[test]
    fn bias_document_memoizes_and_carries_trust() {
        let system = CovidKg::build(small_config()).unwrap();
        let a = system.bias_document();
        let b = system.bias_document();
        assert_eq!(a.to_json(), b.to_json(), "same epoch → cached byte-identical");
        assert!(a.path("report.trust_gini").and_then(Value::as_f64).is_some());
        assert_eq!(a.path("generation").and_then(Value::as_i64), Some(1));
        assert!(a
            .path("rendered")
            .and_then(Value::as_str)
            .unwrap()
            .contains("bias interrogation"));
    }

    #[test]
    fn trusted_query_reranks_with_trust_fields() {
        let system = CovidKg::build(small_config()).unwrap();
        let plan = QueryPlan::parse("node:0", "child,child", 8, 5).unwrap();
        let plain = system.kg_query(&plan);
        let trusted = system.kg_query_trusted(&plan);
        let paths = trusted.path("paths").and_then(Value::as_array).unwrap();
        assert_eq!(paths.len(), plain.paths.len());
        let mut prev = f64::INFINITY;
        for p in paths {
            let t = p.path("trust").and_then(Value::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&t));
            let ts = p.path("trusted_score").and_then(Value::as_f64).unwrap();
            assert!(ts <= prev + 1e-12, "trusted_score must be non-increasing");
            prev = ts;
        }
        assert!(trusted.path("epoch").and_then(Value::as_i64).is_some());
    }

    #[test]
    fn bigru_classifier_choice_builds() {
        let cfg = CovidKgConfig {
            corpus_size: 12,
            classifier: ClassifierChoice::BiGru,
            max_training_rows: 150,
            ..CovidKgConfig::default()
        };
        let system = CovidKg::build(cfg).unwrap();
        assert!(system.report().rows_classified > 0);
    }
}
