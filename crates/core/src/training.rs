//! Training-set construction and cross-validation for the §3 metadata
//! classifiers.
//!
//! "We composed the training sets from Web-scale datasets such as WDC and
//! CORD-19 respectively. We evaluated our models and observed 89% - 96%
//! F-measure on average respectively, when validated with 10-fold
//! cross-validation, for Machine-learning-based model (SVM) and
//! Deep-learning Bi-GRU-based models with slight differences depending on
//! whether the classified metadata is horizontal or vertical, as well as
//! its row/column number." (§3.3)

use covidkg_corpus::{CorpusGenerator, GeneratedTable, Publication};
use covidkg_ml::metrics::{kfold_stratified, train_indices, Confusion};
use covidkg_ml::model::{TupleClassifier, TupleClassifierConfig, TupleExample};
use covidkg_ml::svm::{SparseVector, Svm, SvmConfig};
use covidkg_ml::ClassMetrics;
use covidkg_ml::Word2Vec;
use covidkg_tables::{detect_orientation, row_features, Orientation, Preprocessor, RowFeatures};
use std::collections::HashMap;

/// A labeled table row ready for feature extraction.
#[derive(Debug, Clone)]
pub struct LabeledRow {
    /// §3.5 features (f1 processed text + positional f2…f6 + label f7).
    pub features: RowFeatures,
    /// Raw cells (for the cell-level BiGRU path).
    pub cells: Vec<String>,
    /// Table orientation (for the §3.3 horizontal/vertical split).
    pub orientation: Orientation,
    /// Source table's row count (the §3.3 "row/column number" covariate).
    pub table_rows: usize,
}

/// Harvest labeled rows from a corpus's tables (ground truth comes from
/// the generator's `metadata_rows`).
pub fn labeled_rows_from_corpus(pubs: &[Publication]) -> Vec<LabeledRow> {
    let pre = Preprocessor::new();
    let mut out = Vec::new();
    for p in pubs {
        for t in &p.tables {
            harvest_table(&pre, t, &mut out);
        }
    }
    out
}

/// Harvest labeled rows from WDC-style tables (the pre-training set).
pub fn labeled_rows_from_wdc(tables: &[GeneratedTable]) -> Vec<LabeledRow> {
    let pre = Preprocessor::new();
    let mut out = Vec::new();
    for t in tables {
        harvest_table(&pre, t, &mut out);
    }
    out
}

fn harvest_table(pre: &Preprocessor, t: &GeneratedTable, out: &mut Vec<LabeledRow>) {
    // Vertical tables carry their metadata along the first column, so row
    // labels are all-false; we keep them (the classifier must learn to
    // say "not a metadata row"), and the orientation detector supplies
    // the §3.3 vertical split.
    let orientation = detect_orientation(&t.rows);
    let feats = row_features(pre, &t.rows, Some(&t.metadata_rows));
    for (i, f) in feats.into_iter().enumerate() {
        out.push(LabeledRow {
            features: f,
            cells: t.rows[i].clone(),
            orientation,
            table_rows: t.rows.len(),
        });
    }
}

/// Reusable §3.5 SVM featurizer: bag-of-words over the processed row text
/// (`f1`, namespaced `p:`) *and* the raw cell tokens (namespaced `r:`,
/// carrying entity names and unsubstituted values), with the feature
/// space capped per §3.2's frequency-sorted selection, plus the five
/// positional features as dedicated trailing dimensions.
#[derive(Debug, Clone)]
pub struct SvmFeaturizer {
    vocab: HashMap<String, u32>,
    vocab_size: usize,
}

fn row_tokens(features: &RowFeatures, cells: &[String], mut f: impl FnMut(String)) {
    for tok in features.processed.split_whitespace() {
        f(format!("p:{}", tok.to_lowercase()));
    }
    for cell in cells {
        for tok in covidkg_text::tokenize_lower(cell) {
            f(format!("r:{tok}"));
        }
    }
}

impl SvmFeaturizer {
    /// Fit the vocabulary on training rows.
    pub fn fit(rows: &[LabeledRow], max_vocab: usize) -> SvmFeaturizer {
        let mut counts: HashMap<String, u64> = HashMap::new();
        for r in rows {
            row_tokens(&r.features, &r.cells, |t| {
                *counts.entry(t).or_insert(0) += 1;
            });
        }
        let mut terms: Vec<(String, u64)> = counts.into_iter().collect();
        terms.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        terms.truncate(max_vocab);
        let vocab: HashMap<String, u32> = terms
            .into_iter()
            .enumerate()
            .map(|(i, (t, _))| (t, i as u32))
            .collect();
        let vocab_size = vocab.len();
        SvmFeaturizer { vocab, vocab_size }
    }

    /// Feature-space dimensionality (vocabulary + positional tail).
    pub fn dims(&self) -> usize {
        self.vocab_size + 5
    }

    /// Serialize (vocabulary in id order) for the model registry.
    pub fn save_text(&self) -> String {
        use std::fmt::Write as _;
        let mut terms: Vec<(&String, &u32)> = self.vocab.iter().collect();
        terms.sort_by_key(|(_, &id)| id);
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.vocab_size);
        for (term, _) in terms {
            let _ = writeln!(out, "{term}");
        }
        out
    }

    /// Parse the format produced by [`SvmFeaturizer::save_text`].
    pub fn load_text(text: &str) -> Option<SvmFeaturizer> {
        let mut lines = text.lines();
        let vocab_size: usize = lines.next()?.trim().parse().ok()?;
        let mut vocab = HashMap::with_capacity(vocab_size);
        for (id, term) in lines.enumerate().take(vocab_size) {
            vocab.insert(term.to_string(), id as u32);
        }
        (vocab.len() == vocab_size).then_some(SvmFeaturizer { vocab, vocab_size })
    }

    /// Vectorize one row.
    pub fn vectorize(&self, features: &RowFeatures, cells: &[String]) -> SparseVector {
        let mut tf: HashMap<u32, f32> = HashMap::new();
        row_tokens(features, cells, |t| {
            if let Some(&id) = self.vocab.get(&t) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        });
        let mut v: SparseVector = tf.into_iter().collect();
        let pos = features.positional();
        for (k, &p) in pos.iter().enumerate() {
            v.push((self.vocab_size as u32 + k as u32, p / 4.0));
        }
        v.sort_by_key(|&(id, _)| id);
        v
    }
}

/// Convenience wrapper: fit + vectorize the whole training set. Returns
/// `(vectors, labels, vocab_size)`.
pub fn build_svm_features(
    rows: &[LabeledRow],
    max_vocab: usize,
) -> (Vec<SparseVector>, Vec<bool>, usize) {
    let featurizer = SvmFeaturizer::fit(rows, max_vocab);
    let vectors = rows
        .iter()
        .map(|r| featurizer.vectorize(&r.features, &r.cells))
        .collect();
    let labels = rows
        .iter()
        .map(|r| r.features.label.unwrap_or(false))
        .collect();
    (vectors, labels, featurizer.vocab_size)
}

/// Build BiGRU tuple examples (term- and cell-level views, Fig 3).
pub fn build_tuple_examples(rows: &[LabeledRow]) -> Vec<TupleExample> {
    rows.iter()
        .map(|r| TupleExample {
            terms: r
                .features
                .processed
                .split_whitespace()
                .map(str::to_lowercase)
                .collect(),
            cells: r.cells.iter().map(|c| c.to_lowercase()).collect(),
            label: r.features.label.unwrap_or(false),
        })
        .collect()
}

/// Per-slice cross-validation results (the §3.3 table).
#[derive(Debug, Clone, Default)]
pub struct CvReport {
    /// Overall metrics.
    pub overall: ClassMetrics,
    /// Metrics over rows from horizontal-metadata tables.
    pub horizontal: ClassMetrics,
    /// Metrics over rows from vertical-metadata tables.
    pub vertical: ClassMetrics,
    /// Metrics over rows from small tables (< 6 rows).
    pub small_tables: ClassMetrics,
    /// Metrics over rows from large tables (≥ 6 rows).
    pub large_tables: ClassMetrics,
    /// Wall-clock training time across folds.
    pub train_time: std::time::Duration,
}

/// 10-fold (configurable) cross-validation of the SVM classifier.
pub fn kfold_svm(rows: &[LabeledRow], k: usize, cfg: &SvmConfig, seed: u64) -> CvReport {
    let (vectors, labels, _) = build_svm_features(rows, 2000);
    let folds = kfold_stratified(&labels, k, seed);
    let mut slices = SliceConfusions::default();
    let mut train_time = std::time::Duration::ZERO;
    for fold in &folds {
        let train = train_indices(rows.len(), fold);
        let train_x: Vec<SparseVector> = train.iter().map(|&i| vectors[i].clone()).collect();
        let train_y: Vec<bool> = train.iter().map(|&i| labels[i]).collect();
        let t0 = std::time::Instant::now();
        let svm = Svm::train(&train_x, &train_y, cfg);
        train_time += t0.elapsed();
        for &i in fold {
            let pred = svm.predict(&vectors[i]);
            slices.record(&rows[i], labels[i], pred);
        }
    }
    slices.into_report(train_time)
}

/// K-fold cross-validation of the BiGRU (or BiLSTM) tuple classifier.
/// `pretrained` seeds the embedding layers (§3.6).
pub fn kfold_bigru(
    rows: &[LabeledRow],
    k: usize,
    cfg: &TupleClassifierConfig,
    pretrained: Option<&Word2Vec>,
    seed: u64,
) -> CvReport {
    let examples = build_tuple_examples(rows);
    let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
    let folds = kfold_stratified(&labels, k, seed);
    let mut slices = SliceConfusions::default();
    let mut train_time = std::time::Duration::ZERO;
    for fold in &folds {
        let train = train_indices(rows.len(), fold);
        let train_ex: Vec<TupleExample> = train.iter().map(|&i| examples[i].clone()).collect();
        let t0 = std::time::Instant::now();
        let mut model = TupleClassifier::new(&train_ex, pretrained, cfg.clone());
        model.train(&train_ex);
        train_time += t0.elapsed();
        for &i in fold {
            let pred = model.predict(&examples[i]);
            slices.record(&rows[i], examples[i].label, pred);
        }
    }
    slices.into_report(train_time)
}

#[derive(Default)]
struct SliceConfusions {
    overall: Confusion,
    horizontal: Confusion,
    vertical: Confusion,
    small: Confusion,
    large: Confusion,
}

impl SliceConfusions {
    fn record(&mut self, row: &LabeledRow, actual: bool, pred: bool) {
        self.overall.record(actual, pred);
        match row.orientation {
            Orientation::Horizontal => self.horizontal.record(actual, pred),
            Orientation::Vertical => self.vertical.record(actual, pred),
        }
        if row.table_rows < 6 {
            self.small.record(actual, pred);
        } else {
            self.large.record(actual, pred);
        }
    }

    fn into_report(self, train_time: std::time::Duration) -> CvReport {
        CvReport {
            overall: self.overall.metrics(),
            horizontal: self.horizontal.metrics(),
            vertical: self.vertical.metrics(),
            small_tables: self.small.metrics(),
            large_tables: self.large.metrics(),
            train_time,
        }
    }
}

/// Word2Vec training sentences from a corpus (abstract + body + table
/// captions, the fields the paper's embeddings see).
pub fn embedding_sentences(pubs: &[Publication]) -> Vec<Vec<String>> {
    pubs.iter().map(Publication::all_tokens).collect()
}

/// Pre-train on WDC-style tables then fine-tune on the corpus (§3.6).
pub fn pretrain_embeddings(
    pubs: &[Publication],
    wdc_seed: u64,
    cfg: &covidkg_ml::Word2VecConfig,
) -> Word2Vec {
    let wdc = covidkg_corpus::generator::wdc_tables(50, wdc_seed);
    let mut sentences: Vec<Vec<String>> = wdc
        .iter()
        .flat_map(|t| {
            t.rows
                .iter()
                .map(|r| covidkg_text::tokenize_lower(&r.join(" ")))
        })
        .collect();
    sentences.extend(embedding_sentences(pubs));
    Word2Vec::train(&sentences, cfg)
}

/// Convenience corpus for tests and quick experiments.
pub fn small_corpus(n: usize, seed: u64) -> Vec<Publication> {
    CorpusGenerator::with_size(n, seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<LabeledRow> {
        labeled_rows_from_corpus(&small_corpus(30, 7))
    }

    #[test]
    fn harvest_produces_balanced_ish_rows() {
        let rows = rows();
        assert!(rows.len() > 100, "got {}", rows.len());
        let meta = rows
            .iter()
            .filter(|r| r.features.label == Some(true))
            .count();
        assert!(meta > 10, "metadata rows: {meta}");
        assert!(meta < rows.len() / 2, "metadata must be the minority class");
        // Both orientations present.
        assert!(rows.iter().any(|r| r.orientation == Orientation::Vertical));
        assert!(rows.iter().any(|r| r.orientation == Orientation::Horizontal));
    }

    #[test]
    fn svm_features_have_positional_tail() {
        let rows = rows();
        let (vectors, labels, vocab) = build_svm_features(&rows, 500);
        assert_eq!(vectors.len(), labels.len());
        assert!(vocab > 20);
        // Positional dims appear beyond the vocabulary.
        let has_pos = vectors
            .iter()
            .any(|v| v.iter().any(|&(id, _)| id >= vocab as u32));
        assert!(has_pos);
        // Vectors are sorted by feature id (SVM kernel contract).
        for v in &vectors {
            assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn tuple_examples_align_with_rows() {
        let rows = rows();
        let ex = build_tuple_examples(&rows);
        assert_eq!(ex.len(), rows.len());
        assert!(ex.iter().any(|e| e.label));
        // Term view uses processed placeholders (INT/PERCENT …).
        assert!(ex
            .iter()
            .any(|e| e.terms.iter().any(|t| t == "int" || t == "percent")));
    }

    #[test]
    fn featurizer_round_trips() {
        let rows = rows();
        let f = SvmFeaturizer::fit(&rows, 300);
        let back = SvmFeaturizer::load_text(&f.save_text()).expect("round trip");
        assert_eq!(back.dims(), f.dims());
        for r in rows.iter().take(20) {
            assert_eq!(
                back.vectorize(&r.features, &r.cells),
                f.vectorize(&r.features, &r.cells)
            );
        }
        assert!(SvmFeaturizer::load_text("").is_none());
        assert!(SvmFeaturizer::load_text("5\na\nb").is_none());
    }

    #[test]
    fn svm_cross_validation_lands_in_paper_band() {
        let rows = rows();
        let report = kfold_svm(&rows, 5, &SvmConfig::default(), 1);
        assert!(
            report.overall.f1 > 0.8,
            "SVM F1 {:.3} below sanity floor",
            report.overall.f1
        );
        assert!(report.overall.precision > 0.7);
        assert!(report.overall.recall > 0.7);
        assert!(report.train_time.as_nanos() > 0);
    }

    #[test]
    fn bigru_cross_validation_learns() {
        let rows: Vec<LabeledRow> = rows().into_iter().take(120).collect();
        let cfg = TupleClassifierConfig {
            embed_dims: 12,
            hidden: 12,
            max_len: 8,
            epochs: 6,
            ..TupleClassifierConfig::default()
        };
        let report = kfold_bigru(&rows, 3, &cfg, None, 1);
        assert!(
            report.overall.f1 > 0.75,
            "BiGRU F1 {:.3} below sanity floor",
            report.overall.f1
        );
    }

    #[test]
    fn pretraining_includes_corpus_vocabulary() {
        let pubs = small_corpus(10, 3);
        let w2v = pretrain_embeddings(
            &pubs,
            9,
            &covidkg_ml::Word2VecConfig {
                dims: 12,
                epochs: 2,
                ..covidkg_ml::Word2VecConfig::default()
            },
        );
        // Corpus words and WDC words both embedded.
        assert!(w2v.embed("vaccine").is_some() || w2v.embed("symptom").is_some());
        assert!(w2v.embed("laptop").is_some());
    }
}
