//! Themed table generation.
//!
//! Tables come out as raw HTML fragments — exactly what the §3.1 parser
//! ingests from CORD-19 — together with ground truth: which rows are
//! metadata, the orientation, and (for side-effect tables) the structured
//! records behind the cells, which the Fig 6 meta-profile experiment
//! needs.

use covidkg_rand::rngs::SmallRng;
use covidkg_rand::seq::SliceRandom;
use covidkg_rand::Rng;

/// What a generated table is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableTheme {
    /// Vaccine side-effect rates by vaccine and dosage (feeds Fig 6).
    SideEffects,
    /// Dosage / efficacy trial arms.
    Dosage,
    /// Patient demographics.
    Demographics,
    /// Symptom prevalence.
    Symptoms,
    /// WDC-style generic web table (products), for pre-training.
    WebGeneric,
}

/// A structured side-effect observation underlying one table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SideEffectCell {
    /// Vaccine name.
    pub vaccine: String,
    /// Dose number (1 or 2).
    pub dose: u8,
    /// Side-effect name.
    pub effect: String,
    /// Incidence percentage.
    pub rate: f32,
}

/// A generated table: HTML plus ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedTable {
    /// Raw HTML fragment (as CORD-19 would ship it).
    pub html: String,
    /// Caption text.
    pub caption: String,
    /// The cell grid (pre-HTML), header rows included.
    pub rows: Vec<Vec<String>>,
    /// True for metadata rows (ground truth for §3.3/§3.5 training).
    pub metadata_rows: Vec<bool>,
    /// True when the metadata runs down the first column instead.
    pub vertical: bool,
    /// Theme used.
    pub theme: TableTheme,
    /// Structured side-effect records (only for `SideEffects` theme).
    pub side_effects: Vec<SideEffectCell>,
}

const VACCINES: &[&str] = &["Pfizer", "Moderna", "AstraZeneca", "Novavax", "Janssen"];
const EFFECTS: &[&str] = &["Fever", "Fatigue", "Headache", "Myalgia", "Chills", "Rash"];
const SYMPTOMS: &[&str] = &["Cough", "Fever", "Anosmia", "Dyspnea", "Fatigue", "Myalgia"];

/// Generate a table for the given theme. `vertical` transposes the
/// orientation so both §3.3 metadata classes occur in the corpus.
pub fn generate_table(theme: TableTheme, vertical: bool, rng: &mut SmallRng) -> GeneratedTable {
    generate_table_noisy(theme, vertical, 0.0, rng)
}

/// Like [`generate_table`] but with CORD-19-style extraction noise:
///
/// * some tables gain a "Total" summary row — numerically a data row but
///   with a header-like textual lead cell — a classic hard case for
///   metadata classifiers, and
/// * a fraction `label_noise` of row labels is flipped (real CORD-19
///   `<th>` markup is unreliable).
pub fn generate_table_noisy(
    theme: TableTheme,
    vertical: bool,
    label_noise: f64,
    rng: &mut SmallRng,
) -> GeneratedTable {
    let (caption, mut rows, side_effects) = match theme {
        TableTheme::SideEffects => side_effect_table(rng),
        TableTheme::Dosage => dosage_table(rng),
        TableTheme::Demographics => demographics_table(rng),
        TableTheme::Symptoms => symptoms_table(rng),
        TableTheme::WebGeneric => web_generic_table(rng),
    };
    // Hard case: append a "Total" summary row to some data tables.
    if label_noise > 0.0 && rng.gen_bool(0.3) && rows[0].len() >= 3 {
        let mut total = vec!["Total".to_string()];
        for _ in 1..rows[0].len() {
            total.push(format!("{}", rng.gen_range(50..5000)));
        }
        rows.push(total);
    }
    let mut metadata_rows: Vec<bool> = std::iter::once(true)
        .chain(std::iter::repeat(false))
        .take(rows.len())
        .collect();
    // Extraction noise: flip a fraction of the row labels.
    if label_noise > 0.0 {
        for flag in metadata_rows.iter_mut() {
            if rng.gen_bool(label_noise) {
                *flag = !*flag;
            }
        }
    }
    if vertical {
        rows = transpose(&rows);
        // After transposing, the header is the first *column*; row-level
        // metadata labels no longer apply (every row mixes a header cell
        // with data cells), so rows are labeled non-metadata and the
        // orientation flag carries the truth.
        metadata_rows = vec![false; rows.len()];
        // side_effects records are layout-independent.
    }
    let html = render_html(&caption, &rows, &metadata_rows);
    GeneratedTable {
        html,
        caption,
        rows,
        metadata_rows,
        vertical,
        theme,
        side_effects,
    }
}

fn side_effect_table(rng: &mut SmallRng) -> (String, Vec<Vec<String>>, Vec<SideEffectCell>) {
    let n_vaccines = rng.gen_range(2..=3);
    let mut vaccines: Vec<&str> = VACCINES.to_vec();
    vaccines.shuffle(rng);
    vaccines.truncate(n_vaccines);
    let dose = rng.gen_range(1..=2u8);
    let mut rows = vec![];
    let header: Vec<String> = std::iter::once("Side effect".to_string())
        .chain(vaccines.iter().map(|v| format!("{v} dose {dose} (%)")))
        .collect();
    rows.push(header);
    let mut records = Vec::new();
    let n_effects = rng.gen_range(3..=EFFECTS.len());
    for effect in &EFFECTS[..n_effects] {
        let mut row = vec![effect.to_string()];
        for v in &vaccines {
            let rate = (rng.gen_range(0.5..45.0f32) * 10.0).round() / 10.0;
            row.push(format!("{rate}%"));
            records.push(SideEffectCell {
                vaccine: v.to_string(),
                dose,
                effect: effect.to_string(),
                rate,
            });
        }
        rows.push(row);
    }
    (
        format!("Table: Reported side-effects after dose {dose}, by vaccine"),
        rows,
        records,
    )
}

fn dosage_table(rng: &mut SmallRng) -> (String, Vec<Vec<String>>, Vec<SideEffectCell>) {
    let mut rows = vec![vec![
        "Arm".to_string(),
        "Dose".to_string(),
        "Participants".to_string(),
        "Efficacy".to_string(),
    ]];
    for arm in 0..rng.gen_range(2..=4) {
        rows.push(vec![
            format!("Arm {}", arm + 1),
            format!("{} mg", rng.gen_range(5..100) * 5),
            format!("{}", rng.gen_range(50..2000)),
            format!("{}%", rng.gen_range(40..97)),
        ]);
    }
    ("Table: Trial arms and dosing".to_string(), rows, Vec::new())
}

fn demographics_table(rng: &mut SmallRng) -> (String, Vec<Vec<String>>, Vec<SideEffectCell>) {
    let mut rows = vec![vec![
        "Characteristic".to_string(),
        "Cases".to_string(),
        "Controls".to_string(),
        "p-value".to_string(),
    ]];
    for chara in ["Age, median", "Female", "Comorbidity", "BMI >30", "Smoker"] {
        rows.push(vec![
            chara.to_string(),
            format!("{}", rng.gen_range(10..90)),
            format!("{}", rng.gen_range(10..90)),
            format!("<0.{:02}", rng.gen_range(1..10)),
        ]);
    }
    ("Table: Baseline demographics of the cohort".to_string(), rows, Vec::new())
}

fn symptoms_table(rng: &mut SmallRng) -> (String, Vec<Vec<String>>, Vec<SideEffectCell>) {
    let mut rows = vec![vec![
        "Symptom".to_string(),
        "Prevalence".to_string(),
        "Onset (days)".to_string(),
    ]];
    let n = rng.gen_range(3..=SYMPTOMS.len());
    for s in &SYMPTOMS[..n] {
        rows.push(vec![
            s.to_string(),
            format!("{}%", rng.gen_range(5..85)),
            format!("{}-{}", rng.gen_range(1..4), rng.gen_range(4..14)),
        ]);
    }
    ("Table: Symptom prevalence and onset".to_string(), rows, Vec::new())
}

fn web_generic_table(rng: &mut SmallRng) -> (String, Vec<Vec<String>>, Vec<SideEffectCell>) {
    // WDC-flavored product table: exercises the same metadata-vs-data
    // classification but with a non-medical vocabulary.
    let mut rows = vec![vec![
        "Product".to_string(),
        "Price".to_string(),
        "Rating".to_string(),
        "Stock".to_string(),
    ]];
    for p in ["Laptop", "Monitor", "Keyboard", "Webcam", "Headset"] {
        rows.push(vec![
            p.to_string(),
            format!("${}", rng.gen_range(20..2000)),
            format!("{:.1}", rng.gen_range(1.0..5.0f32)),
            format!("{}", rng.gen_range(0..500)),
        ]);
    }
    ("Product catalog".to_string(), rows, Vec::new())
}

fn transpose(rows: &[Vec<String>]) -> Vec<Vec<String>> {
    let width = rows.iter().map(Vec::len).max().unwrap_or(0);
    (0..width)
        .map(|c| {
            rows.iter()
                .map(|r| r.get(c).cloned().unwrap_or_default())
                .collect()
        })
        .collect()
}

fn render_html(caption: &str, rows: &[Vec<String>], metadata_rows: &[bool]) -> String {
    let mut html = String::from("<table>");
    html.push_str(&format!("<caption>{}</caption>", escape(caption)));
    for (i, row) in rows.iter().enumerate() {
        html.push_str("<tr>");
        let tag = if metadata_rows.get(i).copied().unwrap_or(false) {
            "th"
        } else {
            "td"
        };
        for cell in row {
            html.push_str(&format!("<{tag}>{}</{tag}>", escape(cell)));
        }
        html.push_str("</tr>");
    }
    html.push_str("</table>");
    html
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn horizontal_tables_have_one_header_row() {
        let t = generate_table(TableTheme::Dosage, false, &mut rng());
        assert!(t.metadata_rows[0]);
        assert!(t.metadata_rows[1..].iter().all(|&m| !m));
        assert!(!t.vertical);
        assert_eq!(t.rows[0][0], "Arm");
    }

    #[test]
    fn vertical_tables_are_transposed() {
        let h = generate_table(TableTheme::Symptoms, false, &mut rng());
        let v = generate_table(TableTheme::Symptoms, true, &mut rng());
        assert!(v.vertical);
        // First row of the vertical table holds the old first column.
        assert_eq!(v.rows[0][0], "Symptom");
        assert!(v.rows[0].len() > 1);
        assert_eq!(h.rows.len(), v.rows[0].len());
    }

    #[test]
    fn side_effect_records_align_with_cells() {
        let t = generate_table(TableTheme::SideEffects, false, &mut rng());
        assert!(!t.side_effects.is_empty());
        let n_vaccines = t.rows[0].len() - 1;
        let n_effects = t.rows.len() - 1;
        assert_eq!(t.side_effects.len(), n_vaccines * n_effects);
        // Every record's rate appears in the grid.
        for rec in &t.side_effects {
            let cell = format!("{}%", rec.rate);
            assert!(
                t.rows.iter().any(|r| r.contains(&cell)),
                "missing {cell} for {rec:?}"
            );
        }
    }

    #[test]
    fn html_parses_back_with_the_tables_crate() {
        for theme in [
            TableTheme::SideEffects,
            TableTheme::Dosage,
            TableTheme::Demographics,
            TableTheme::Symptoms,
            TableTheme::WebGeneric,
        ] {
            let t = generate_table(theme, false, &mut rng());
            let parsed = covidkg_tables::parse_tables(&t.html).unwrap();
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].rows, t.rows, "{theme:?} round trip");
            assert_eq!(parsed[0].caption, t.caption);
            // th-rows in the HTML mark the metadata rows.
            let parsed_headers: Vec<bool> = (0..t.rows.len())
                .map(|i| parsed[0].header_rows.contains(&i))
                .collect();
            assert_eq!(parsed_headers, t.metadata_rows);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_table(TableTheme::SideEffects, false, &mut SmallRng::seed_from_u64(5));
        let b = generate_table(TableTheme::SideEffects, false, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.html, b.html);
    }

    #[test]
    fn escaping_handles_special_chars() {
        assert_eq!(escape("a<b & c>d"), "a&lt;b &amp; c&gt;d");
    }
}
