//! The synthetic publication model and its JSON document shape.
//!
//! The JSON layout follows what the COVIDKG back-end stores per §2/§3.1:
//! paper fields (authors, title, abstract), body text, raw-HTML tables
//! (plus their parsed form once the ingest pipeline runs) and figure
//! captions. Ground-truth fields live under `"_truth"` and are never
//! text-indexed, so experiments can grade results without leaking labels
//! into the search path.

use crate::tablegen::GeneratedTable;
use covidkg_json::{obj, Value};

/// A structured side-effect record (re-exported convenience alias).
pub type SideEffectRecord = crate::tablegen::SideEffectCell;

/// One synthetic publication.
#[derive(Debug, Clone)]
pub struct Publication {
    /// Stable id (`paper-000042`).
    pub id: String,
    /// Title.
    pub title: String,
    /// Author names.
    pub authors: Vec<String>,
    /// Venue string.
    pub venue: String,
    /// Publication date `YYYY-MM`.
    pub date: String,
    /// Abstract text.
    pub abstract_text: String,
    /// Body sections `(heading, text)`.
    pub sections: Vec<(String, String)>,
    /// Tables with ground truth.
    pub tables: Vec<GeneratedTable>,
    /// Figure captions.
    pub figure_captions: Vec<String>,
    /// Ground-truth primary topic id.
    pub topic_id: usize,
    /// Ground-truth topic name.
    pub topic_name: String,
}

impl Publication {
    /// The JSON document stored in the `publications` collection.
    pub fn to_doc(&self) -> Value {
        obj! {
            "_id" => self.id.clone(),
            "title" => self.title.clone(),
            "authors" => Value::Array(self.authors.iter().map(|a| Value::str(a.clone())).collect()),
            "venue" => self.venue.clone(),
            "date" => self.date.clone(),
            "abstract" => self.abstract_text.clone(),
            "body" => Value::Array(
                self.sections
                    .iter()
                    .map(|(h, t)| obj! { "heading" => h.clone(), "text" => t.clone() })
                    .collect()
            ),
            "tables" => Value::Array(
                self.tables
                    .iter()
                    .map(|t| obj! {
                        "caption" => t.caption.clone(),
                        "html" => t.html.clone(),
                    })
                    .collect()
            ),
            "figure_captions" => Value::Array(
                self.figure_captions.iter().map(|c| Value::str(c.clone())).collect()
            ),
            "_truth" => obj! {
                "topic_id" => self.topic_id,
                "topic" => self.topic_name.clone(),
            },
        }
    }

    /// The text-index field list matching [`Publication::to_doc`]'s shape —
    /// everything searchable, nothing from `_truth`.
    pub fn text_fields() -> Vec<String> {
        [
            "title",
            "abstract",
            "body",
            "tables",
            "figure_captions",
            "authors",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// All tokens of the publication (lowercased) — used for vocabulary
    /// building and Word2Vec sentences.
    pub fn all_tokens(&self) -> Vec<String> {
        let mut text = String::new();
        text.push_str(&self.title);
        text.push(' ');
        text.push_str(&self.abstract_text);
        for (h, t) in &self.sections {
            text.push(' ');
            text.push_str(h);
            text.push(' ');
            text.push_str(t);
        }
        for t in &self.tables {
            text.push(' ');
            text.push_str(&t.caption);
        }
        for c in &self.figure_captions {
            text.push(' ');
            text.push_str(c);
        }
        covidkg_text::tokenize_lower(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tablegen::{generate_table, TableTheme};
    use covidkg_rand::rngs::SmallRng;
    use covidkg_rand::SeedableRng;

    fn sample() -> Publication {
        let mut rng = SmallRng::seed_from_u64(1);
        Publication {
            id: "paper-000001".into(),
            title: "Mask mandates and transmission".into(),
            authors: vec!["A. Researcher".into(), "B. Scientist".into()],
            venue: "Journal of Synthetic Medicine".into(),
            date: "2021-03".into(),
            abstract_text: "We study masks.".into(),
            sections: vec![("Methods".into(), "We measured things.".into())],
            tables: vec![generate_table(TableTheme::Dosage, false, &mut rng)],
            figure_captions: vec!["Figure 1: flow diagram".into()],
            topic_id: 5,
            topic_name: "Masks".into(),
        }
    }

    #[test]
    fn doc_shape_has_all_sections() {
        let doc = sample().to_doc();
        assert_eq!(doc.path("_id").and_then(Value::as_str), Some("paper-000001"));
        assert!(doc.path("abstract").is_some());
        assert!(doc.path("body.0.heading").is_some());
        assert!(doc.path("tables.0.html").unwrap().as_str().unwrap().contains("<table>"));
        assert_eq!(doc.path("_truth.topic").and_then(Value::as_str), Some("Masks"));
    }

    #[test]
    fn text_fields_exclude_truth() {
        let fields = Publication::text_fields();
        assert!(fields.contains(&"title".to_string()));
        assert!(!fields.iter().any(|f| f.contains("_truth")));
    }

    #[test]
    fn all_tokens_cover_title_and_body() {
        let toks = sample().all_tokens();
        assert!(toks.contains(&"mask".to_string()) || toks.contains(&"masks".to_string()));
        assert!(toks.contains(&"measured".to_string()));
        assert!(toks.contains(&"flow".to_string()));
    }
}
