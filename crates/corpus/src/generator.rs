//! The seeded corpus generator.
//!
//! Generates publications whose text mixes one primary topic's term bank
//! with background academic vocabulary, mirroring how real abstracts mix
//! topical and boilerplate language. Everything is a pure function of the
//! seed, so experiments are reproducible bit-for-bit.

use crate::publication::Publication;
use crate::tablegen::{generate_table, GeneratedTable, TableTheme};
use crate::topics::{all_topics, Topic, BACKGROUND};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::seq::SliceRandom;
use covidkg_rand::Rng;
use covidkg_rand::SeedableRng;

/// Generator settings.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of publications.
    pub publications: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of tables generated in vertical orientation.
    pub vertical_fraction: f64,
    /// Words per abstract.
    pub abstract_words: usize,
    /// Body sections per publication.
    pub sections: usize,
    /// Words per body section.
    pub section_words: usize,
    /// Fraction of table-row labels flipped to model CORD-19 extraction
    /// noise (makes the §3.3 task realistically imperfect).
    pub label_noise: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            publications: 200,
            seed: 42,
            vertical_fraction: 0.3,
            abstract_words: 60,
            sections: 3,
            section_words: 90,
            label_noise: 0.03,
        }
    }
}

/// Deterministic publication generator.
#[derive(Debug)]
pub struct CorpusGenerator {
    cfg: CorpusConfig,
}

const FIRST_NAMES: &[&str] = &["A.", "B.", "C.", "D.", "E.", "F.", "J.", "K.", "L.", "M."];
const LAST_NAMES: &[&str] = &[
    "Chen", "Garcia", "Patel", "Kim", "Okafor", "Novak", "Silva", "Haddad", "Larsen",
    "Kowalski", "Ivanova", "Tanaka",
];
const VENUES: &[&str] = &[
    "Journal of Synthetic Medicine",
    "Annals of Reproducible Epidemiology",
    "Lancet of Benchmarks",
    "Synthetic Clinical Reports",
    "Open Pandemic Letters",
];
const SECTION_HEADINGS: &[&str] = &["Introduction", "Methods", "Results", "Discussion", "Limitations"];

impl CorpusGenerator {
    /// Generator with the given configuration.
    pub fn new(cfg: CorpusConfig) -> CorpusGenerator {
        CorpusGenerator { cfg }
    }

    /// Convenience: default config with `n` publications and `seed`.
    pub fn with_size(n: usize, seed: u64) -> CorpusGenerator {
        CorpusGenerator::new(CorpusConfig {
            publications: n,
            seed,
            ..CorpusConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CorpusConfig {
        &self.cfg
    }

    /// Generate the full corpus.
    pub fn generate(&self) -> Vec<Publication> {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        (0..self.cfg.publications)
            .map(|i| self.one_publication(i, &mut rng))
            .collect()
    }

    fn one_publication(&self, index: usize, rng: &mut SmallRng) -> Publication {
        let topics = all_topics();
        let topic = &topics[index % topics.len()];
        let n_authors = rng.gen_range(1..=4);
        let authors: Vec<String> = (0..n_authors)
            .map(|_| {
                format!(
                    "{} {}",
                    FIRST_NAMES.choose(rng).unwrap(),
                    LAST_NAMES.choose(rng).unwrap()
                )
            })
            .collect();
        let title = self.title(topic, rng);
        let abstract_text = self.prose(topic, self.cfg.abstract_words, rng);
        let sections: Vec<(String, String)> = SECTION_HEADINGS
            .iter()
            .take(self.cfg.sections)
            .map(|h| (h.to_string(), self.prose(topic, self.cfg.section_words, rng)))
            .collect();
        let n_tables = rng.gen_range(1..=3);
        let tables: Vec<GeneratedTable> = (0..n_tables)
            .map(|_| {
                let theme = theme_for_topic(topic, rng);
                let vertical = rng.gen_bool(self.cfg.vertical_fraction);
                crate::tablegen::generate_table_noisy(theme, vertical, self.cfg.label_noise, rng)
            })
            .collect();
        let figure_captions = vec![
            format!("Figure 1: {} over time", topic.terms[0]),
            format!("Figure 2: distribution of {} by group", topic.terms[1]),
        ];
        let year = 2020 + (index % 3);
        let month = 1 + (index % 12);
        Publication {
            id: format!("paper-{index:06}"),
            title,
            authors,
            venue: VENUES.choose(rng).unwrap().to_string(),
            date: format!("{year}-{month:02}"),
            abstract_text,
            sections,
            tables,
            figure_captions,
            topic_id: topic.id,
            topic_name: topic.name.to_string(),
        }
    }

    fn title(&self, topic: &Topic, rng: &mut SmallRng) -> String {
        let t1 = topic.terms.choose(rng).unwrap();
        let t2 = topic.terms.choose(rng).unwrap();
        let e = topic.entities.choose(rng).unwrap();
        let patterns = [
            format!("{} and {} in covid-19 patients: a study of {}", cap(t1), t2, e),
            format!("Effect of {} on {} outcomes ({})", t1, t2, e),
            format!("{}: {} evidence from a multicenter {} cohort", cap(e), t1, t2),
        ];
        patterns.choose(rng).unwrap().clone()
    }

    /// Topic-flavored filler prose: ~55% topic terms/entities, 45%
    /// background vocabulary, light punctuation.
    fn prose(&self, topic: &Topic, words: usize, rng: &mut SmallRng) -> String {
        let mut out = String::with_capacity(words * 8);
        let mut sentence_len = 0;
        for i in 0..words {
            let w = if rng.gen_bool(0.45) {
                BACKGROUND.choose(rng).unwrap()
            } else if rng.gen_bool(0.25) {
                topic.entities.choose(rng).unwrap()
            } else {
                topic.terms.choose(rng).unwrap()
            };
            if sentence_len == 0 {
                out.push_str(&cap(w));
            } else {
                out.push(' ');
                out.push_str(w);
            }
            sentence_len += 1;
            if sentence_len >= rng.gen_range(8..16) || i == words - 1 {
                out.push('.');
                sentence_len = 0;
            }
        }
        out
    }
}

fn theme_for_topic(topic: &Topic, rng: &mut SmallRng) -> TableTheme {
    match topic.name {
        "Vaccines" | "Side-effects" => {
            if rng.gen_bool(0.7) {
                TableTheme::SideEffects
            } else {
                TableTheme::Dosage
            }
        }
        "Symptoms" | "Pediatrics" => TableTheme::Symptoms,
        "Treatments" | "Diagnostics" => TableTheme::Dosage,
        _ => {
            if rng.gen_bool(0.5) {
                TableTheme::Demographics
            } else {
                TableTheme::Symptoms
            }
        }
    }
}

fn cap(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Generate WDC-style pre-training tables (generic web tables), separate
/// from the medical corpus — the paper pre-trains embeddings on WDC
/// before fine-tuning on CORD-19 (§3.6).
pub fn wdc_tables(n: usize, seed: u64) -> Vec<GeneratedTable> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let vertical = rng.gen_bool(0.3);
            generate_table(TableTheme::WebGeneric, vertical, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_with_round_robin_topics() {
        let pubs = CorpusGenerator::with_size(25, 7).generate();
        assert_eq!(pubs.len(), 25);
        assert_eq!(pubs[0].topic_id, 0);
        assert_eq!(pubs[1].topic_id, 1);
        assert_eq!(pubs[12].topic_id, 0); // 12 topics wrap
        assert!(pubs.iter().all(|p| !p.tables.is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CorpusGenerator::with_size(5, 3).generate();
        let b = CorpusGenerator::with_size(5, 3).generate();
        assert_eq!(a[4].title, b[4].title);
        assert_eq!(a[4].abstract_text, b[4].abstract_text);
        let c = CorpusGenerator::with_size(5, 4).generate();
        assert_ne!(a[4].abstract_text, c[4].abstract_text);
    }

    #[test]
    fn prose_carries_topic_signal() {
        let pubs = CorpusGenerator::with_size(24, 1).generate();
        for p in &pubs {
            let topic = &all_topics()[p.topic_id];
            let toks = p.all_tokens();
            let topical = toks
                .iter()
                .filter(|t| topic.terms.contains(&t.as_str()) || topic.entities.contains(&t.as_str()))
                .count();
            assert!(
                topical as f64 / toks.len() as f64 > 0.2,
                "{}: weak signal {topical}/{}",
                p.id,
                toks.len()
            );
        }
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let pubs = CorpusGenerator::with_size(50, 1).generate();
        let mut ids: Vec<&str> = pubs.iter().map(|p| p.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        assert_eq!(pubs[7].id, "paper-000007");
    }

    #[test]
    fn vertical_fraction_is_respected_roughly() {
        let cfg = CorpusConfig {
            publications: 100,
            vertical_fraction: 0.5,
            ..CorpusConfig::default()
        };
        let pubs = CorpusGenerator::new(cfg).generate();
        let (mut v, mut total) = (0usize, 0usize);
        for p in &pubs {
            for t in &p.tables {
                total += 1;
                v += usize::from(t.vertical);
            }
        }
        let frac = v as f64 / total as f64;
        assert!((0.35..0.65).contains(&frac), "vertical fraction {frac}");
    }

    #[test]
    fn wdc_tables_are_generic() {
        let tables = wdc_tables(10, 2);
        assert_eq!(tables.len(), 10);
        assert!(tables
            .iter()
            .all(|t| matches!(t.theme, TableTheme::WebGeneric)));
    }

    #[test]
    fn dates_are_well_formed() {
        let pubs = CorpusGenerator::with_size(30, 1).generate();
        for p in &pubs {
            let (y, m) = p.date.split_once('-').unwrap();
            let y: i32 = y.parse().unwrap();
            let m: u32 = m.parse().unwrap();
            assert!((2020..=2022).contains(&y));
            assert!((1..=12).contains(&m));
        }
    }
}
