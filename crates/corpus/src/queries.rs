//! Benchmark queries with relevance ground truth (experiment E4).
//!
//! Each query targets one topic; a publication is relevant iff its
//! ground-truth topic matches. This is how the search-quality experiment
//! scores P@10 / MRR without human judgments.

use crate::publication::Publication;
use crate::topics::all_topics;

/// A benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Query text as a user would type it.
    pub text: String,
    /// Topic id whose publications count as relevant.
    pub topic_id: usize,
    /// Whether the query is quoted (exact-match mode, §2.1).
    pub exact: bool,
}

impl BenchQuery {
    /// Ids of the relevant publications within `pubs`.
    pub fn relevant_ids<'p>(&self, pubs: &'p [Publication]) -> Vec<&'p str> {
        pubs.iter()
            .filter(|p| p.topic_id == self.topic_id)
            .map(|p| p.id.as_str())
            .collect()
    }
}

/// The standard query set: two stemmed-mode queries per topic (one single
/// term, one multi-term) plus one quoted exact query per topic.
pub fn benchmark_queries() -> Vec<BenchQuery> {
    let mut out = Vec::new();
    for t in all_topics() {
        out.push(BenchQuery {
            text: t.terms[0].to_string(),
            topic_id: t.id,
            exact: false,
        });
        out.push(BenchQuery {
            text: format!("{} {}", t.terms[1], t.terms[2]),
            topic_id: t.id,
            exact: false,
        });
        out.push(BenchQuery {
            text: t.entities[0].to_string(),
            topic_id: t.id,
            exact: true,
        });
    }
    out
}

/// Deterministic query workload for the serving load generator: `n`
/// query texts drawn with repetition from [`benchmark_queries`], quoted
/// when the source query is exact-mode. Seed per client so concurrent
/// clients issue different streams while runs stay reproducible.
pub fn query_workload(n: usize, seed: u64) -> Vec<String> {
    use covidkg_rand::seq::SliceRandom;
    use covidkg_rand::{SeedableRng, SmallRng};
    let base = benchmark_queries();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let q = base.choose(&mut rng).expect("benchmark set is non-empty");
            if q.exact {
                format!("\"{}\"", q.text)
            } else {
                q.text.clone()
            }
        })
        .collect()
}

/// Precision@k for a ranked id list against a relevant set.
pub fn precision_at_k(ranked: &[&str], relevant: &[&str], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|id| relevant.contains(id))
        .count();
    hits as f64 / k.min(ranked.len()).max(1) as f64
}

/// Mean reciprocal rank of the first relevant result.
pub fn reciprocal_rank(ranked: &[&str], relevant: &[&str]) -> f64 {
    ranked
        .iter()
        .position(|id| relevant.contains(id))
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusGenerator;

    #[test]
    fn three_queries_per_topic() {
        let qs = benchmark_queries();
        assert_eq!(qs.len(), all_topics().len() * 3);
        assert!(qs.iter().any(|q| q.exact));
        assert!(qs.iter().any(|q| !q.exact));
    }

    #[test]
    fn relevance_follows_topic_labels() {
        let pubs = CorpusGenerator::with_size(24, 1).generate();
        let q = &benchmark_queries()[0]; // topic 0
        let rel = q.relevant_ids(&pubs);
        assert_eq!(rel.len(), 2); // 24 pubs over 12 topics round-robin
        assert!(rel.contains(&"paper-000000"));
        assert!(rel.contains(&"paper-000012"));
    }

    #[test]
    fn workload_is_deterministic_per_seed_and_quotes_exact_queries() {
        let a = query_workload(40, 7);
        let b = query_workload(40, 7);
        let c = query_workload(40, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 40);
        let texts: Vec<String> = benchmark_queries()
            .iter()
            .map(|q| {
                if q.exact {
                    format!("\"{}\"", q.text)
                } else {
                    q.text.clone()
                }
            })
            .collect();
        assert!(a.iter().all(|q| texts.contains(q)));
        assert!(a.iter().any(|q| q.starts_with('"')), "exact queries appear");
    }

    #[test]
    fn precision_at_k_math() {
        let ranked = ["a", "b", "c", "d"];
        let relevant = ["b", "d", "z"];
        assert_eq!(precision_at_k(&ranked, &relevant, 2), 0.5);
        assert_eq!(precision_at_k(&ranked, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&ranked, &relevant, 0), 0.0);
        // k beyond list length normalizes by list length.
        assert_eq!(precision_at_k(&ranked[..2], &relevant, 10), 0.5);
        assert_eq!(precision_at_k(&[], &relevant, 10), 0.0);
    }

    #[test]
    fn reciprocal_rank_math() {
        assert_eq!(reciprocal_rank(&["x", "b"], &["b"]), 0.5);
        assert_eq!(reciprocal_rank(&["b"], &["b"]), 1.0);
        assert_eq!(reciprocal_rank(&["x", "y"], &["b"]), 0.0);
    }
}
