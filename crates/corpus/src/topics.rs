//! The synthetic corpus's topic model.
//!
//! Each topic carries a term bank (words strongly associated with the
//! topic) and named entities. Publications are generated from one primary
//! topic plus background vocabulary, giving the clustering step (№5 in
//! Fig 1) and the search-relevance experiments a recoverable signal.

/// One COVID-19 topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topic {
    /// Stable topic id (index into [`all_topics`]).
    pub id: usize,
    /// Human-readable name (also the KG node it feeds).
    pub name: &'static str,
    /// Terms characteristic of this topic.
    pub terms: &'static [&'static str],
    /// Named entities (vaccines, variants, drugs …).
    pub entities: &'static [&'static str],
}

/// The full topic inventory.
pub fn all_topics() -> &'static [Topic] {
    TOPICS
}

/// Look up a topic by name.
pub fn topic_by_name(name: &str) -> Option<&'static Topic> {
    TOPICS.iter().find(|t| t.name == name)
}

static TOPICS: &[Topic] = &[
    Topic {
        id: 0,
        name: "Vaccines",
        terms: &[
            "vaccine", "vaccination", "dose", "booster", "efficacy", "immunization",
            "antibody", "titer", "mrna", "adjuvant", "seroconversion", "immunogenicity",
            "trial", "placebo", "cohort",
        ],
        entities: &["pfizer", "moderna", "astrazeneca", "janssen", "novavax", "sinovac"],
    },
    Topic {
        id: 1,
        name: "Side-effects",
        terms: &[
            "side-effect", "adverse", "reaction", "fever", "fatigue", "headache",
            "myalgia", "chills", "soreness", "anaphylaxis", "myocarditis", "rash",
            "swelling", "nausea", "reactogenicity",
        ],
        entities: &["fever", "fatigue", "headache", "myalgia", "rash", "chills"],
    },
    Topic {
        id: 2,
        name: "Variants",
        terms: &[
            "variant", "strain", "mutation", "lineage", "spike", "genome",
            "sequencing", "phylogenetic", "substitution", "emergence", "escape",
            "transmissibility", "clade", "recombinant", "surveillance",
        ],
        entities: &["alpha", "beta", "gamma", "delta", "omicron", "lambda"],
    },
    Topic {
        id: 3,
        name: "Symptoms",
        terms: &[
            "symptom", "cough", "fever", "anosmia", "dyspnea", "fatigue",
            "presentation", "onset", "asymptomatic", "severity", "prognosis",
            "myalgia", "congestion", "ageusia", "malaise",
        ],
        entities: &["cough", "anosmia", "dyspnea", "ageusia", "pneumonia", "hypoxia"],
    },
    Topic {
        id: 4,
        name: "Transmission",
        terms: &[
            "transmission", "aerosol", "droplet", "airborne", "exposure", "contact",
            "ventilation", "superspreading", "quarantine", "index", "secondary",
            "household", "fomite", "distancing", "outbreak",
        ],
        entities: &["aerosol", "droplet", "fomite", "household", "workplace", "school"],
    },
    Topic {
        id: 5,
        name: "Masks",
        terms: &[
            "mask", "respirator", "ppe", "filtration", "n95", "surgical",
            "cloth", "fit", "mandate", "adherence", "compliance", "protection",
            "shield", "barrier", "efficacy",
        ],
        entities: &["n95", "kn95", "surgical", "cloth", "respirator", "faceshield"],
    },
    Topic {
        id: 6,
        name: "Treatments",
        terms: &[
            "treatment", "antiviral", "therapy", "remdesivir", "dexamethasone",
            "monoclonal", "placebo", "randomized", "mortality", "recovery",
            "administration", "dosage", "regimen", "efficacy", "outcome",
        ],
        entities: &["remdesivir", "dexamethasone", "tocilizumab", "paxlovid", "molnupiravir", "baricitinib"],
    },
    Topic {
        id: 7,
        name: "Ventilators",
        terms: &[
            "ventilator", "icu", "intubation", "oxygen", "respiratory", "saturation",
            "mechanical", "capacity", "admission", "critical", "prone", "weaning",
            "extubation", "hypoxemia", "support",
        ],
        entities: &["icu", "intubation", "oxygen", "cpap", "ecmo", "hfnc"],
    },
    Topic {
        id: 8,
        name: "Epidemiology",
        terms: &[
            "incidence", "prevalence", "reproduction", "surveillance", "wave",
            "lockdown", "mobility", "seroprevalence", "modeling", "forecast",
            "demographic", "mortality", "hospitalization", "peak", "decline",
        ],
        entities: &["r0", "seroprevalence", "lockdown", "wave", "cluster", "hotspot"],
    },
    Topic {
        id: 9,
        name: "Pediatrics",
        terms: &[
            "children", "pediatric", "school", "misc", "infant", "adolescent",
            "daycare", "parent", "milder", "inflammatory", "closure", "classroom",
            "teacher", "household", "immunity",
        ],
        entities: &["children", "infants", "adolescents", "schools", "daycare", "misc"],
    },
    Topic {
        id: 10,
        name: "Diagnostics",
        terms: &[
            "testing", "pcr", "antigen", "swab", "sensitivity", "specificity",
            "assay", "saliva", "rapid", "detection", "threshold", "viral",
            "load", "sample", "screening",
        ],
        entities: &["pcr", "antigen", "swab", "saliva", "elisa", "crispr"],
    },
    Topic {
        id: 11,
        name: "Immunology",
        terms: &[
            "immunity", "antibody", "tcell", "neutralizing", "memory", "waning",
            "reinfection", "innate", "adaptive", "cytokine", "inflammation",
            "response", "durability", "protection", "cellular",
        ],
        entities: &["igg", "igm", "tcell", "bcell", "interferon", "cytokine"],
    },
];

/// Background vocabulary shared across all topics (academic filler).
pub static BACKGROUND: &[&str] = &[
    "study", "results", "analysis", "patients", "data", "clinical", "findings",
    "methods", "participants", "observed", "significant", "associated", "compared",
    "reported", "conducted", "measured", "period", "baseline", "followup", "evidence",
    "hospital", "population", "sample", "confidence", "interval", "risk", "ratio",
    "model", "adjusted", "median", "group", "control", "primary", "secondary",
    "outcome", "estimate", "increase", "decrease", "effect", "research",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_ids_are_positional() {
        for (i, t) in all_topics().iter().enumerate() {
            assert_eq!(t.id, i, "topic {} id mismatch", t.name);
        }
    }

    #[test]
    fn topics_have_substance() {
        assert!(all_topics().len() >= 10);
        for t in all_topics() {
            assert!(t.terms.len() >= 10, "{} too few terms", t.name);
            assert!(t.entities.len() >= 4, "{} too few entities", t.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(topic_by_name("Vaccines").unwrap().id, 0);
        assert!(topic_by_name("Astrology").is_none());
    }

    #[test]
    fn topic_term_banks_are_mostly_distinct() {
        // Topical signal requires limited overlap between term banks.
        let topics = all_topics();
        for a in topics {
            for b in topics {
                if a.id >= b.id {
                    continue;
                }
                let overlap = a.terms.iter().filter(|t| b.terms.contains(t)).count();
                assert!(
                    overlap <= 3,
                    "{} and {} share {overlap} terms",
                    a.name,
                    b.name
                );
            }
        }
    }
}
