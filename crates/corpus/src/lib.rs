#![warn(missing_docs)]

//! # covidkg-corpus
//!
//! Deterministic synthetic stand-ins for the two corpora the paper trains
//! and serves from: **CORD-19** (450k+ COVID-19 publications with raw HTML
//! tables, [79]) and **WDC** web tables ([61], used for embedding
//! pre-training). Real CORD-19 is a data gate for this reproduction, so a
//! seeded generator produces publications with the same *shapes* the
//! COVIDKG pipeline consumes — titles/abstracts/body sections, authors,
//! HTML tables with metadata rows, figure captions — plus the ground truth
//! the paper never had to synthesize (topic labels, metadata-row labels,
//! query relevance) that powers the quantitative experiments.
//!
//! * [`topics`] — the COVID-19 topic model (vaccines, variants, symptoms,
//!   transmission, …) with per-topic term banks and entities;
//! * [`tablegen`] — themed table generation (horizontal and vertical
//!   orientation, §3.3) with labeled metadata rows, rendered as raw HTML
//!   fragments like CORD-19 ships, plus WDC-style generic web tables;
//! * [`publication`] — the publication document model and its JSON shape;
//! * [`generator`] — the seeded corpus generator;
//! * [`queries`] — benchmark queries with relevance ground truth (for E4).

pub mod generator;
pub mod publication;
pub mod queries;
pub mod tablegen;
pub mod topics;

pub use generator::{CorpusConfig, CorpusGenerator};
pub use publication::{Publication, SideEffectRecord};
pub use queries::{benchmark_queries, query_workload, BenchQuery};
pub use tablegen::{GeneratedTable, TableTheme};
pub use topics::{all_topics, Topic};
