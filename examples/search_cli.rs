//! Interactive-style search session over the three §2.1 engines.
//!
//! Replays the paper's screenshot queries — "masks" over all fields
//! (Fig 2) and "ventilators" over tables (Fig 4) — plus a quoted
//! exact-match query and field-scoped title/abstract/caption search,
//! then pages through results.
//!
//! ```text
//! cargo run --release --example search_cli            # canned session
//! cargo run --release --example search_cli -- masks   # your own query
//! ```

use covidkg::{CovidKg, CovidKgConfig, SearchMode};

fn main() {
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 60,
        seed: 7,
        max_training_rows: 500,
        ..CovidKgConfig::default()
    })
    .expect("system builds");

    let user_query = std::env::args().nth(1);
    if let Some(q) = user_query {
        let page = system.search(&SearchMode::AllFields(q.clone()), 0);
        println!("{}", page.render());
        return;
    }

    // Fig 2: the all-fields engine, query "masks".
    println!("──── engine 2 (§2.1.2): all publication fields — \"masks\" ────");
    let page = system.search(&SearchMode::AllFields("masks".into()), 0);
    println!("{}", page.render());

    // Fig 4: the table engine, query "ventilators".
    println!("──── engine 3 (§2.1.3): tables — \"ventilators\" ────");
    let page = system.search(&SearchMode::Tables("ventilators".into()), 0);
    println!("{}", page.render());

    // Engine 1: inclusive field-scoped search.
    println!("──── engine 1 (§2.1.1): title=vaccine caption=side-effects ────");
    let page = system.search(
        &SearchMode::TitleAbstractCaption {
            title: "vaccine".into(),
            abstract_q: String::new(),
            caption: "side-effects".into(),
        },
        0,
    );
    println!("{}", page.render());

    // Quoted exact match vs stemmed match.
    println!("──── exact vs stemmed ────");
    let exact = system.search(&SearchMode::AllFields("\"dose 2\"".into()), 0);
    let stemmed = system.search(&SearchMode::AllFields("doses".into()), 0);
    println!(
        "\"dose 2\" (exact)  : {} matches\ndoses (stemmed)   : {} matches",
        exact.total, stemmed.total
    );

    // Pagination: walk the first three pages of a broad query.
    println!("\n──── pagination (10 per page, §2.1) ────");
    let broad = system.search(&SearchMode::AllFields("study".into()), 0);
    println!("query \"study\": {} matches, {} pages", broad.total, broad.page_count());
    for p in 0..broad.page_count().min(3) {
        let page = system.search(&SearchMode::AllFields("study".into()), p);
        let first = page.results.first().map(|r| r.id.clone()).unwrap_or_default();
        println!("  page {}: {} results (first: {})", p + 1, page.results.len(), first);
    }
}
