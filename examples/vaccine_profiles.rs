//! Fig 6: multi-layered meta-profiles for vaccine side-effects.
//!
//! Builds profiles from side-effect tables across many synthetic papers
//! — the paper's panel summarizes "information from 9 different sources
//! in one place" — then drills into one vaccine/dose layer and compares
//! reported rates across papers.
//!
//! ```text
//! cargo run --release --example vaccine_profiles
//! ```

use covidkg::core::system::parse_side_effect_table;
use covidkg::corpus::CorpusGenerator;
use covidkg::kg::profile::{build_meta_profiles, compression_factor, Observation};
use covidkg::tables::parse_tables;

fn main() {
    let pubs = CorpusGenerator::with_size(80, 23).generate();

    // Run the real pipeline: HTML → parsed table → structured records.
    let mut observations: Vec<Observation> = Vec::new();
    let mut table_count = 0;
    for p in &pubs {
        for t in &p.tables {
            for parsed in parse_tables(&t.html).expect("generator emits valid html") {
                table_count += 1;
                observations.extend(parse_side_effect_table(
                    &parsed.caption,
                    &parsed.rows,
                    &p.id,
                ));
            }
        }
    }
    println!(
        "parsed {table_count} tables from {} papers → {} side-effect observations",
        pubs.len(),
        observations.len()
    );

    let profiles = build_meta_profiles(&observations);
    println!(
        "built {} meta-profiles; compression factor {:.1} sources/profile\n",
        profiles.len(),
        compression_factor(&profiles)
    );

    for profile in profiles.iter().take(2) {
        print!("{}", profile.render());
        println!();
    }

    // The Fig 6 "3D" layered view, per vaccine × dose × effect.
    if let Some(profile) = profiles.first() {
        println!("── layered chart (Fig 6 stand-in) ──");
        print!("{}", profile.render_chart());
        println!();
    }

    // Drill-down: which effect varies most across papers for one vaccine?
    if let Some(profile) = profiles.first() {
        println!("── cross-paper disagreement for {} ──", profile.vaccine);
        for (dose, layer) in &profile.doses {
            for (effect, obs) in &layer.effects {
                if obs.len() < 2 {
                    continue;
                }
                let rates: Vec<f32> = obs.iter().map(|(_, r)| *r).collect();
                let min = rates.iter().cloned().fold(f32::MAX, f32::min);
                let max = rates.iter().cloned().fold(f32::MIN, f32::max);
                println!(
                    "  dose {dose} {effect:<10} {:>4.1}%–{:>4.1}% across {} papers",
                    min,
                    max,
                    obs.len()
                );
            }
        }
    }
}
