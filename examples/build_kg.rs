//! The Fig 1 construction flow, step by step, with the review queue made
//! visible: seed the KG (№1), extract findings from classified tables
//! (№6), fuse with embedding fallback (№2), route multi-layer subtrees to
//! the expert (№14), and show supervision dropping as corrections are
//! learned.
//!
//! ```text
//! cargo run --release --example build_kg
//! ```

use covidkg::corpus::CorpusGenerator;
use covidkg::kg::{
    extract_subtrees, seed_graph, FusionConfig, FusionEngine, FusionOutcome, ScriptedExpert,
};
use covidkg::ml::{Word2Vec, Word2VecConfig};
use covidkg::tables::{detect_orientation, Orientation};

fn main() {
    // №1 — the expert's initial 10-20 node layout.
    let kg = seed_graph();
    println!("№1 seed graph: {} nodes", kg.len());
    for node in kg.nodes().iter().take(6) {
        println!("   {}{}", "  ".repeat(kg.depth(node.id)), node.label);
    }
    println!("   …");

    // Corpus + embeddings (№3/№4).
    let pubs = CorpusGenerator::with_size(60, 11).generate();
    let sentences: Vec<Vec<String>> = pubs.iter().map(|p| p.all_tokens()).collect();
    let w2v = Word2Vec::train(
        &sentences,
        &Word2VecConfig {
            dims: 24,
            epochs: 4,
            ..Word2VecConfig::default()
        },
    );
    println!(
        "\n№4 embeddings: {} terms × {} dims",
        w2v.vocab_size(),
        w2v.dims()
    );

    // №6 — extract candidate subtrees from (ground-truth-classified)
    // tables; the quickstart example shows the learned-classifier path.
    let mut trees = Vec::new();
    for p in &pubs {
        for t in &p.tables {
            let orientation = detect_orientation(&t.rows);
            trees.extend(extract_subtrees(
                &t.rows,
                &t.metadata_rows,
                orientation == Orientation::Vertical,
                &t.caption,
                &p.id,
            ));
        }
    }
    println!("№6 extracted {} candidate subtrees", trees.len());

    // №2/№14 — fuse in two rounds to watch supervision decrease.
    let mut engine = FusionEngine::new(kg, Some(&w2v), FusionConfig::default());
    let mut expert = ScriptedExpert::new(&[
        ("Vaccine", "Vaccine(s)"),
        ("Side effect", "Side-effects"),
        ("Symptom", "Symptoms"),
        ("Characteristic", "Epidemiology"),
        ("Arm", "Treatments"),
        ("Product", "Prevention"),
    ]);

    let half = trees.len() / 2;
    for (round, chunk) in [&trees[..half], &trees[half..]].into_iter().enumerate() {
        let before = engine.stats();
        let mut outcomes = (0usize, 0usize); // auto, queued
        for tree in chunk {
            match engine.fuse(tree.clone()) {
                FusionOutcome::AutoFused { .. } => outcomes.0 += 1,
                FusionOutcome::Queued { .. } => outcomes.1 += 1,
                FusionOutcome::Discarded => {}
            }
        }
        engine.process_reviews(&mut expert);
        let after = engine.stats();
        println!(
            "\nround {}: {} subtrees → {} auto-fused, {} queued for review",
            round + 1,
            chunk.len(),
            outcomes.0,
            outcomes.1
        );
        println!(
            "         expert reviews this round: {}",
            after.reviewed - before.reviewed
        );
    }
    let stats = engine.stats();
    println!(
        "\nfusion totals: {} auto ({} memory, {} embedding), {} reviewed, {} leaves added",
        stats.auto_fused, stats.via_memory, stats.via_embedding, stats.reviewed, stats.leaves_added
    );
    println!("supervision rate: {:.1}%", stats.supervision_rate() * 100.0);

    // Browse the grown graph (№9/10).
    let kg = engine.into_graph();
    println!("\nfinal KG: {} nodes; sample paths:", kg.len());
    for query in ["fever", "pfizer", "rash"] {
        for hit in kg.search(query).into_iter().take(1) {
            let labels: Vec<&str> = hit
                .path
                .iter()
                .map(|&n| kg.node(n).label.as_str())
                .collect();
            let prov = &kg.node(hit.node).provenance;
            println!(
                "  {:<22} {}  (from {} papers)",
                format!("{query:?} →"),
                labels.join(" → "),
                prov.len()
            );
        }
    }

    // Persist and reload (the KG "is stored in JSON format", §4.2).
    let json = kg.to_json();
    let restored = covidkg::kg::KnowledgeGraph::from_json(&json).expect("round trip");
    println!(
        "\nKG serialized to {} bytes of JSON and restored ({} nodes)",
        json.to_json().len(),
        restored.len()
    );
}
