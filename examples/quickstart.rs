//! Quickstart: build a small COVIDKG system and poke every major surface.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use covidkg::{ClassifierChoice, CovidKg, CovidKgConfig, SearchMode};

fn main() {
    println!("building a small COVIDKG system (synthetic corpus)…\n");
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 48,
        seed: 42,
        classifier: ClassifierChoice::Svm,
        max_training_rows: 600,
        ..CovidKgConfig::default()
    })
    .expect("system builds");

    let r = system.report();
    println!("== build report ===================================");
    println!("publications ingested : {}", r.publications);
    println!("tables parsed         : {}", r.tables_parsed);
    println!("rows classified       : {} ({} metadata)", r.rows_classified, r.metadata_rows);
    println!("subtrees extracted    : {}", r.subtrees);
    println!(
        "fusion                : {} auto ({} via embeddings), {} reviewed",
        r.fusion.auto_fused, r.fusion.via_embedding, r.fusion.reviewed
    );
    println!("KG nodes              : {}", r.kg_nodes);
    println!(
        "topic clusters        : {} (purity {:.2})",
        r.clusters, r.cluster_purity
    );

    println!("\n== storage (cf. paper §2: ≈965GB / >5TB at web scale) ==");
    print!("{}", system.stats().render_report());

    println!("== search: all-fields query \"vaccine\" (§2.1.2) ====");
    let page = system.search(&SearchMode::AllFields("vaccine".into()), 0);
    for line in page.render().lines().take(12) {
        println!("{line}");
    }

    println!("\n== knowledge graph: search \"side effects\" (§4.2) ==");
    let kg = system.kg();
    for hit in kg.search("side effects").into_iter().take(5) {
        let labels: Vec<&str> = hit.path.iter().map(|&n| kg.node(n).label.as_str()).collect();
        println!("  {}", labels.join(" → "));
    }

    println!("\n== interactive browse (№9/10), depth 2 ============");
    for line in system.kg().render_tree(0, 2).lines().take(14) {
        println!("  {line}");
    }

    println!("\n== bias interrogation (title claim) ================");
    print!("{}", system.bias_report().render());

    println!("\n== meta-profile (Fig 6) ============================");
    if let Some(profile) = system.profiles().first() {
        print!("{}", profile.render());
    }

    println!("\n== released models (№11/13) ========================");
    for m in system.registry().list() {
        println!("  {} [{}] v{} ({} bytes)", m.name, m.kind, m.version, m.bytes);
    }
}
