//! №11/13 in Fig 1: API users "query the Knowledge Graph or fine-tune and
//! reuse our released, pre-trained Deep-learning models or Embeddings on
//! their own dataset."
//!
//! This example plays the downstream data scientist: it builds a COVIDKG
//! system (the publisher), fetches the released embeddings from the model
//! registry, fine-tunes them on its *own* corpus, and uses the result for
//! a similarity task the original embeddings handle poorly.
//!
//! ```text
//! cargo run --release --example reuse_models
//! ```

use covidkg::corpus::CorpusGenerator;
use covidkg::ml::{Word2Vec, Word2VecConfig};
use covidkg::{CovidKg, CovidKgConfig};

fn main() {
    // The publisher side: COVIDKG builds and releases its artifacts.
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 48,
        seed: 42,
        max_training_rows: 500,
        ..CovidKgConfig::default()
    })
    .expect("system builds");
    println!("released artifacts:");
    for m in system.registry().list() {
        println!("  {} [{}] v{} ({} bytes)", m.name, m.kind, m.version, m.bytes);
    }

    // The consumer side: fetch the embeddings through the registry API.
    let mut embeddings: Word2Vec = system
        .registry()
        .fetch_embeddings("cord19-wdc-w2v")
        .expect("published embeddings resolve");
    println!(
        "\nfetched embeddings: {} terms x {} dims",
        embeddings.vocab_size(),
        embeddings.dims()
    );

    let probe = ("remdesivir", "dexamethasone");
    let before = embeddings.similarity(probe.0, probe.1);
    println!(
        "similarity({}, {}) before fine-tuning: {:?}",
        probe.0, probe.1, before
    );

    // Fine-tune on "their own dataset": a treatments-heavy corpus.
    let own_corpus = CorpusGenerator::with_size(120, 777).generate();
    let sentences: Vec<Vec<String>> = own_corpus
        .iter()
        .filter(|p| p.topic_name == "Treatments")
        .map(|p| p.all_tokens())
        .collect();
    println!(
        "fine-tuning on {} treatment-topic documents…",
        sentences.len()
    );
    embeddings.continue_training(
        &sentences,
        &Word2VecConfig {
            dims: embeddings.dims(),
            epochs: 10,
            ..Word2VecConfig::default()
        },
    );

    let after = embeddings.similarity(probe.0, probe.1);
    println!(
        "similarity({}, {}) after fine-tuning:  {:?}",
        probe.0, probe.1, after
    );
    match (before, after) {
        (Some(b), Some(a)) => {
            println!(
                "fine-tuning moved the pair by {:+.3} ({}).",
                a - b,
                if a > b { "closer — the treatment cluster tightened" } else { "apart" }
            );
        }
        _ => println!("(probe terms were out-of-vocabulary before fine-tuning)"),
    }

    // Nearest-neighbour sanity check on the fine-tuned space.
    if let Some(q) = embeddings.embed("remdesivir").map(<[f32]>::to_vec) {
        println!("\nnearest to \"remdesivir\" after fine-tuning:");
        for (w, sim) in embeddings.nearest(&q, 6) {
            println!("  {w:<16} {sim:.3}");
        }
    }
}
